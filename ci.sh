#!/usr/bin/env bash
# Full CI gate for the MISCELA-V workspace. Every step must pass.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release

step "cargo test (workspace: unit + integration + property + doc tests)"
cargo test --workspace -q

step "cargo doc --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "bench smoke (tiny-scale, executes the bench binaries)"
MISCELA_BENCH_SMOKE=1 cargo bench -p miscela-bench --bench miner_vs_baseline
MISCELA_BENCH_SMOKE=1 cargo bench -p miscela-bench --bench search_scaling

printf '\nCI gate passed.\n'
