#!/usr/bin/env bash
# Full CI gate for the MISCELA-V workspace. Every step must pass.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release

step "cargo test (workspace: unit + integration + property + doc tests)"
cargo test --workspace -q

step "cargo doc --no-deps (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "bench smoke (tiny-scale, executes the bench binaries)"
MISCELA_BENCH_SMOKE=1 cargo bench -p miscela-bench --bench miner_vs_baseline
MISCELA_BENCH_SMOKE=1 cargo bench -p miscela-bench --bench search_scaling
MISCELA_BENCH_SMOKE=1 cargo bench -p miscela-bench --bench extraction_scaling
MISCELA_BENCH_SMOKE=1 cargo bench -p miscela-bench --bench streaming_append

step "sweep-bench smoke (bounded grid; asserts batch/loop byte-identity before timing)"
MISCELA_BENCH_SMOKE=1 MISCELA_SWEEP_SMOKE=1 cargo bench -p miscela-bench --bench sweep

step "bench_snapshot smoke (schema-8 JSON emitted)"
snapshot_out="$(mktemp)"
MISCELA_BENCH_SMOKE=1 cargo run --release -q -p miscela-bench --bin bench_snapshot -- --out "$snapshot_out" >/dev/null
grep -q '"schema": 8' "$snapshot_out" || { echo "bench_snapshot did not emit schema-8 JSON" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"extraction_ns"' "$snapshot_out" || { echo "bench_snapshot is missing extraction_ns" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"append_remine_ns"' "$snapshot_out" || { echo "bench_snapshot is missing append_remine_ns" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"append_retained_ns"' "$snapshot_out" || { echo "bench_snapshot is missing append_retained_ns" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"recovery_replay_ns"' "$snapshot_out" || { echo "bench_snapshot is missing recovery_replay_ns" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"completed_p99_ns"' "$snapshot_out" || { echo "bench_snapshot is missing the overload summary" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"shed_rate"' "$snapshot_out" || { echo "bench_snapshot is missing shed_rate" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"duplicate_suppressions"' "$snapshot_out" || { echo "bench_snapshot is missing the chaos summary" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"goodput"' "$snapshot_out" || { echo "bench_snapshot is missing chaos goodput" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"sweep_batch_ns"' "$snapshot_out" || { echo "bench_snapshot is missing sweep_batch_ns" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"sweep_loop_ns"' "$snapshot_out" || { echo "bench_snapshot is missing sweep_loop_ns" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"contended_wall_ns"' "$snapshot_out" || { echo "bench_snapshot is missing the sharded comparison" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"sharded_wall_ns"' "$snapshot_out" || { echo "bench_snapshot is missing sharded_wall_ns" >&2; rm -f "$snapshot_out"; exit 1; }
grep -q '"watch_wakeup_p99_ns"' "$snapshot_out" || { echo "bench_snapshot is missing watch_wakeup_p99_ns" >&2; rm -f "$snapshot_out"; exit 1; }
rm -f "$snapshot_out"

step "load-generator smoke (bounded overload storm, typed outcomes only)"
MISCELA_OVERLOAD_SMOKE=1 cargo run --release -q -p miscela-bench --bin load_generator >/dev/null
MISCELA_OVERLOAD_SMOKE=1 cargo run --release -q -p miscela-bench --bin load_generator -- --sweeps >/dev/null

step "subscriber-storm smoke (watch wakeups on single-shard vs sharded stores)"
MISCELA_OVERLOAD_SMOKE=1 cargo run --release -q -p miscela-bench --bin load_generator -- --subscribers >/dev/null

step "recovery-matrix smoke (bounded kill-point subset of the crash-recovery matrix)"
MISCELA_RECOVERY_SMOKE=1 cargo test --release -q -p miscela-v --test recovery_matrix

step "overload-matrix smoke (bounded chaos storms: shedding, cancellation, degraded mode)"
MISCELA_OVERLOAD_SMOKE=1 cargo test --release -q -p miscela-v --test overload_matrix

step "chaos-matrix smoke (every transport fault class converges to the undisturbed twin)"
MISCELA_CHAOS_SMOKE=1 cargo test --release -q -p miscela-v --test chaos_transport_matrix

printf '\nCI gate passed.\n'
