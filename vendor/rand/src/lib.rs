//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! crate that this workspace uses.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the handful of third-party APIs the seed code relies on are
//! vendored as small, dependency-free shims (see `vendor/` in the workspace
//! root). This crate mimics the `rand 0.8` surface used by
//! `miscela-datagen`: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen`] and [`Rng::gen_bool`].
//!
//! The generator is a fixed **xoshiro256++** seeded through SplitMix64, so
//! streams are deterministic for a given seed (a property the synthetic
//! dataset generators depend on), but they are *not* bit-compatible with the
//! real `rand` crate. Nothing here is cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random number generators.
pub mod rngs {
    /// A deterministic PRNG (xoshiro256++) mirroring `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

pub use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { state }
    }
}

/// Types that [`Rng::gen`] can produce with a standard distribution.
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types [`Rng::gen_range`] can sample uniformly; mirrors
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, i64, i32, u8, i8, u16, i16);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // For floats the closed upper bound is a measure-zero event;
                // sampling the half-open interval is indistinguishable.
                Self::sample_exclusive(rng, lo, hi)
            }
        }
    )*};
}

float_sample_uniform!(f64, f32);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value with the standard distribution for its type
    /// (`f64`/`f32` uniform in `[0, 1)`, `bool` fair coin, integers uniform).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
