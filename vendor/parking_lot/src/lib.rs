//! Offline stand-in for the subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate used by this
//! workspace: [`Mutex`] and [`RwLock`] with non-poisoning, guard-returning
//! `lock`/`read`/`write` methods, their timed `try_*_for` forms, and a
//! [`Condvar`].
//!
//! Internally these wrap the `std::sync` primitives; a poisoned lock is
//! recovered rather than propagated, matching `parking_lot`'s semantics of
//! never poisoning. Performance characteristics are those of `std`, which is
//! ample for the in-process workloads in this repository. Two deliberate
//! departures from the real crate's surface:
//!
//! * the timed acquisitions (`try_lock_for` etc.) are try-then-yield loops —
//!   `std` exposes no native timed lock — which is fine for the short,
//!   bounded critical sections this workspace holds;
//! * [`Condvar::wait_timeout`] consumes and returns the guard (`std` style)
//!   instead of taking `&mut` as `parking_lot` does, because the shim's
//!   guards are plain `std` guards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock whose `lock` returns a guard directly
/// (no poisoning), mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire the lock, giving up after `timeout`. Implemented as a
    /// try-then-yield loop (see the crate docs).
    pub fn try_lock_for(&self, timeout: Duration) -> Option<MutexGuard<'_, T>> {
        timed(timeout, || self.try_lock())
    }

    /// Get mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly
/// (no poisoning), mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire shared read access only if it is available right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive write access only if it is available right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire shared read access, giving up after `timeout`.
    pub fn try_read_for(&self, timeout: Duration) -> Option<RwLockReadGuard<'_, T>> {
        timed(timeout, || self.try_read())
    }

    /// Acquire exclusive write access, giving up after `timeout`.
    pub fn try_write_for(&self, timeout: Duration) -> Option<RwLockWriteGuard<'_, T>> {
        timed(timeout, || self.try_write())
    }

    /// Get mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Repeats `attempt` until it succeeds or `timeout` elapses, yielding the
/// scheduler between attempts. The first attempt always runs, so a zero
/// timeout degenerates to the plain `try_*` form.
fn timed<G>(timeout: Duration, attempt: impl Fn() -> Option<G>) -> Option<G> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(guard) = attempt() {
            return Some(guard);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::yield_now();
    }
}

/// A condition variable usable with the shim [`Mutex`]'s guards.
///
/// Unlike `parking_lot`'s `Condvar`, `wait`/`wait_timeout` consume and
/// return the guard (`std` style); callers rebind it.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wake one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified, releasing `guard` while waiting. Spurious
    /// wakeups are possible; callers re-check their predicate in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Block until notified or `timeout` elapses. Returns the reacquired
    /// guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(e) => {
                let (guard, result) = e.into_inner();
                (guard, result.timed_out())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn try_lock_succeeds_when_free_and_fails_while_held() {
        let m = Mutex::new(5u32);
        {
            let g = m.try_lock().expect("free mutex must try_lock");
            assert_eq!(*g, 5);
            // Held: a zero-timeout timed acquire gives up.
            assert!(m.try_lock().is_none());
            assert!(m.try_lock_for(Duration::ZERO).is_none());
        }
        assert!(m.try_lock_for(Duration::ZERO).is_some());
    }

    #[test]
    fn try_lock_for_acquires_once_the_holder_releases() {
        let m = Arc::new(Mutex::new(0u32));
        let held = Arc::clone(&m);
        let guard = held.lock();
        let waiter = {
            let m = Arc::clone(&m);
            thread::spawn(move || m.try_lock_for(Duration::from_secs(30)).map(|g| *g))
        };
        drop(guard);
        assert_eq!(waiter.join().unwrap(), Some(0));
    }

    #[test]
    fn rwlock_timed_reads_and_writes() {
        let l = RwLock::new(1u32);
        {
            let r = l.try_read_for(Duration::ZERO).expect("read a free lock");
            assert_eq!(*r, 1);
            // A reader blocks writers but not other readers.
            assert!(l.try_read().is_some());
            assert!(l.try_write().is_none());
            assert!(l.try_write_for(Duration::ZERO).is_none());
        }
        *l.try_write_for(Duration::ZERO).expect("write a free lock") = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn condvar_handshake_and_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // A wait with an unmet predicate times out.
        let (lock, cv) = (&pair.0, &pair.1);
        let mut guard = lock.lock();
        let mut timed_out = false;
        while !*guard && !timed_out {
            (guard, timed_out) = cv.wait_timeout(guard, Duration::from_millis(10));
        }
        assert!(timed_out);
        drop(guard);

        // A notified wait observes the flag.
        let signaller = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                *pair.0.lock() = true;
                pair.1.notify_all();
            })
        };
        let (lock, cv) = (&pair.0, &pair.1);
        let mut guard = lock.lock();
        while !*guard {
            let (g, timed_out) = cv.wait_timeout(guard, Duration::from_secs(30));
            guard = g;
            assert!(*guard || !timed_out, "flag never arrived");
        }
        assert!(*guard);
        drop(guard);
        signaller.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
