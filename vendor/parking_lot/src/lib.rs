//! Offline stand-in for the subset of the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate used by this
//! workspace: [`Mutex`] and [`RwLock`] with non-poisoning, guard-returning
//! `lock`/`read`/`write` methods.
//!
//! Internally these wrap the `std::sync` primitives; a poisoned lock is
//! recovered rather than propagated, matching `parking_lot`'s semantics of
//! never poisoning. Performance characteristics are those of `std`, which is
//! ample for the in-process workloads in this repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns a guard directly
/// (no poisoning), mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly
/// (no poisoning), mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Get mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
