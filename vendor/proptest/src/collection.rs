//! Collection strategies; mirrors `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::ops::Range;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    /// Truncation first (to the minimum length, to half, drop one), then
    /// one element-shrink candidate per position — enough for the greedy
    /// shrink loop to reach a short vector of small elements.
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.size.start;
        let len = value.len();
        if len > min {
            let mut lens = vec![min, min + (len - min) / 2, len - 1];
            lens.dedup();
            for l in lens {
                if l < len {
                    out.push(value[..l].to_vec());
                }
            }
        }
        for (i, v) in value.iter().enumerate() {
            if let Some(candidate) = self.element.shrink(v).into_iter().next() {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// A strategy for `BTreeMap`s with `size`-many key/value draws (duplicate
/// keys collapse, so the realized length may be smaller).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let mut rng = rng_for_test("vec_respects_size_and_element_ranges");
        let s = vec(5i64..10, 2..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (5..10).contains(x)));
        }
    }

    #[test]
    fn vec_shrinks_by_truncation_and_element() {
        let s = vec(2usize..50, 1..10);
        let value = vec![30usize, 40, 45];
        let candidates = s.shrink(&value);
        // Truncations respect the minimum length and come first.
        assert_eq!(candidates[0], vec![30]);
        assert_eq!(candidates[1], vec![30, 40]);
        assert!(candidates
            .iter()
            .all(|c| !c.is_empty() && (c.len() < 3 || c != &value)));
        // Element shrinks keep the length.
        assert!(candidates.iter().any(|c| c.len() == 3 && c[0] == 2));
        // A minimal vector has no candidates.
        assert!(s.shrink(&vec![2]).is_empty());
    }

    #[test]
    fn btree_map_draws_bounded_entries() {
        let mut rng = rng_for_test("btree_map_draws_bounded_entries");
        let s = btree_map(0usize..50, 0.0f64..1.0, 0..6);
        for _ in 0..100 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 6);
            assert!(m.keys().all(|k| *k < 50));
        }
    }
}
