//! Collection strategies; mirrors `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::ops::Range;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap`s with `size`-many key/value draws (duplicate
/// keys collapse, so the realized length may be smaller).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let mut rng = rng_for_test("vec_respects_size_and_element_ranges");
        let s = vec(5i64..10, 2..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (5..10).contains(x)));
        }
    }

    #[test]
    fn btree_map_draws_bounded_entries() {
        let mut rng = rng_for_test("btree_map_draws_bounded_entries");
        let s = btree_map(0usize..50, 0.0f64..1.0, 0..6);
        for _ in 0..100 {
            let m = s.generate(&mut rng);
            assert!(m.len() < 6);
            assert!(m.keys().all(|k| *k < 50));
        }
    }
}
