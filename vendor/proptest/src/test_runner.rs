//! Test-run configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`; mirrors
/// `proptest::test_runner::Config` as re-exported in the prelude.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many input tuples each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The panic hook saved by the first active shrink loop, with a count of
/// how many loops are active. `cargo test` runs tests on multiple threads,
/// so swapping the process-global hook must be refcounted: a naive
/// take/set/restore pair racing across two concurrently-shrinking
/// properties could "restore" the silencer itself and leave every later
/// panic in the binary unreported.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;
static HOOK_SILENCER: std::sync::Mutex<(usize, Option<PanicHook>)> =
    std::sync::Mutex::new((0, None));

/// RAII guard silencing the default panic hook; the saved hook comes back
/// when the last concurrent guard drops.
struct SilencedPanics;

impl SilencedPanics {
    fn enter() -> Self {
        let mut state = HOOK_SILENCER.lock().unwrap();
        if state.0 == 0 {
            state.1 = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        state.0 += 1;
        SilencedPanics
    }
}

impl Drop for SilencedPanics {
    fn drop(&mut self) {
        let mut state = HOOK_SILENCER.lock().unwrap();
        state.0 -= 1;
        if state.0 == 0 {
            if let Some(hook) = state.1.take() {
                std::panic::set_hook(hook);
            }
        }
    }
}

/// Runs one generated case, shrinking on failure.
///
/// If `run` panics, the input tuple is greedily minimized: candidates from
/// [`crate::strategy::TupleStrategy::shrink_tuple`] are tried in order and
/// the first one that still fails becomes the new input, until no candidate
/// fails or the step budget runs out. The minimal input is printed and the case is
/// re-run un-caught so the test fails with the original assertion message.
/// The default panic hook is silenced while probing candidates, so a
/// failing property reports one clean panic instead of dozens.
pub fn check_case<S, F>(strategies: &S, mut values: S::Value, run: &F)
where
    S: crate::strategy::TupleStrategy,
    S::Value: std::fmt::Debug,
    F: Fn(&S::Value),
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if catch_unwind(AssertUnwindSafe(|| run(&values))).is_ok() {
        return;
    }
    let mut steps = 0usize;
    {
        let _silenced = SilencedPanics::enter();
        let mut budget = 512usize;
        loop {
            let mut advanced = false;
            for candidate in strategies.shrink_tuple(&values) {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                if catch_unwind(AssertUnwindSafe(|| run(&candidate))).is_err() {
                    values = candidate;
                    steps += 1;
                    advanced = true;
                    break;
                }
            }
            if !advanced || budget == 0 {
                break;
            }
        }
    }
    eprintln!("proptest shim: minimal failing input after {steps} shrink steps: {values:?}");
    // Re-run the minimal case caught and print its message ourselves: the
    // global hook may still be silenced by *another* property shrinking
    // concurrently, and `resume_unwind` never consults the hook, so the
    // assertion text is reported identically either way.
    match catch_unwind(AssertUnwindSafe(|| run(&values))) {
        Ok(()) => unreachable!("minimized input no longer fails"),
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("(non-string panic payload)");
            eprintln!("proptest shim: minimal failing case panicked: {message}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Build the RNG for one property test, seeded from the test's name so each
/// test draws a distinct but run-to-run reproducible input stream.
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::TupleStrategy;
    use rand::Rng;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn check_case_minimizes_failing_input() {
        // Property: "vectors shorter than 4 with elements below 90". The
        // shrinker must reduce any failing case to the minimal one: either
        // a length-4 vector of all-zero elements, or a shorter vector whose
        // only offending element collapsed to 90.
        let strategies = (crate::collection::vec(0usize..100, 0..20),);
        let last_seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let run = |values: &(Vec<usize>,)| {
            *last_seen.lock().unwrap() = values.0.clone();
            assert!(values.0.len() < 4, "too long");
        };
        let mut rng = rng_for_test("check_case_minimizes_failing_input");
        let mut values = strategies.generate_tuple(&mut rng);
        while values.0.len() < 4 {
            values = strategies.generate_tuple(&mut rng);
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check_case(&strategies, values, &run);
        }));
        assert!(outcome.is_err(), "failing case must still fail");
        // The final (re-run) input is the minimal one: exactly the length
        // bound, with every element shrunk to the range minimum.
        assert_eq!(*last_seen.lock().unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn check_case_passes_without_shrinking() {
        let strategies = (0usize..10,);
        let calls = Mutex::new(0usize);
        let run = |_: &(usize,)| {
            *calls.lock().unwrap() += 1;
        };
        check_case(&strategies, (5,), &run);
        assert_eq!(*calls.lock().unwrap(), 1);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = rng_for_test("some_test");
        let mut b = rng_for_test("some_test");
        let mut c = rng_for_test("other_test");
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
