//! Test-run configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`; mirrors
/// `proptest::test_runner::Config` as re-exported in the prelude.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many input tuples each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Build the RNG for one property test, seeded from the test's name so each
/// test draws a distinct but run-to-run reproducible input stream.
pub fn rng_for_test(name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = rng_for_test("some_test");
        let mut b = rng_for_test("some_test");
        let mut c = rng_for_test("other_test");
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
