//! Strategies for `Option`; mirrors `proptest::option`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A strategy producing `Some` from `inner` three times out of four, and
/// `None` otherwise; mirrors `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn produces_both_variants() {
        let mut rng = rng_for_test("produces_both_variants");
        let s = of(0i64..100);
        let values: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }
}
