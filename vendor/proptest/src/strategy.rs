//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::Rng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree: a strategy draws a fresh
/// value from the RNG on every call. Minimal shrinking is supported through
/// [`Strategy::shrink`] — numeric ranges halve toward their lower bound and
/// vectors truncate and shrink elements; combinators without an obvious
/// inverse (`prop_map`, unions) do not shrink.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Propose strictly-simpler variants of a failing value, most
    /// aggressive first. The default proposes nothing (no shrinking).
    /// Every candidate must itself be a value this strategy could have
    /// generated.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform every generated value with `map_fn`.
    fn prop_map<O, F>(self, map_fn: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            map_fn,
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// levels below and returns the strategy for one level up. Values mix
    /// all depths from the plain leaf up to `levels` nested applications.
    /// (`_desired_size` and `_expected_branch` are accepted for signature
    /// compatibility and ignored — sizing lives in the collection ranges.)
    fn prop_recursive<R, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strategy = leaf.clone();
        for _ in 0..levels {
            let deeper = recurse(strategy).boxed();
            strategy = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strategy
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

/// Strategy returning a clone of a fixed value; mirrors
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map_fn: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map_fn)(self.inner.generate(rng))
    }
}

/// A uniform choice between several strategies of the same value type; what
/// [`crate::prop_oneof!`] builds.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build a union over `arms`. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Shrink candidates for an integer drawn from a range starting at `lo`:
/// jump to the minimum, halve the distance, step down by one.
fn shrink_int<T>(lo: T, value: T) -> Vec<T>
where
    T: Copy + PartialOrd + std::ops::Sub<Output = T> + std::ops::Add<Output = T> + IntHalf,
{
    let mut out = Vec::new();
    if value > lo {
        out.push(lo);
        let half = lo + (value - lo).half();
        if half > lo && half < value {
            out.push(half);
        }
        let dec = value - T::one();
        if dec > lo && dec != half {
            out.push(dec);
        }
    }
    out
}

/// Helper for [`shrink_int`]: halving and the unit, per integer type.
trait IntHalf {
    /// Self divided by two.
    fn half(self) -> Self;
    /// The value 1.
    fn one() -> Self;
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl IntHalf for $t {
            fn half(self) -> Self { self / 2 }
            fn one() -> Self { 1 }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start(), *value)
            }
        }
    )*};
}

numeric_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            /// Halve toward the range's lower bound: jump to `lo`, then to
            /// the midpoint. Candidates stay inside `[lo, value)`.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let mut out = Vec::new();
                if *value > lo {
                    out.push(lo);
                    let half = lo + (*value - lo) / 2.0;
                    if half > lo && half < *value {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

/// The strategy tuple behind one `proptest!` property: generates the whole
/// argument tuple at once and shrinks it one component at a time (the
/// other components held fixed), which is what makes failing cases
/// minimizable without cross-argument search.
pub trait TupleStrategy {
    /// The tuple of argument values.
    type Value: Clone;

    /// Draw one argument tuple.
    fn generate_tuple(&self, rng: &mut StdRng) -> Self::Value;

    /// Propose simpler argument tuples, varying one component per
    /// candidate.
    fn shrink_tuple(&self, value: &Self::Value) -> Vec<Self::Value>;
}

/// Emits, for one tuple arity, both the [`TupleStrategy`] impl (the
/// top-level `proptest!` argument tuple) and a plain [`Strategy`] impl, so
/// tuples of strategies also compose with combinators like
/// `collection::vec((a, b), n)`. One shrink body serves both: one
/// component varied per candidate, the others held fixed.
macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> TupleStrategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);

            fn generate_tuple(&self, rng: &mut StdRng) -> Self::Value {
                Strategy::generate(self, rng)
            }

            fn shrink_tuple(&self, value: &Self::Value) -> Vec<Self::Value> {
                Strategy::shrink(self, value)
            }
        }

        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

impl Strategy for &'static str {
    type Value = String;

    /// String literals act as char-class patterns (see [`crate::string`]).
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_and_map() {
        let mut rng = rng_for_test("ranges_and_map");
        let s = (0usize..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = rng_for_test("union_hits_every_arm");
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn int_and_float_ranges_shrink_toward_lower_bound() {
        let s = 3usize..100;
        assert_eq!(s.shrink(&3), Vec::<usize>::new());
        let candidates = s.shrink(&40);
        assert_eq!(candidates, vec![3, 21, 39]);
        assert!(candidates.iter().all(|&c| (3..40).contains(&c)));
        let s = -5i64..=5;
        assert_eq!(s.shrink(&-5), Vec::<i64>::new());
        assert_eq!(s.shrink(&5), vec![-5, 0, 4]);

        let f = 1.0f64..9.0;
        let candidates = f.shrink(&5.0);
        assert_eq!(candidates, vec![1.0, 3.0]);
        assert!(f.shrink(&1.0).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strategies = (0usize..10, 0i64..10);
        let candidates = strategies.shrink_tuple(&(4, 6));
        assert!(!candidates.is_empty());
        for (a, b) in &candidates {
            let first_changed = *a != 4;
            let second_changed = *b != 6;
            assert!(first_changed ^ second_changed, "({a}, {b})");
        }
        // The fully-minimal tuple has no candidates.
        assert!(strategies.shrink_tuple(&(0, 0)).is_empty());
    }

    #[test]
    fn recursive_reaches_multiple_depths() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = rng_for_test("recursive_reaches_multiple_depths");
        let s = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&s.generate(&mut rng)));
        }
        assert!(max_depth >= 2, "expected nesting, max depth {max_depth}");
        assert!(max_depth <= 3, "depth bound exceeded: {max_depth}");
    }
}
