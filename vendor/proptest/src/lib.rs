//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) property-testing crate
//! used by this workspace.
//!
//! The build environment has no crate-registry access, so the workspace's
//! property tests link against this shim. It supports the authoring surface
//! the tests use — the [`proptest!`] macro with an inline
//! `#![proptest_config(...)]`, range and char-class string strategies,
//! [`collection::vec`] / [`collection::btree_map`], [`option::of`],
//! [`prop_oneof!`], [`strategy::Just`], [`arbitrary::any`], `prop_map`,
//! `prop_recursive`, and `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a deterministic per-test RNG (seeded from the test name, so
//! failures reproduce across runs), and shrinking is **minimal** rather
//! than tree-based — on failure, integers and floats halve toward their
//! range's lower bound and vectors truncate and shrink elements, greedily,
//! one argument at a time (see `test_runner::check_case`); combinators
//! without an obvious inverse (`prop_map`, unions, maps, strings) do not
//! shrink. The minimized input is printed and the case re-run un-caught,
//! so the test fails with a readable assertion on a small input instead of
//! a generated-size one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod collection;

pub mod option;

pub mod string;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property test; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Build a strategy that uniformly picks one of several strategies with a
/// common value type; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests; mirrors `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a regular
/// `#[test]`-able function that draws `config.cases` input tuples and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            let strategies = ($($strategy,)+);
            for _case in 0..config.cases {
                let values =
                    $crate::strategy::TupleStrategy::generate_tuple(&strategies, &mut rng);
                $crate::test_runner::check_case(&strategies, values, &|values| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(values);
                    $body
                });
            }
        }
    )*};
}
