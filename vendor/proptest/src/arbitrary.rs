//! The [`any`] entry point for type-default strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy; mirrors
/// `proptest::arbitrary::Arbitrary` for the primitives this workspace needs.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rng.gen::<u64>() & 0xFF) as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u32>() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — finite by construction, which is what the
    /// workspace's numeric invariants expect.
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`; mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
