//! Char-class pattern generation backing the `&str` strategy.
//!
//! Real proptest treats string-literal strategies as full regexes. This shim
//! supports the subset the workspace's tests use: a sequence of terms, where
//! each term is a character class `[...]` (ranges like `a-z`, literal
//! characters, and backslash escapes) or a literal character, optionally
//! followed by a `{n}` or `{m,n}` repetition count.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug)]
struct Term {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut choices = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    choices.push(p);
                }
                return choices;
            }
            '\\' => {
                if let Some(p) = pending.replace(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern")),
                ) {
                    choices.push(p);
                }
            }
            '-' if pending.is_some() && chars.peek().is_some_and(|&next| next != ']') => {
                let start = pending.take().unwrap();
                let end = chars.next().unwrap();
                assert!(start <= end, "inverted range {start}-{end} in pattern");
                choices.extend(start..=end);
            }
            _ => {
                if let Some(p) = pending.replace(c) {
                    choices.push(p);
                }
            }
        }
    }
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    let parse = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition count {s:?} in pattern"))
    };
    match spec.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&spec);
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Term> {
    let mut chars = pattern.chars().peekable();
    let mut terms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => parse_class(&mut chars),
            '\\' => vec![chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in pattern"))],
            _ => vec![c],
        };
        assert!(
            !choices.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        let (min, max) = parse_repeat(&mut chars);
        terms.push(Term { choices, min, max });
    }
    terms
}

/// Generate one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for term in parse_pattern(pattern) {
        let count = if term.min == term.max {
            term.min
        } else {
            rng.gen_range(term.min..=term.max)
        };
        for _ in 0..count {
            let idx = rng.gen_range(0..term.choices.len());
            out.push(term.choices[idx]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn class_with_ranges_and_escapes() {
        let mut rng = rng_for_test("class_with_ranges_and_escapes");
        for _ in 0..200 {
            let s = generate_pattern("[a-zA-Z0-9 _.,:\\-]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.,:-".contains(c)));
        }
    }

    #[test]
    fn bounded_lengths_and_leading_class() {
        let mut rng = rng_for_test("bounded_lengths_and_leading_class");
        for _ in 0..200 {
            let s = generate_pattern("[A-Za-z][A-Za-z0-9 .]{0,15}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = rng_for_test("trailing_dash_is_literal");
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = generate_pattern("[A-Za-z0-9_-]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            saw_dash |= s.contains('-');
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
        assert!(saw_dash, "dash never generated — class parse dropped it");
    }
}
