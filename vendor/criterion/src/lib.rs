//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness used
//! by this workspace.
//!
//! The build environment has no crate-registry access, so `crates/bench`
//! links against this shim instead. It keeps the same authoring surface —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`] and [`criterion_main!`] — and implements a
//! wall-clock measurement loop with outlier-robust statistics: each
//! benchmark is warmed up for [`Criterion::warm_up_time`] (at least one
//! call, which also surfaces panics before timing starts), then up to
//! `sample_size` independent samples are taken within a quarter of
//! `measurement_time`, and the **median** time per iteration together with
//! the median absolute deviation (MAD) is printed to stdout. The median/MAD
//! pair is insensitive to the occasional scheduler-induced outlier sample,
//! which matters now that benchmark numbers drive optimisation decisions.
//! There is still no HTML report or baseline comparison.
//!
//! Two robustness refinements harden the loop for the fast-kernel
//! benchmarks (tens of nanoseconds per iteration) that proxy
//! autovectorization health:
//!
//! * **Minimum-iteration floor** — a sample whose routine finishes below
//!   the timer's useful resolution is re-invoked until the sample spans at
//!   least [`MIN_SAMPLE_TIME`] (capped at [`MAX_FLOOR_ITERATIONS`]
//!   iterations), so call overhead and clock granularity cannot dominate a
//!   one-iteration observation.
//! * **IQR outlier discard** — with five or more samples, observations
//!   outside the Tukey fences `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are dropped
//!   before the median/MAD are computed, and the printed line reports how
//!   many were discarded. A preempted sample thus cannot widen the MAD of
//!   an otherwise stable benchmark.
//!
//! Setting the `MISCELA_BENCH_SMOKE` environment variable (to any value)
//! clamps every benchmark to a single warm-up call, two samples and a tiny
//! time budget — used by `ci.sh` to *execute* (not just compile) the bench
//! binaries on every gate without inflating CI time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Whether the `MISCELA_BENCH_SMOKE` tiny-scale mode is active.
fn smoke_mode() -> bool {
    std::env::var_os("MISCELA_BENCH_SMOKE").is_some()
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the default measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the default warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &id.into().label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            None,
            f,
        );
    }
}

/// A measure of work done per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements (rows, records…).
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// An identifier for one benchmark within a group: a function name plus a
/// parameter rendering, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of related benchmarks sharing sample/measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement-time budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declare the throughput of each iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group. (The shim prints per-benchmark lines eagerly, so
    /// this only exists for API compatibility.)
    pub fn finish(self) {}
}

/// The timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, executing it once per recorded iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }

    /// Time `routine` on a fresh input from `setup`, excluding the setup
    /// cost from the measurement.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Minimum measured time one sample should span. Routines faster than
/// this are iterated repeatedly inside the sample (the minimum-iteration
/// floor) so that clock granularity and call overhead are amortized.
pub const MIN_SAMPLE_TIME: Duration = Duration::from_micros(20);

/// Hard cap on the per-sample iteration floor, so a pathologically cheap
/// (or constant-folded) routine still terminates promptly.
pub const MAX_FLOOR_ITERATIONS: u64 = 10_000;

/// Discards samples outside the Tukey fences `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`
/// and returns how many were dropped. Quartiles are linearly interpolated
/// on the sorted samples. Applied only when at least five samples exist —
/// quartiles of fewer are noise. The median always survives (it sits
/// inside the fences by construction), so the result is never empty.
fn discard_outliers(samples: &mut Vec<f64>) -> usize {
    if samples.len() < 5 {
        return 0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let quartile = |p: f64| -> f64 {
        let idx = p * (samples.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        samples[lo] * (1.0 - frac) + samples[hi] * frac
    };
    let q1 = quartile(0.25);
    let q3 = quartile(0.75);
    let iqr = q3 - q1;
    let fence_lo = q1 - 1.5 * iqr;
    let fence_hi = q3 + 1.5 * iqr;
    let before = samples.len();
    samples.retain(|&x| (fence_lo..=fence_hi).contains(&x));
    before - samples.len()
}

/// Median of a sample set. The slice is sorted in place.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Median absolute deviation around a given center.
fn median_abs_deviation(samples: &[f64], center: f64) -> f64 {
    let mut dev: Vec<f64> = samples.iter().map(|&x| (x - center).abs()).collect();
    median(&mut dev)
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let smoke = smoke_mode();
    let (sample_size, measurement_time, warm_up_time) = if smoke {
        (
            sample_size.min(2),
            measurement_time.min(Duration::from_millis(100)),
            Duration::ZERO,
        )
    } else {
        (sample_size, measurement_time, warm_up_time)
    };

    // Warm-up: always at least one call (which also surfaces panics before
    // timing starts), then keep going until the warm-up budget is spent.
    let warm_started = Instant::now();
    let mut warmup = Bencher::default();
    f(&mut warmup);
    while warm_started.elapsed() < warm_up_time {
        let mut b = Bencher::default();
        f(&mut b);
    }

    // Measurement: one independent Bencher per sample so each sample is a
    // separate ns/iter observation for the robust statistics.
    let budget = measurement_time / 4;
    let started = Instant::now();
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        // Minimum-iteration floor: keep re-invoking the routine into the
        // same sample until it spans enough wall-clock time to measure.
        while b.iterations > 0 && b.iterations < MAX_FLOOR_ITERATIONS && b.elapsed < MIN_SAMPLE_TIME
        {
            f(&mut b);
        }
        if b.iterations > 0 {
            samples.push(b.elapsed.as_nanos() as f64 / b.iterations as f64);
        }
        if started.elapsed() > budget {
            break;
        }
    }
    if samples.is_empty() {
        if warmup.iterations == 0 {
            println!("bench: {label}: no iterations recorded");
            return;
        }
        samples.push(warmup.elapsed.as_nanos() as f64 / warmup.iterations as f64);
    }

    let discarded = discard_outliers(&mut samples);
    let n = samples.len();
    let med = median(&mut samples);
    let mad = median_abs_deviation(&samples, med);
    let rate = match throughput {
        Some(Throughput::Elements(els)) if med > 0.0 => {
            format!("  ({:.0} elem/s)", els as f64 * 1e9 / med)
        }
        Some(Throughput::Bytes(bytes)) if med > 0.0 => {
            format!("  ({:.0} B/s)", bytes as f64 * 1e9 / med)
        }
        _ => String::new(),
    };
    let dropped = if discarded > 0 {
        format!(", {discarded} outliers discarded")
    } else {
        String::new()
    };
    println!(
        "bench: {label}: {med:.0} ns/iter (median of {n} samples, ±{mad:.0} ns MAD{dropped}){rate}"
    );
}

/// Collect benchmark functions into a runnable group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 10), &3u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus at least one sample, got {runs}");
    }

    #[test]
    fn bench_function_accepts_str_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("plain", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(ran);
    }

    #[test]
    fn iqr_discard_keeps_the_bulk_and_drops_fence_violations() {
        // One wild sample among nine stable ones is discarded.
        let mut s = vec![10.0, 11.0, 12.0, 10.5, 11.5, 10.2, 11.8, 10.9, 500.0];
        assert_eq!(discard_outliers(&mut s), 1);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|&x| x < 13.0));
        // A tight cluster survives untouched (IQR 0 keeps exact repeats).
        let mut flat = vec![5.0; 6];
        assert_eq!(discard_outliers(&mut flat), 0);
        assert_eq!(flat.len(), 6);
        // Fewer than five samples: quartiles are noise, nothing is dropped.
        let mut tiny = vec![1.0, 2.0, 1_000_000.0, 3.0];
        assert_eq!(discard_outliers(&mut tiny), 0);
        assert_eq!(tiny.len(), 4);
        // Low-side violations are fenced too.
        let mut low = vec![100.0, 101.0, 99.0, 100.5, 99.5, 100.2, 0.001];
        assert_eq!(discard_outliers(&mut low), 1);
        assert!(low.iter().all(|&x| x > 90.0));
    }

    #[test]
    fn fast_routines_hit_the_minimum_iteration_floor() {
        // A near-zero-cost routine must be iterated many times per sample,
        // not observed once at clock granularity.
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::ZERO);
        let mut runs = 0u64;
        c.bench_function("floor", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // Warm-up contributes one run; each sample then iterates until it
        // spans MIN_SAMPLE_TIME, which for an empty body takes far more
        // than one iteration.
        assert!(runs > 10, "floor did not engage: {runs} runs");
    }

    #[test]
    fn median_and_mad_are_outlier_robust() {
        // A wild outlier moves the mean but not the median/MAD.
        let mut odd = vec![10.0, 12.0, 11.0, 1_000_000.0, 9.0];
        assert_eq!(median(&mut odd), 11.0);
        assert_eq!(median_abs_deviation(&odd, 11.0), 1.0);
        let mut even = vec![4.0, 8.0, 2.0, 6.0];
        assert_eq!(median(&mut even), 5.0);
        let mut single = vec![7.5];
        assert_eq!(median(&mut single), 7.5);
        assert_eq!(median_abs_deviation(&single, 7.5), 0.0);
    }
}
