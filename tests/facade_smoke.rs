//! Smoke test for the `miscela-v` facade: register a generated dataset,
//! mine it with the default parameters, and check that the resulting CAP
//! set round-trips through the parameter-keyed cache.

use miscela_v::miscela_core::MiningParams;
use miscela_v::miscela_datagen::PlantedGenerator;
use miscela_v::MiscelaV;

#[test]
fn register_mine_and_cache_roundtrip_with_default_params() {
    let system = MiscelaV::new();
    let (dataset, planted) = PlantedGenerator::new().generate();
    let name = dataset.name().to_string();

    let summary = system.register_dataset(dataset);
    assert_eq!(summary.name, name);
    assert!(summary.sensors > 0);
    assert!(!planted.is_empty());

    let params = MiningParams::default();
    let first = system.mine(&name, &params).unwrap();
    assert!(!first.cache_hit);
    assert!(
        !first.result.caps.is_empty(),
        "default params found no CAPs in planted data"
    );

    // The same request must be answered from the cache with an equal CapSet.
    let second = system.mine(&name, &params).unwrap();
    assert!(second.cache_hit);
    assert_eq!(second.result.caps, first.result.caps);

    // A different parameter setting must not collide with the cached entry.
    let other = system
        .mine(&name, &MiningParams::new().with_psi(params.psi + 5))
        .unwrap();
    assert!(!other.cache_hit);
}
