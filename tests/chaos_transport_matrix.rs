//! The chaos-transport matrix (the exactly-once serving proof harness).
//!
//! Every fault class a lossy network can inject — request loss, response
//! loss (the mutation applied, the ack vanished), duplicated delivery,
//! delayed/reordered delivery, and a storm of all four — is driven through
//! the full client workflow: register via chunked upload, append a tail,
//! mine, install a retention policy, re-mine, then register-and-delete a
//! second dataset. The client is the real [`ResilientClient`] (budgeted
//! retries, idempotency keys, sequence-numbered chunks, `412` resume); the
//! chaos is a seeded deterministic [`ChaosTransport`].
//!
//! After each episode the surviving server state must be **byte-identical**
//! to an undisturbed twin that ran the same workflow over a perfect
//! transport: the dataset snapshot encoding, the revision counter (retries
//! that double-applied would inflate it), and the re-mined CapSet JSON.
//! One more episode crashes the durable server mid-append — after it
//! applied a request but before the response got out — recovers the
//! directory from disk, and swaps the recovered router in behind the
//! client's back; the retries must land on the restart and still converge
//! to the twin.
//!
//! `MISCELA_CHAOS_SMOKE=1` keeps one seed per fault class for a bounded CI
//! smoke run; the full matrix runs three.

use miscela_v::miscela_csv::{split_into_chunks, DatasetWriter};
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_server::client::{
    ChaosConfig, ChaosTransport, ResilientClient, RouterTransport, SwappableRouter, Transport,
    TransportError,
};
use miscela_v::miscela_server::durability::snapshot_data;
use miscela_v::miscela_server::message::{ApiRequest, ApiResponse};
use miscela_v::miscela_server::{MiscelaService, Router};
use miscela_v::miscela_store::{Database, Json};
use std::path::PathBuf;
use std::sync::Arc;

const DATASET: &str = "santander";
const EPHEMERAL: &str = "ephemeral";

struct Fixture {
    location_csv: String,
    attribute_csv: String,
    prefix_csv: String,
    tail_csv: String,
    full_timestamps: usize,
}

fn fixture() -> Fixture {
    let full = SantanderGenerator::small().with_scale(0.02).generate();
    let n = full.timestamp_count();
    let split_t = full.grid().at(n - 60).unwrap();
    let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
    let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
    let writer = DatasetWriter::new();
    let tail_csv = writer.data_csv(&tail);
    assert!(
        split_into_chunks(&tail_csv, 200).len() >= 2,
        "tail must span several sequence-numbered chunks"
    );
    Fixture {
        location_csv: writer.location_csv(&prefix),
        attribute_csv: writer.attribute_csv(&prefix),
        prefix_csv: writer.data_csv(&prefix),
        tail_csv,
        full_timestamps: n,
    }
}

fn mine_body() -> Json {
    Json::from_pairs([
        ("epsilon", Json::from(0.4)),
        ("eta_km", Json::from(0.5)),
        ("mu", Json::from(3i64)),
        ("psi", Json::from(20usize)),
        ("segmentation", Json::from(false)),
    ])
}

/// Everything the workflow observed plus the server state it left behind.
/// Two runs are "the same outcome" iff these compare equal — the snapshot
/// field is the byte-exact durability encoding of the final dataset.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    register_sensors: i64,
    append_revision: i64,
    caps_after_append: String,
    retention_revision: i64,
    trimmed_timestamps: i64,
    caps_after_retention: String,
    final_revision: u64,
    final_snapshot: String,
    ephemeral_gone: bool,
}

/// The full workflow through a resilient client: register → append → mine
/// → retention → re-mine on the main dataset, register → delete on a
/// second one.
fn run_workflow<T: Transport>(client: &mut ResilientClient<T>, fx: &Fixture) -> WorkflowObs {
    let registered = client
        .register(
            DATASET,
            &fx.location_csv,
            &fx.attribute_csv,
            &fx.prefix_csv,
            2_000,
        )
        .expect("register must converge");
    let appended = client
        .append(DATASET, &fx.tail_csv, 200)
        .expect("append must converge");
    let mined = client
        .mine(DATASET, mine_body())
        .expect("mine must converge");
    let retention = client
        .set_retention(
            DATASET,
            Json::from_pairs([(
                "max_timestamps",
                Json::from((fx.full_timestamps - 24) as i64),
            )]),
        )
        .expect("retention must converge");
    let remined = client
        .mine(DATASET, mine_body())
        .expect("re-mine must converge");
    client
        .register(
            EPHEMERAL,
            &fx.location_csv,
            &fx.attribute_csv,
            &fx.prefix_csv,
            2_000,
        )
        .expect("ephemeral register must converge");
    client
        .delete(EPHEMERAL)
        .expect("ephemeral delete must converge");
    WorkflowObs {
        register_sensors: registered.get("sensors").unwrap().as_i64().unwrap(),
        append_revision: appended.get("revision").unwrap().as_i64().unwrap(),
        caps_after_append: mined.get("caps").unwrap().to_string_compact(),
        retention_revision: retention.get("revision").unwrap().as_i64().unwrap(),
        trimmed_timestamps: retention
            .get("trimmed_timestamps")
            .unwrap()
            .as_i64()
            .unwrap(),
        caps_after_retention: remined.get("caps").unwrap().to_string_compact(),
    }
}

struct WorkflowObs {
    register_sensors: i64,
    append_revision: i64,
    caps_after_append: String,
    retention_revision: i64,
    trimmed_timestamps: i64,
    caps_after_retention: String,
}

/// Folds the client-observed responses together with the server's final
/// state into one comparable value.
fn outcome(obs: WorkflowObs, service: &MiscelaService) -> Outcome {
    let ds = service.dataset(DATASET).expect("dataset must survive");
    let revision = service.dataset_revision(DATASET).unwrap();
    Outcome {
        register_sensors: obs.register_sensors,
        append_revision: obs.append_revision,
        caps_after_append: obs.caps_after_append,
        retention_revision: obs.retention_revision,
        trimmed_timestamps: obs.trimmed_timestamps,
        caps_after_retention: obs.caps_after_retention,
        final_revision: revision,
        final_snapshot: snapshot_data(&ds, revision, 0, &[]).to_string(),
        ephemeral_gone: service.dataset(EPHEMERAL).is_err(),
    }
}

/// The undisturbed twin: the same workflow over a perfect transport.
fn undisturbed(fx: &Fixture) -> Outcome {
    let service = Arc::new(MiscelaService::new());
    let router = Arc::new(Router::new(Arc::clone(&service)));
    let mut client = ResilientClient::new(RouterTransport::new(router), "twin");
    let obs = run_workflow(&mut client, fx);
    assert_eq!(client.stats().retries, 0, "the twin saw no faults");
    outcome(obs, &service)
}

fn chaos_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("miscela-chaos-matrix-{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeds() -> Vec<u64> {
    if std::env::var("MISCELA_CHAOS_SMOKE").is_ok_and(|v| v == "1") {
        vec![11]
    } else {
        vec![11, 29, 47]
    }
}

/// One lossy episode: the workflow through seeded chaos against a fresh
/// in-memory server, asserted byte-identical to the twin.
fn run_chaos_episode(
    fx: &Fixture,
    expected: &Outcome,
    label: &str,
    config: ChaosConfig,
    seed: u64,
) {
    let service = Arc::new(MiscelaService::new());
    let router = Arc::new(Router::new(Arc::clone(&service)));
    let chaos = ChaosTransport::new(RouterTransport::new(router), config, seed);
    let mut client = ResilientClient::new(chaos, format!("{label}-{seed}"));
    let obs = run_workflow(&mut client, fx);
    // Trailing chaos: deliver every still-delayed request before judging
    // the final state — stale deliveries must be no-ops too.
    client.transport_mut().drain();
    let got = outcome(obs, &service);
    assert_eq!(
        &got, expected,
        "{label}/{seed}: chaos run diverged from the undisturbed twin"
    );
    let faults = client.transport().stats();
    assert!(
        faults.total_faults() > 0,
        "{label}/{seed}: episode injected no faults — tighten probabilities"
    );
    // Only losses are client-visible (a duplicated delivery still returns
    // a response), so retries are asserted only when a loss occurred.
    let retries = client.stats();
    if faults.dropped_requests + faults.dropped_responses + faults.delayed_requests > 0 {
        assert!(
            retries.retries > 0,
            "{label}/{seed}: losses were injected but the client never retried"
        );
    }
    let protocol = service.protocol_stats();
    let suppressed = protocol.key_replays + protocol.chunk_duplicates + protocol.stale_sessions;
    // Whenever the server saw a repeated delivery (response lost after the
    // apply, duplicated request, or a stale delayed delivery), the dedup
    // machinery must have absorbed it.
    if faults.dropped_responses + faults.duplicated_requests + faults.late_deliveries > 0 {
        assert!(
            suppressed > 0,
            "{label}/{seed}: server saw repeats but suppressed none: {protocol:?} / {faults:?}"
        );
    }
}

#[test]
fn request_loss_converges_to_the_twin() {
    let fx = fixture();
    let expected = undisturbed(&fx);
    for seed in seeds() {
        run_chaos_episode(
            &fx,
            &expected,
            "drop-req",
            ChaosConfig::request_drops(0.3),
            seed,
        );
    }
}

#[test]
fn response_loss_converges_to_the_twin() {
    let fx = fixture();
    let expected = undisturbed(&fx);
    for seed in seeds() {
        run_chaos_episode(
            &fx,
            &expected,
            "drop-resp",
            ChaosConfig::response_drops(0.3),
            seed,
        );
    }
}

#[test]
fn duplicated_delivery_converges_to_the_twin() {
    let fx = fixture();
    let expected = undisturbed(&fx);
    for seed in seeds() {
        run_chaos_episode(
            &fx,
            &expected,
            "duplicate",
            ChaosConfig::duplicates(0.3),
            seed,
        );
    }
}

#[test]
fn delayed_and_reordered_delivery_converges_to_the_twin() {
    let fx = fixture();
    let expected = undisturbed(&fx);
    for seed in seeds() {
        run_chaos_episode(&fx, &expected, "delay", ChaosConfig::delays(0.3), seed);
    }
}

#[test]
fn full_storm_converges_to_the_twin() {
    let fx = fixture();
    let expected = undisturbed(&fx);
    for seed in seeds() {
        run_chaos_episode(&fx, &expected, "storm", ChaosConfig::storm(0.25), seed);
    }
}

// ---------------------------------------------------------------------------
// mid-chaos crash + recovery
// ---------------------------------------------------------------------------

/// A transport that kills the durable server once, at the worst moment:
/// right after it applied a chosen append chunk but before the response
/// got out. The directory is recovered through the real disk opener into a
/// fresh database and the recovered router is swapped in behind the
/// client's back.
struct CrashOnce {
    inner: SwappableRouter,
    dir: PathBuf,
    crash_on_seq: i64,
    crashed: bool,
}

impl Transport for CrashOnce {
    fn send(&mut self, request: &ApiRequest) -> Result<ApiResponse, TransportError> {
        let response = self.inner.send(request)?;
        let is_target = !self.crashed
            && request.path.ends_with("/append/chunk")
            && request.body.get("seq").and_then(|s| s.as_i64()) == Some(self.crash_on_seq);
        if is_target {
            self.crashed = true;
            let service =
                MiscelaService::with_database_and_durability(Arc::new(Database::new()), &self.dir)
                    .expect("mid-chaos recovery must succeed");
            self.inner.swap(Arc::new(Router::new(Arc::new(service))));
            return Err(TransportError::Lost(
                "server crashed after applying the request, before responding".to_string(),
            ));
        }
        Ok(response)
    }
}

#[test]
fn mid_chaos_crash_and_recovery_converges_to_the_twin() {
    let fx = fixture();
    let expected = undisturbed(&fx);
    let dir = chaos_dir("crash");
    let service = Arc::new(MiscelaService::with_durability(&dir).expect("durable service"));
    let swappable = SwappableRouter::new(Arc::new(Router::new(Arc::clone(&service))));
    let crash = CrashOnce {
        inner: swappable.clone(),
        dir: dir.clone(),
        crash_on_seq: 2,
        crashed: false,
    };
    let chaos = ChaosTransport::new(crash, ChaosConfig::storm(0.15), 101);
    let mut client = ResilientClient::new(chaos, "crash-episode");
    let obs = run_workflow(&mut client, &fx);
    client.transport_mut().drain();
    assert!(
        client.transport().inner().crashed,
        "the crash point was never reached — the workflow must append ≥ 2 chunks"
    );
    // Judge the *recovered* server (the one the swap installed), plus one
    // more restart: the post-crash writes must themselves be durable.
    let recovered = swappable.current();
    let got = outcome(obs, recovered.service());
    assert_eq!(
        got, expected,
        "crash episode diverged from the undisturbed twin"
    );
    let protocol = recovered.service().protocol_stats();
    assert!(
        protocol.key_replays + protocol.chunk_duplicates + protocol.stale_sessions > 0,
        "the crash retry must have exercised dedup on the recovered server: {protocol:?}"
    );
    drop(recovered);
    let reopened = MiscelaService::with_database_and_durability(Arc::new(Database::new()), &dir)
        .expect("final restart");
    let ds = reopened.dataset(DATASET).expect("dataset survives restart");
    let revision = reopened.dataset_revision(DATASET).unwrap();
    assert_eq!(
        snapshot_data(&ds, revision, 0, &[]).to_string(),
        expected.final_snapshot,
        "post-crash state must survive one more recovery byte-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
