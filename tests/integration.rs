//! Cross-crate integration tests: the full Miscela-V pipeline from CSV
//! upload through mining, caching and visualization.

use miscela_v::miscela_core::baseline::NaiveMiner;
use miscela_v::miscela_core::evolving::extract_with_segmentation;
use miscela_v::miscela_core::{CapSet, Miner, MiningParams, ProximityGraph};
use miscela_v::miscela_csv::{split_into_chunks, DatasetWriter};
use miscela_v::miscela_datagen::{CovidGenerator, PlantedGenerator, SantanderGenerator};
use miscela_v::miscela_model::AttributeId;
use miscela_v::miscela_server::{ApiRequest, MiscelaService, Router};
use miscela_v::miscela_store::{persist, Json};
use miscela_v::miscela_viz::{Dashboard, MapConfig, MapView};
use miscela_v::MiscelaV;
use std::sync::Arc;

fn quick_params() -> MiningParams {
    MiningParams::new()
        .with_epsilon(0.4)
        .with_eta_km(0.5)
        .with_psi(20)
        .with_mu(3)
        .with_segmentation(false)
}

#[test]
fn csv_export_upload_mine_visualize_round_trip() {
    // Generate -> export to the paper's three files -> chunked upload through
    // the API -> mine -> render, all through public interfaces.
    let generated = SantanderGenerator::small().with_scale(0.02).generate();
    let writer = DatasetWriter::new();
    let system = MiscelaV::new();
    let summary = system
        .upload(
            "uploaded",
            &writer.data_csv(&generated),
            &writer.location_csv(&generated),
            &writer.attribute_csv(&generated),
        )
        .expect("upload succeeds");
    assert_eq!(summary.sensors, generated.sensor_count());

    let outcome = system.mine("uploaded", &quick_params()).unwrap();
    assert!(!outcome.result.caps.is_empty());

    // The same parameters on the directly registered dataset find the same
    // CAP count (the CSV round trip loses only float formatting precision).
    system.register_dataset(generated);
    let direct = system.mine("santander", &quick_params()).unwrap();
    assert_eq!(direct.result.caps.len(), outcome.result.caps.len());

    // Visualization layers accept the result.
    let ds = system.service().dataset("uploaded").unwrap();
    let dash = Dashboard::new(&ds, &outcome.result.caps);
    let svg = dash.render_top().expect("at least one CAP").render();
    assert!(svg.contains("<svg"));
    let map = MapView::new(&ds, &outcome.result.caps, MapConfig::default());
    assert_eq!(map.markers(None).len(), ds.sensor_count());
}

#[test]
fn miscela_and_naive_baseline_agree_on_generated_data() {
    let ds = SantanderGenerator::small()
        .with_scale(0.02)
        .with_seed(5)
        .generate();
    let params = quick_params().with_max_sensors(Some(3));
    let result = Miner::new(params.clone()).unwrap().mine(&ds).unwrap();

    let evolving: Vec<_> = ds
        .iter()
        .map(|ss| {
            extract_with_segmentation(
                ss.series,
                params.epsilon,
                params.segmentation,
                params.segmentation_error,
            )
        })
        .collect();
    let attributes: Vec<AttributeId> = ds.iter().map(|ss| ss.sensor.attribute).collect();
    let graph = ProximityGraph::build(&ds, params.eta_km);
    let naive = NaiveMiner {
        evolving: &evolving,
        attributes: &attributes,
        graph: &graph,
        params: &params,
    }
    .mine();

    let keys = |set: &CapSet| -> Vec<(Vec<u32>, usize)> {
        set.dedup_by_sensors()
            .caps()
            .iter()
            .map(|c| (c.sensor_key(), c.support))
            .collect()
    };
    assert!(!result.caps.is_empty());
    assert_eq!(keys(&result.caps), keys(&naive));
}

#[test]
fn planted_patterns_survive_the_whole_pipeline() {
    let gen = PlantedGenerator {
        groups: 2,
        group_size: 3,
        noise_sensors: 3,
        timestamps: 300,
        events_per_group: 40,
        seed: 3,
    };
    let (ds, truth) = gen.generate();
    let writer = DatasetWriter::new();
    let system = MiscelaV::new();
    system
        .upload(
            "planted",
            &writer.data_csv(&ds),
            &writer.location_csv(&ds),
            &writer.attribute_csv(&ds),
        )
        .unwrap();
    let params = MiningParams::new()
        .with_epsilon(5.0)
        .with_eta_km(1.0)
        .with_psi(15)
        .with_mu(3)
        .with_segmentation(false);
    let outcome = system.mine("planted", &params).unwrap();
    let uploaded = system.service().dataset("planted").unwrap();
    for planted in &truth {
        let expected: std::collections::BTreeSet<&str> =
            planted.sensor_ids.iter().map(|s| s.as_str()).collect();
        let found = outcome.result.caps.caps().iter().any(|cap| {
            let names: std::collections::BTreeSet<&str> = cap
                .sensors()
                .iter()
                .map(|&idx| uploaded.sensor(idx).id.as_str())
                .collect();
            names == expected
        });
        assert!(
            found,
            "planted group {:?} lost in the pipeline",
            planted.sensor_ids
        );
    }
}

#[test]
fn cache_survives_store_persistence() {
    // Mine once, persist the store to disk, reload it into a fresh service,
    // and check the repeated request is a cache hit without the dataset's
    // series even being resident (the CAPs come from the persisted cache).
    let dir = std::env::temp_dir().join(format!("miscela-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ds = SantanderGenerator::small().with_scale(0.02).generate();
    let params = quick_params();
    let first_caps;
    {
        let service = Arc::new(MiscelaService::new());
        service.register_dataset(ds);
        let outcome = service.mine("santander", &params).unwrap();
        assert!(!outcome.cache_hit);
        first_caps = outcome.result.caps.clone();
        persist::save(service.database(), &dir).unwrap();
    }

    let reloaded = Arc::new(persist::load(&dir).unwrap());
    let service = MiscelaService::with_database(reloaded);
    // The dataset itself is not re-registered, but the cached result is
    // available for the same (dataset, parameters) key.
    let outcome = service.mine("santander", &params).unwrap();
    assert!(outcome.cache_hit);
    assert_eq!(outcome.result.caps, first_caps);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn covid_before_after_changes_patterns_end_to_end() {
    let gen = CovidGenerator::small();
    let ds = gen.generate();
    let params = MiningParams::new()
        .with_epsilon(0.8)
        .with_eta_km(2.0)
        .with_psi(30)
        .with_segmentation(false);
    let analysis = miscela_v::analysis::before_after(&ds, gen.lockdown(), &params).unwrap();
    assert!(analysis.after_means["NO2"] < analysis.before_means["NO2"]);
    assert!(analysis.after_means["O3"] > analysis.before_means["O3"]);
    assert!(!analysis.before.is_empty());
    // The traffic-driven NO2 <-> PM2.5 coupling weakens after the lockdown
    // (normalized by window length, since the windows differ in size).
    let no2 = ds.attributes().id_of("NO2").unwrap();
    let pm25 = ds.attributes().id_of("PM2.5").unwrap();
    let rate = |caps: &CapSet, len: usize| {
        caps.with_attributes(&[no2, pm25])
            .iter()
            .map(|c| c.support)
            .max()
            .unwrap_or(0) as f64
            / len.max(1) as f64
    };
    let before_ds_len = ds
        .grid()
        .window(
            miscela_v::miscela_model::TimeRange::new(ds.grid().range().start, gen.lockdown())
                .unwrap(),
        )
        .1;
    let after_ds_len = ds.timestamp_count() - before_ds_len;
    assert!(
        rate(&analysis.before, before_ds_len) > rate(&analysis.after, after_ds_len) + 0.05,
        "NO2/PM2.5 coupling did not weaken"
    );
}

#[test]
fn api_router_full_session() {
    // A scripted interactive session through the request/response API.
    let service = Arc::new(MiscelaService::new());
    let router = Router::new(Arc::clone(&service));
    let generated = SantanderGenerator::small().with_scale(0.02).generate();
    let writer = DatasetWriter::new();

    let resp = router.handle(&ApiRequest::post(
        "/datasets/s1/upload/begin",
        Json::from_pairs([
            ("location_csv", Json::from(writer.location_csv(&generated))),
            (
                "attribute_csv",
                Json::from(writer.attribute_csv(&generated)),
            ),
        ]),
    ));
    assert!(resp.is_success());
    for chunk in split_into_chunks(&writer.data_csv(&generated), 3_000) {
        assert!(router
            .handle(&ApiRequest::post(
                "/datasets/s1/upload/chunk",
                Json::from_pairs([
                    ("index", Json::from(chunk.index)),
                    ("total", Json::from(chunk.total)),
                    ("content", Json::from(chunk.content)),
                ]),
            ))
            .is_success());
    }
    assert!(router
        .handle(&ApiRequest::post(
            "/datasets/s1/upload/finish",
            Json::object()
        ))
        .is_success());

    let mine = Json::from_pairs([
        ("epsilon", Json::from(0.4)),
        ("eta_km", Json::from(0.5)),
        ("psi", Json::from(20i64)),
        ("segmentation", Json::from(false)),
    ]);
    let first = router.handle(&ApiRequest::post("/datasets/s1/mine", mine.clone()));
    assert!(first.is_success());
    let second = router.handle(&ApiRequest::post("/datasets/s1/mine", mine));
    assert_eq!(second.body.get("cache_hit").unwrap().as_bool(), Some(true));
    let stats = router.handle(&ApiRequest::get("/cache/stats"));
    assert!(stats.body.get("hits").unwrap().as_i64().unwrap() >= 1);
}
