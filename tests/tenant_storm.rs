//! Multi-tenant storm over the sharded store: M tenants × K datasets with
//! concurrent appends, mines, watches, retention trims and deletes.
//!
//! What the storm must prove:
//!
//! * **Monotonic revisions** — every writer and every watcher observes a
//!   strictly increasing revision sequence per dataset; no bump is lost or
//!   reordered across shard locks.
//! * **Watch, not poll** — a subscriber learns of an append-driven revision
//!   bump through `watch` alone; the watcher threads issue zero mine calls
//!   (counted and asserted).
//! * **Typed close** — deleting a dataset wakes its parked watchers with
//!   the `NotFound` close instead of leaving them parked until deadline.
//! * **No cross-tenant visibility** — each tenant's listing contains
//!   exactly its own datasets, and each dataset's content matches the
//!   tenant's own ingest, not a neighbour's.
//! * **Deterministic content** — after the storm, re-mining every
//!   surviving dataset equals a cold twin rebuilt from the same documents
//!   on a fresh single-tenant service, byte for byte.

use miscela_v::miscela_core::MiningParams;
use miscela_v::miscela_csv::DatasetWriter;
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_model::{Dataset, RetentionPolicy};
use miscela_v::miscela_server::message::ApiError;
use miscela_v::miscela_server::MiscelaService;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const TENANTS: [&str; 3] = ["acme", "globex", "initech"];
const DATASETS_PER_TENANT: usize = 3;
const APPENDS_PER_DATASET: usize = 3;
/// Timestamps fed to the dataset by each append slice.
const APPEND_STEP: usize = 8;

fn quick_params() -> MiningParams {
    MiningParams::new()
        .with_epsilon(0.4)
        .with_eta_km(0.5)
        .with_psi(20)
        .with_mu(3)
        .with_segmentation(false)
}

/// Deterministic per-(tenant, dataset) content: each gets a different
/// sensor scale, so cross-tenant leakage would be visible as a wrong
/// record count or CAP set, not silently identical data.
fn full_dataset(tenant_idx: usize, ds_idx: usize) -> Dataset {
    let scale = 0.02 + 0.004 * (tenant_idx * DATASETS_PER_TENANT + ds_idx) as f64;
    SantanderGenerator::small().with_scale(scale).generate()
}

/// The deterministic ingest plan for one dataset: the prefix documents to
/// register, the tail documents to append (in order), and whether a
/// retention trim follows.
struct Plan {
    name: String,
    location_csv: String,
    attribute_csv: String,
    prefix_csv: String,
    tail_csvs: Vec<String>,
    trim_to: Option<usize>,
    expected_records: usize,
}

fn plan_for(tenant_idx: usize, ds_idx: usize) -> Plan {
    let full = full_dataset(tenant_idx, ds_idx);
    let writer = DatasetWriter::new();
    let n = full.timestamp_count();
    let grid = full.grid();
    let mut cuts = Vec::new();
    for a in (0..=APPENDS_PER_DATASET).rev() {
        cuts.push(grid.at(n - a * APPEND_STEP - 1).unwrap());
    }
    let prefix = full.slice_time(grid.start(), cuts[0]).unwrap();
    let tail_csvs = (0..APPENDS_PER_DATASET)
        .map(|i| {
            let upper = if i + 1 == APPENDS_PER_DATASET {
                grid.range().end
            } else {
                cuts[i + 1]
            };
            writer.data_csv(&full.slice_time(cuts[i], upper).unwrap())
        })
        .collect();
    Plan {
        name: format!("d{ds_idx}"),
        location_csv: writer.location_csv(&prefix),
        attribute_csv: writer.attribute_csv(&prefix),
        prefix_csv: writer.data_csv(&prefix),
        tail_csvs,
        // The middle dataset of every tenant gets a post-storm retention
        // trim; the last one gets deleted under parked watchers.
        trim_to: (ds_idx == 1).then_some(n - APPEND_STEP),
        expected_records: full.record_count(),
    }
}

/// Runs the plan's mutations against a service, retrying typed overload
/// sheds (the storm intentionally runs many writers over one admission
/// budget). Returns the revision after each mutation.
fn run_plan(svc: &MiscelaService, tenant: &str, plan: &Plan) -> Vec<u64> {
    let mut revisions = Vec::new();
    svc.upload_documents_in(
        tenant,
        &plan.name,
        &plan.prefix_csv,
        &plan.location_csv,
        &plan.attribute_csv,
        5_000,
    )
    .unwrap();
    revisions.push(svc.dataset_revision_in(tenant, &plan.name).unwrap());
    for tail in &plan.tail_csvs {
        let summary = loop {
            match svc.append_documents_in(tenant, &plan.name, tail, 1_000) {
                Ok(summary) => break summary,
                Err(ApiError::Overloaded { .. }) => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(other) => panic!("append failed: {other:?}"),
            }
        };
        revisions.push(summary.revision);
    }
    if let Some(keep) = plan.trim_to {
        let mut policy = RetentionPolicy::unbounded();
        policy.max_timestamps = Some(keep);
        let (summary, _) = svc
            .set_retention_keyed_in(tenant, &plan.name, policy, None)
            .unwrap();
        if summary.trimmed_timestamps > 0 {
            revisions.push(summary.revision);
        }
    }
    revisions
}

#[test]
fn tenant_storm_keeps_namespaces_isolated_and_revisions_monotonic() {
    let svc = MiscelaService::new();
    let plans: Vec<Vec<Plan>> = (0..TENANTS.len())
        .map(|t| (0..DATASETS_PER_TENANT).map(|d| plan_for(t, d)).collect())
        .collect();

    let done = AtomicBool::new(false);
    // Watchers never mine; this counter existing (and staying zero) makes
    // the "revision bumps arrive via watch, not mine polls" claim explicit.
    let watcher_mine_polls = AtomicU64::new(0);
    let watch_bumps = AtomicU64::new(0);
    let typed_closes = AtomicU64::new(0);

    std::thread::scope(|s| {
        // One watcher per (tenant, dataset): a pure watch loop that must
        // observe a strictly increasing revision sequence and, for the
        // deleted dataset, end in the typed close.
        for (t, tenant) in TENANTS.iter().enumerate() {
            for plan in &plans[t] {
                let svc = &svc;
                let done = &done;
                let watch_bumps = &watch_bumps;
                let typed_closes = &typed_closes;
                let name = plan.name.clone();
                s.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let deadline = Instant::now() + Duration::from_millis(200);
                        match svc.watch_in(tenant, &name, last, deadline) {
                            Ok(out) => {
                                if out.changed {
                                    assert!(
                                        out.revision > last,
                                        "watcher saw revision go {last} -> {} on \
                                         {tenant}/{name}",
                                        out.revision
                                    );
                                    last = out.revision;
                                    watch_bumps.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(ApiError::NotFound(msg)) => {
                                // Before registration the dataset is absent;
                                // only a close after a bump counts as the
                                // delete waking parked watchers.
                                if last > 0 {
                                    assert!(msg.contains("watch closed"), "{msg}");
                                    typed_closes.fetch_add(1, Ordering::Relaxed);
                                    return;
                                }
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(other) => panic!("watch failed: {other:?}"),
                        }
                        if done.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                });
            }
        }
        // A few miners reading whatever exists mid-storm: mines must never
        // affect revisions and shed/miss errors are expected noise.
        for (t, tenant) in TENANTS.iter().enumerate() {
            let svc = &svc;
            let done = &done;
            let name = plans[t][0].name.clone();
            s.spawn(move || {
                let params = quick_params();
                while !done.load(Ordering::Relaxed) {
                    match svc.mine_in(tenant, &name, &params) {
                        Ok(_)
                        | Err(ApiError::NotFound(_))
                        | Err(ApiError::Overloaded { .. })
                        | Err(ApiError::DeadlineExceeded(_)) => {}
                        Err(other) => panic!("mine failed: {other:?}"),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // Writers: the full deterministic ingest per dataset, concurrently
        // across all tenants, asserting strictly monotonic revisions.
        let mut writers = Vec::new();
        for (t, tenant) in TENANTS.iter().enumerate() {
            for plan in &plans[t] {
                let svc = &svc;
                writers.push(s.spawn(move || {
                    let revisions = run_plan(svc, tenant, plan);
                    assert!(
                        revisions.windows(2).all(|w| w[1] > w[0]),
                        "revisions not strictly monotonic on {tenant}/{}: {revisions:?}",
                        plan.name
                    );
                }));
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        // All writers done: delete every tenant's last dataset while its
        // watcher is parked, then let the remaining watchers drain.
        for (t, tenant) in TENANTS.iter().enumerate() {
            svc.delete_dataset_keyed_in(tenant, &plans[t][DATASETS_PER_TENANT - 1].name, None)
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        done.store(true, Ordering::Relaxed);
    });

    assert_eq!(watcher_mine_polls.load(Ordering::Relaxed), 0);
    assert!(
        watch_bumps.load(Ordering::Relaxed) >= (TENANTS.len() * DATASETS_PER_TENANT) as u64,
        "watchers must observe append-driven bumps: {}",
        watch_bumps.load(Ordering::Relaxed)
    );
    assert_eq!(
        typed_closes.load(Ordering::Relaxed),
        TENANTS.len() as u64,
        "every deleted dataset must close its parked watcher with NotFound"
    );

    // No cross-tenant visibility: each namespace lists exactly its own
    // surviving datasets, with that tenant's own content.
    for (t, tenant) in TENANTS.iter().enumerate() {
        let mut names: Vec<String> = svc
            .list_datasets_in(tenant)
            .unwrap()
            .into_iter()
            .map(|d| d.name)
            .collect();
        names.sort();
        let expected: Vec<String> = (0..DATASETS_PER_TENANT - 1)
            .map(|d| format!("d{d}"))
            .collect();
        assert_eq!(names, expected, "tenant {tenant} sees a wrong listing");
        // The untouched dataset's record count matches this tenant's own
        // generated content (every tenant's differs by construction).
        let ds = svc.dataset_in(tenant, &plans[t][0].name).unwrap();
        assert_eq!(
            ds.record_count(),
            plans[t][0].expected_records,
            "tenant {tenant} is serving someone else's bytes"
        );
    }

    // Deterministic content: post-storm re-mines equal cold twins rebuilt
    // from the same documents on a fresh default-tenant service.
    let params = quick_params();
    for (t, tenant) in TENANTS.iter().enumerate() {
        for plan in plans[t].iter().take(DATASETS_PER_TENANT - 1) {
            let twin_svc = MiscelaService::new();
            run_plan(&twin_svc, "default", plan);
            let warm = svc.mine_in(tenant, &plan.name, &params).unwrap();
            let cold = twin_svc.mine(&plan.name, &params).unwrap();
            assert_eq!(
                warm.result.caps, cold.result.caps,
                "storm-surviving {tenant}/{} diverged from its cold twin",
                plan.name
            );
            assert_eq!(warm.revision, cold.revision);
        }
    }
}
