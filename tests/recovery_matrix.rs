//! The crash-recovery kill-point matrix (the durability proof harness).
//!
//! A probe run first records the byte boundary of every durable write the
//! append workflow performs (snapshot installs and WAL records alike,
//! through one shared [`FailPoint`]). From those boundaries the matrix
//! derives kill budgets that land *at* every framing boundary (the next
//! write dies), one byte *before* it (the record tears mid-frame) and one
//! byte *after* the previous one (the record tears at its first byte) —
//! plus budget 0, the crash before anything was ever written.
//!
//! For every budget the workflow — register via chunked upload, begin an
//! append session, stream the tail chunks, finish — runs against a durable
//! service whose sinks die at that byte. The op that observes the simulated
//! crash errors; the driver then "restarts the process": a fresh service
//! (fresh in-memory database) recovers the same directory through the
//! normal disk opener and the client retries the failed op, exactly as a
//! real uploader would. At the end the recovered dataset must mine to a
//! CapSet byte-identical to an uninterrupted twin's: no acknowledged chunk
//! may be lost, no torn tail may be replayed.
//!
//! The fixture's tail deliberately crosses the 256-point series-block
//! boundary, so the finishing append seals a block and triggers the
//! snapshot + WAL-compaction path mid-matrix.
//!
//! `MISCELA_RECOVERY_SMOKE=1` strides the budget list (every 5th point,
//! keeping the first and last) for a bounded CI smoke run.

use miscela_v::miscela_cache::codec::capset_to_json;
use miscela_v::miscela_core::{CapSet, MiningParams};
use miscela_v::miscela_csv::chunk::Chunk;
use miscela_v::miscela_csv::{split_into_chunks, DatasetWriter};
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_model::SERIES_BLOCK_LEN;
use miscela_v::miscela_server::{ApiError, MiscelaService};
use miscela_v::miscela_store::wal::{FailPoint, FailingOpener};
use miscela_v::miscela_store::Database;
use std::path::PathBuf;
use std::sync::Arc;

const DATASET: &str = "santander";
const PREFIX_LEN: usize = 240;

struct Fixture {
    location_csv: String,
    attribute_csv: String,
    prefix_csv: String,
    tail_chunks: Vec<Chunk>,
    full_timestamps: usize,
}

fn fixture() -> Fixture {
    let full = SantanderGenerator::small().with_scale(0.02).generate();
    let n = full.timestamp_count();
    assert!(
        PREFIX_LEN < SERIES_BLOCK_LEN && n > SERIES_BLOCK_LEN,
        "fixture must cross the block boundary during the append (n = {n})"
    );
    let split_t = full.grid().at(PREFIX_LEN).unwrap();
    let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
    let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
    let writer = DatasetWriter::new();
    let tail_chunks = split_into_chunks(&writer.data_csv(&tail), 200);
    assert!(tail_chunks.len() >= 2, "tail must span several chunks");
    Fixture {
        location_csv: writer.location_csv(&prefix),
        attribute_csv: writer.attribute_csv(&prefix),
        prefix_csv: writer.data_csv(&prefix),
        tail_chunks,
        full_timestamps: n,
    }
}

fn quick_params() -> MiningParams {
    MiningParams::new()
        .with_epsilon(0.4)
        .with_eta_km(0.5)
        .with_psi(20)
        .with_mu(3)
        .with_segmentation(false)
}

/// One client-visible step of the append workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Upload,
    Begin,
    Chunk(usize),
    Finish,
}

fn script(fx: &Fixture) -> Vec<Op> {
    let mut ops = vec![Op::Upload, Op::Begin];
    ops.extend((0..fx.tail_chunks.len()).map(Op::Chunk));
    ops.push(Op::Finish);
    ops
}

/// The idempotency key the workflow's finish carries: the same key on the
/// original attempt and on the post-recovery retry, exactly as a real
/// client that never saw the first acknowledgement would resend it.
const FINISH_KEY: &str = "recovery-matrix-finish";

fn run_op(svc: &MiscelaService, fx: &Fixture, op: Op) -> Result<(), ApiError> {
    match op {
        Op::Upload => svc
            .upload_documents(
                DATASET,
                &fx.prefix_csv,
                &fx.location_csv,
                &fx.attribute_csv,
                10_000,
            )
            .map(|_| ()),
        Op::Begin => svc.begin_append(DATASET),
        Op::Chunk(i) => svc.append_chunk(DATASET, &fx.tail_chunks[i]).map(|_| ()),
        Op::Finish => svc
            .finish_append_keyed(DATASET, Some(FINISH_KEY))
            .map(|_| ()),
    }
}

fn matrix_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("miscela-recovery-matrix-{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The uninterrupted twin: the same workflow on a plain in-memory service.
fn uninterrupted_caps(fx: &Fixture) -> CapSet {
    let svc = MiscelaService::new();
    for op in script(fx) {
        run_op(&svc, fx, op).expect("uninterrupted run must succeed");
    }
    assert_eq!(
        svc.dataset(DATASET).unwrap().timestamp_count(),
        fx.full_timestamps
    );
    svc.mine(DATASET, &quick_params()).unwrap().result.caps
}

/// Probe run: the full workflow through a never-tripping fail point,
/// recording the cumulative byte boundary of every durable write.
fn probe_boundaries(fx: &Fixture) -> Vec<u64> {
    let dir = matrix_dir("probe");
    let fail = FailPoint::unlimited();
    let opener = Arc::new(FailingOpener::new(fail.clone()));
    let svc =
        MiscelaService::with_durability_opener(Arc::new(Database::new()), &dir, opener).unwrap();
    for op in script(fx) {
        run_op(&svc, fx, op).expect("probe run must succeed");
    }
    let boundaries = fail.write_boundaries();
    assert!(
        boundaries.len() >= 6,
        "expected several durable writes, saw {boundaries:?}"
    );
    boundaries
}

/// Kill budgets derived from the probe's write boundaries: before, inside
/// and exactly at every framing boundary.
fn kill_budgets(boundaries: &[u64]) -> Vec<u64> {
    let mut budgets = std::collections::BTreeSet::new();
    budgets.insert(0);
    let mut prev = 0u64;
    for &b in boundaries {
        if b > prev + 1 {
            budgets.insert(prev + 1); // first byte of this write persists
        }
        if b > prev {
            budgets.insert(b - 1); // all but the last byte persists
        }
        budgets.insert(b); // the write completes; the *next* one dies
        prev = b;
    }
    let budgets: Vec<u64> = budgets.into_iter().collect();
    if std::env::var("MISCELA_RECOVERY_SMOKE").is_ok_and(|v| v == "1") {
        let last = *budgets.last().unwrap();
        let mut smoke: Vec<u64> = budgets.iter().copied().step_by(5).collect();
        if smoke.last() != Some(&last) {
            smoke.push(last);
        }
        smoke
    } else {
        budgets
    }
}

/// Runs the workflow with a crash at `budget` bytes, restarts, resumes, and
/// returns the recovered dataset's mined CapSet.
fn run_with_kill(fx: &Fixture, budget: u64) -> CapSet {
    let dir = matrix_dir(&format!("kill-{budget}"));
    let fail = FailPoint::after_bytes(budget);
    let opener = Arc::new(FailingOpener::new(fail.clone()));
    let mut svc =
        MiscelaService::with_durability_opener(Arc::new(Database::new()), &dir, opener).unwrap();
    let ops = script(fx);
    let mut killed = false;
    let mut i = 0;
    while i < ops.len() {
        match run_op(&svc, fx, ops[i]) {
            Ok(()) => i += 1,
            Err(e) => {
                assert!(
                    !killed,
                    "budget {budget}: second failure after the restart at {:?}: {e:?}",
                    ops[i]
                );
                assert!(
                    fail.tripped(),
                    "budget {budget}: {:?} failed without the fail point tripping: {e:?}",
                    ops[i]
                );
                killed = true;
                // "Restart the process": recover the directory through the
                // real disk opener into a fresh in-memory database, then
                // retry the op whose acknowledgement never arrived.
                svc = MiscelaService::with_database_and_durability(Arc::new(Database::new()), &dir)
                    .unwrap();
                if ops[i] == Op::Finish {
                    // The retried finish carries the same idempotency key
                    // as the attempt whose acknowledgement never arrived,
                    // so it must succeed either way the crash landed: if
                    // the commit record died with the process, the session
                    // (restored from the WAL) is applied now; if the
                    // commit was durable, the *original response* is
                    // replayed from the recovered watermark — never a
                    // NotFound, never a double-apply.
                    let (summary, _elapsed, replayed) = svc
                        .finish_append_keyed(DATASET, Some(FINISH_KEY))
                        .unwrap_or_else(|e| {
                            panic!(
                                "budget {budget}: keyed finish retry failed after recovery: {e:?}"
                            )
                        });
                    assert_eq!(
                        summary.timestamps, fx.full_timestamps,
                        "budget {budget}: finish retry (replayed: {replayed}) reported wrong rows"
                    );
                    assert_eq!(
                        summary.revision, 2,
                        "budget {budget}: finish retry (replayed: {replayed}) double-applied"
                    );
                } else if let Err(e) = run_op(&svc, fx, ops[i]) {
                    panic!(
                        "budget {budget}: retry of {:?} failed after recovery: {e:?}",
                        ops[i]
                    )
                }
                i += 1;
            }
        }
    }
    // A final restart regardless of where (or whether) the kill landed:
    // whatever the workflow acknowledged must survive one more recovery.
    drop(svc);
    let svc =
        MiscelaService::with_database_and_durability(Arc::new(Database::new()), &dir).unwrap();
    assert_eq!(
        svc.dataset(DATASET).unwrap().timestamp_count(),
        fx.full_timestamps,
        "budget {budget}: recovery lost acknowledged rows"
    );
    let caps = svc.mine(DATASET, &quick_params()).unwrap().result.caps;
    let _ = std::fs::remove_dir_all(&dir);
    caps
}

#[test]
fn every_kill_point_recovers_the_acknowledged_state() {
    let fx = fixture();
    let expected = uninterrupted_caps(&fx);
    let expected_json = capset_to_json(&expected).to_string();
    let boundaries = probe_boundaries(&fx);
    let budgets = kill_budgets(&boundaries);
    for &budget in &budgets {
        let caps = run_with_kill(&fx, budget);
        assert_eq!(
            caps, expected,
            "budget {budget}: recovered CapSet diverged from the uninterrupted twin"
        );
        assert_eq!(
            capset_to_json(&caps).to_string(),
            expected_json,
            "budget {budget}: recovered CapSet serialization diverged"
        );
    }
    let base = std::env::temp_dir().join(format!("miscela-recovery-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
}
