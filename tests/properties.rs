//! Property-based tests over the core data structures and invariants.

use miscela_v::miscela_core::evolving::extract_evolving;
use miscela_v::miscela_core::{Bitset, MiningParams};
use miscela_v::miscela_csv::data_csv;
use miscela_v::miscela_model::{GeoPoint, TimeSeries, Timestamp};
use miscela_v::miscela_store::Json;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timestamp format/parse round-trips for any representable time.
    #[test]
    fn timestamp_roundtrip(secs in -2_000_000_000i64..4_000_000_000i64) {
        let t = Timestamp::from_epoch_seconds(secs);
        let parsed = Timestamp::parse(&t.format()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    /// Calendar fields stay in range for any timestamp.
    #[test]
    fn calendar_fields_in_range(secs in -2_000_000_000i64..4_000_000_000i64) {
        let t = Timestamp::from_epoch_seconds(secs);
        let (_, m, d) = t.ymd();
        let (h, mi, s) = t.hms();
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert!(h < 24 && mi < 60 && s < 60);
        prop_assert!(t.weekday() < 7);
    }

    /// Haversine distance is symmetric, non-negative and satisfies the
    /// identity of indiscernibles (approximately).
    #[test]
    fn haversine_properties(
        lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
    ) {
        let a = GeoPoint::new_unchecked(lat1, lon1);
        let b = GeoPoint::new_unchecked(lat2, lon2);
        let d1 = a.distance_km(&b);
        let d2 = b.distance_km(&a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(a.distance_km(&a) < 1e-9);
        prop_assert!(d1 <= 20_100.0); // half the Earth's circumference plus slack
    }

    /// Bitset intersection count never exceeds either operand's count and
    /// and/or are consistent.
    #[test]
    fn bitset_invariants(
        idx_a in proptest::collection::vec(0usize..500, 0..80),
        idx_b in proptest::collection::vec(0usize..500, 0..80),
    ) {
        let a = Bitset::from_indices(500, &idx_a);
        let b = Bitset::from_indices(500, &idx_b);
        let and = a.and(&b);
        let or = a.or(&b);
        prop_assert_eq!(and.count(), a.and_count(&b));
        prop_assert!(and.count() <= a.count().min(b.count()));
        prop_assert!(or.count() >= a.count().max(b.count()));
        prop_assert_eq!(and.count() + or.count(), a.count() + b.count());
        // Round trip through indices.
        prop_assert_eq!(Bitset::from_indices(500, &a.indices()), a);
    }

    /// Evolving-event counts are monotone non-increasing in epsilon, and no
    /// timestamp is both up- and down-evolving for positive epsilon.
    #[test]
    fn evolving_monotone_in_epsilon(
        values in proptest::collection::vec(-50.0f64..50.0, 2..200),
        eps1 in 0.01f64..5.0,
        eps2 in 0.01f64..5.0,
    ) {
        let series = TimeSeries::from_values(values);
        let (lo, hi) = if eps1 <= eps2 { (eps1, eps2) } else { (eps2, eps1) };
        let e_lo = extract_evolving(&series, lo);
        let e_hi = extract_evolving(&series, hi);
        prop_assert!(e_hi.total() <= e_lo.total());
        prop_assert_eq!(e_lo.up().and_count(e_lo.down()), 0);
    }

    /// JSON serialization round-trips for arbitrary nested values built from
    /// a small recursive generator.
    #[test]
    fn json_roundtrip(value in json_strategy()) {
        let text = value.to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        prop_assert_eq!(parsed, value.clone());
        let pretty = value.to_string_pretty();
        prop_assert_eq!(Json::parse(&pretty).unwrap(), value);
    }

    /// data.csv rows round-trip through format/parse.
    #[test]
    fn data_csv_roundtrip(
        id in "[A-Za-z0-9_-]{1,12}",
        attr in "[A-Za-z][A-Za-z0-9 .]{0,15}",
        secs in 0i64..4_000_000_000i64,
        value in proptest::option::of(-1.0e6f64..1.0e6),
    ) {
        let row = data_csv::DataRow {
            id: miscela_v::miscela_model::SensorId::new(id),
            attribute: attr.trim().to_string(),
            time: Timestamp::from_epoch_seconds(secs),
            value,
        };
        let line = data_csv::format_row(&row);
        let parsed = data_csv::parse_document(&line).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].id, &row.id);
        prop_assert_eq!(&parsed[0].attribute, &row.attribute);
        prop_assert_eq!(parsed[0].time, row.time);
        match (parsed[0].value, row.value) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() <= (b.abs() * 1e-6).max(1e-6)),
            (None, None) => {}
            other => prop_assert!(false, "value mismatch: {:?}", other),
        }
    }

    /// Parameter signatures are injective over the fields users actually
    /// change interactively (psi, mu, epsilon, eta).
    #[test]
    fn params_signature_distinguishes(
        psi1 in 1usize..100, psi2 in 1usize..100,
        mu1 in 2usize..6, mu2 in 2usize..6,
    ) {
        let p1 = MiningParams::new().with_psi(psi1).with_mu(mu1);
        let p2 = MiningParams::new().with_psi(psi2).with_mu(mu2);
        prop_assert_eq!(
            p1.signature() == p2.signature(),
            psi1 == psi2 && mu1 == mu2
        );
    }

    /// Every byte-level truncation of a WAL's last record recovers exactly
    /// the longest committed prefix: the torn frame is detected at its
    /// offset (never replayed, never blamed on an earlier record), a cut at
    /// the frame boundary is a clean log, and the untruncated file scans in
    /// full.
    #[test]
    fn torn_wal_tail_recovers_the_longest_committed_prefix(
        payloads in proptest::collection::vec(json_strategy(), 1..5),
    ) {
        use miscela_v::miscela_store::wal::{frame_record, scan};
        let frames: Vec<String> = payloads.iter().map(frame_record).collect();
        let full: String = frames.concat();
        let bytes = full.as_bytes();
        let last_start = full.len() - frames.last().unwrap().len();
        let dir = std::env::temp_dir()
            .join(format!("miscela-props-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        for cut in last_start..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let scanned = scan(&path).unwrap();
            let committed = if cut == bytes.len() {
                payloads.len()
            } else {
                payloads.len() - 1
            };
            prop_assert_eq!(scanned.records.len(), committed, "cut at byte {}", cut);
            for (got, want) in scanned.records.iter().zip(payloads.iter()) {
                prop_assert_eq!(got, want, "cut at byte {}", cut);
            }
            prop_assert_eq!(
                scanned.valid_bytes as usize,
                if cut == bytes.len() { cut } else { last_start },
                "cut at byte {}",
                cut
            );
            match scanned.torn {
                None => prop_assert!(
                    cut == last_start || cut == bytes.len(),
                    "cut at byte {} should have torn the last frame",
                    cut
                ),
                Some(torn) => {
                    prop_assert_eq!(torn.offset as usize, last_start, "cut at byte {}", cut);
                    prop_assert_eq!(torn.bytes as usize, cut - last_start, "cut at byte {}", cut);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Time-series interpolation fills every gap (when at least one value is
    /// present) and never alters present values.
    #[test]
    fn interpolation_properties(
        values in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 1..100),
    ) {
        let series = TimeSeries::from_options(&values);
        let filled = series.interpolate_missing();
        prop_assert_eq!(filled.len(), series.len());
        if series.present_count() > 0 {
            prop_assert_eq!(filled.missing_count(), 0);
        }
        for (i, v) in series.present() {
            prop_assert!((filled.get(i).unwrap() - v).abs() < 1e-12);
        }
    }
}

/// Strategy producing small nested JSON values.
fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1.0e9f64..1.0e9).prop_map(|n| Json::Number((n * 1e3).round() / 1e3)),
        "[a-zA-Z0-9 _.,:\\-]{0,20}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            proptest::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Json::Object),
        ]
    })
}

// ---------------------------------------------------------------------------
// chaos-transport convergence
// ---------------------------------------------------------------------------

/// A small register → append → mine fixture shared by every chaos schedule
/// (generated once: the property varies the chaos, not the data), plus the
/// clean twin's final state to converge to.
struct ChaosFixture {
    location_csv: String,
    attribute_csv: String,
    prefix_csv: String,
    tail_csv: String,
    twin_caps: String,
    twin_snapshot: String,
    twin_revision: u64,
}

fn chaos_fixture() -> &'static ChaosFixture {
    use miscela_v::miscela_csv::DatasetWriter;
    use miscela_v::miscela_datagen::SantanderGenerator;
    static FIXTURE: std::sync::OnceLock<ChaosFixture> = std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let full = SantanderGenerator::small().with_scale(0.01).generate();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 24).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();
        let fx = ChaosFixture {
            location_csv: writer.location_csv(&prefix),
            attribute_csv: writer.attribute_csv(&prefix),
            prefix_csv: writer.data_csv(&prefix),
            tail_csv: writer.data_csv(&tail),
            twin_caps: String::new(),
            twin_snapshot: String::new(),
            twin_revision: 0,
        };
        let (caps, snapshot, revision) =
            chaos_workflow(&fx, None, 0).expect("the clean twin must converge");
        ChaosFixture {
            twin_caps: caps,
            twin_snapshot: snapshot,
            twin_revision: revision,
            ..fx
        }
    })
}

/// Runs register → append → mine through a resilient client — over perfect
/// transport when `config` is `None`, through seeded chaos otherwise —
/// and returns (mined caps JSON, final snapshot encoding, final revision).
/// Also asserts the client's per-request backoff budget held.
fn chaos_workflow(
    fx: &ChaosFixture,
    config: Option<miscela_v::miscela_server::client::ChaosConfig>,
    seed: u64,
) -> Result<(String, String, u64), String> {
    use miscela_v::miscela_server::client::{
        ChaosTransport, ResilientClient, RetryPolicy, RouterTransport,
    };
    use miscela_v::miscela_server::durability::snapshot_data;
    use miscela_v::miscela_server::{MiscelaService, Router};
    use std::sync::Arc;

    let service = Arc::new(MiscelaService::new());
    let router = Arc::new(Router::new(Arc::clone(&service)));
    let inner = RouterTransport::new(router);
    let mine_body = Json::from_pairs([
        ("epsilon", Json::from(0.4)),
        ("eta_km", Json::from(0.5)),
        ("mu", Json::from(3i64)),
        ("psi", Json::from(20usize)),
        ("segmentation", Json::from(false)),
    ]);
    let run = |caps: Result<Json, _>, budget_held: bool| -> Result<(String, String, u64), String> {
        let caps = caps.map_err(|e| format!("mine failed: {e}"))?;
        if !budget_held {
            return Err("per-request backoff exceeded the budget".to_string());
        }
        let ds = service
            .dataset("prop")
            .map_err(|e| format!("dataset lost: {e:?}"))?;
        let revision = service.dataset_revision("prop").unwrap();
        Ok((
            caps.get("caps").unwrap().to_string_compact(),
            snapshot_data(&ds, revision, 0, &[]).to_string(),
            revision,
        ))
    };
    match config {
        None => {
            let mut client = ResilientClient::new(inner, "twin");
            client
                .register(
                    "prop",
                    &fx.location_csv,
                    &fx.attribute_csv,
                    &fx.prefix_csv,
                    500,
                )
                .map_err(|e| format!("twin register failed: {e}"))?;
            client
                .append("prop", &fx.tail_csv, 100)
                .map_err(|e| format!("twin append failed: {e}"))?;
            let caps = client.mine("prop", mine_body);
            run(caps, true)
        }
        Some(config) => {
            let chaos = ChaosTransport::new(inner, config, seed);
            let mut client = ResilientClient::new(chaos, format!("prop-{seed}"));
            client
                .register(
                    "prop",
                    &fx.location_csv,
                    &fx.attribute_csv,
                    &fx.prefix_csv,
                    500,
                )
                .map_err(|e| format!("register failed: {e}"))?;
            client
                .append("prop", &fx.tail_csv, 100)
                .map_err(|e| format!("append failed: {e}"))?;
            let caps = client.mine("prop", mine_body);
            client.transport_mut().drain();
            let budget_held =
                client.stats().max_request_slept_ms <= RetryPolicy::default().budget_ms;
            run(caps, budget_held)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded schedule of request drops, response drops, duplicated
    /// and delayed deliveries converges to the clean twin's exact CapSet,
    /// snapshot bytes and revision — and the client never backs off past
    /// its per-request budget.
    #[test]
    fn chaos_schedules_converge_to_the_clean_twin(
        seed in 0u64..1_000_000,
        drop_request in 0.0f64..0.3,
        drop_response in 0.0f64..0.3,
        duplicate in 0.0f64..0.3,
        delay in 0.0f64..0.2,
    ) {
        use miscela_v::miscela_server::client::ChaosConfig;
        let fx = chaos_fixture();
        let config = ChaosConfig {
            drop_request,
            delay_request: delay,
            duplicate_request: duplicate,
            drop_response,
            max_delayed: 4,
        };
        let (caps, snapshot, revision) = chaos_workflow(fx, Some(config), seed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        prop_assert_eq!(&caps, &fx.twin_caps, "CapSet diverged under chaos");
        prop_assert_eq!(&snapshot, &fx.twin_snapshot, "snapshot bytes diverged under chaos");
        prop_assert_eq!(revision, fx.twin_revision, "revision diverged under chaos");
    }
}
