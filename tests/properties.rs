//! Property-based tests over the core data structures and invariants.

use miscela_v::miscela_core::evolving::extract_evolving;
use miscela_v::miscela_core::{Bitset, MiningParams};
use miscela_v::miscela_csv::data_csv;
use miscela_v::miscela_model::{GeoPoint, TimeSeries, Timestamp};
use miscela_v::miscela_store::Json;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timestamp format/parse round-trips for any representable time.
    #[test]
    fn timestamp_roundtrip(secs in -2_000_000_000i64..4_000_000_000i64) {
        let t = Timestamp::from_epoch_seconds(secs);
        let parsed = Timestamp::parse(&t.format()).unwrap();
        prop_assert_eq!(parsed, t);
    }

    /// Calendar fields stay in range for any timestamp.
    #[test]
    fn calendar_fields_in_range(secs in -2_000_000_000i64..4_000_000_000i64) {
        let t = Timestamp::from_epoch_seconds(secs);
        let (_, m, d) = t.ymd();
        let (h, mi, s) = t.hms();
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert!(h < 24 && mi < 60 && s < 60);
        prop_assert!(t.weekday() < 7);
    }

    /// Haversine distance is symmetric, non-negative and satisfies the
    /// identity of indiscernibles (approximately).
    #[test]
    fn haversine_properties(
        lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
    ) {
        let a = GeoPoint::new_unchecked(lat1, lon1);
        let b = GeoPoint::new_unchecked(lat2, lon2);
        let d1 = a.distance_km(&b);
        let d2 = b.distance_km(&a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(a.distance_km(&a) < 1e-9);
        prop_assert!(d1 <= 20_100.0); // half the Earth's circumference plus slack
    }

    /// Bitset intersection count never exceeds either operand's count and
    /// and/or are consistent.
    #[test]
    fn bitset_invariants(
        idx_a in proptest::collection::vec(0usize..500, 0..80),
        idx_b in proptest::collection::vec(0usize..500, 0..80),
    ) {
        let a = Bitset::from_indices(500, &idx_a);
        let b = Bitset::from_indices(500, &idx_b);
        let and = a.and(&b);
        let or = a.or(&b);
        prop_assert_eq!(and.count(), a.and_count(&b));
        prop_assert!(and.count() <= a.count().min(b.count()));
        prop_assert!(or.count() >= a.count().max(b.count()));
        prop_assert_eq!(and.count() + or.count(), a.count() + b.count());
        // Round trip through indices.
        prop_assert_eq!(Bitset::from_indices(500, &a.indices()), a);
    }

    /// Evolving-event counts are monotone non-increasing in epsilon, and no
    /// timestamp is both up- and down-evolving for positive epsilon.
    #[test]
    fn evolving_monotone_in_epsilon(
        values in proptest::collection::vec(-50.0f64..50.0, 2..200),
        eps1 in 0.01f64..5.0,
        eps2 in 0.01f64..5.0,
    ) {
        let series = TimeSeries::from_values(values);
        let (lo, hi) = if eps1 <= eps2 { (eps1, eps2) } else { (eps2, eps1) };
        let e_lo = extract_evolving(&series, lo);
        let e_hi = extract_evolving(&series, hi);
        prop_assert!(e_hi.total() <= e_lo.total());
        prop_assert_eq!(e_lo.up.and_count(&e_lo.down), 0);
    }

    /// JSON serialization round-trips for arbitrary nested values built from
    /// a small recursive generator.
    #[test]
    fn json_roundtrip(value in json_strategy()) {
        let text = value.to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        prop_assert_eq!(parsed, value.clone());
        let pretty = value.to_string_pretty();
        prop_assert_eq!(Json::parse(&pretty).unwrap(), value);
    }

    /// data.csv rows round-trip through format/parse.
    #[test]
    fn data_csv_roundtrip(
        id in "[A-Za-z0-9_-]{1,12}",
        attr in "[A-Za-z][A-Za-z0-9 .]{0,15}",
        secs in 0i64..4_000_000_000i64,
        value in proptest::option::of(-1.0e6f64..1.0e6),
    ) {
        let row = data_csv::DataRow {
            id: miscela_v::miscela_model::SensorId::new(id),
            attribute: attr.trim().to_string(),
            time: Timestamp::from_epoch_seconds(secs),
            value,
        };
        let line = data_csv::format_row(&row);
        let parsed = data_csv::parse_document(&line).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0].id, &row.id);
        prop_assert_eq!(&parsed[0].attribute, &row.attribute);
        prop_assert_eq!(parsed[0].time, row.time);
        match (parsed[0].value, row.value) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() <= (b.abs() * 1e-6).max(1e-6)),
            (None, None) => {}
            other => prop_assert!(false, "value mismatch: {:?}", other),
        }
    }

    /// Parameter signatures are injective over the fields users actually
    /// change interactively (psi, mu, epsilon, eta).
    #[test]
    fn params_signature_distinguishes(
        psi1 in 1usize..100, psi2 in 1usize..100,
        mu1 in 2usize..6, mu2 in 2usize..6,
    ) {
        let p1 = MiningParams::new().with_psi(psi1).with_mu(mu1);
        let p2 = MiningParams::new().with_psi(psi2).with_mu(mu2);
        prop_assert_eq!(
            p1.signature() == p2.signature(),
            psi1 == psi2 && mu1 == mu2
        );
    }

    /// Every byte-level truncation of a WAL's last record recovers exactly
    /// the longest committed prefix: the torn frame is detected at its
    /// offset (never replayed, never blamed on an earlier record), a cut at
    /// the frame boundary is a clean log, and the untruncated file scans in
    /// full.
    #[test]
    fn torn_wal_tail_recovers_the_longest_committed_prefix(
        payloads in proptest::collection::vec(json_strategy(), 1..5),
    ) {
        use miscela_v::miscela_store::wal::{frame_record, scan};
        let frames: Vec<String> = payloads.iter().map(frame_record).collect();
        let full: String = frames.concat();
        let bytes = full.as_bytes();
        let last_start = full.len() - frames.last().unwrap().len();
        let dir = std::env::temp_dir()
            .join(format!("miscela-props-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        for cut in last_start..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let scanned = scan(&path).unwrap();
            let committed = if cut == bytes.len() {
                payloads.len()
            } else {
                payloads.len() - 1
            };
            prop_assert_eq!(scanned.records.len(), committed, "cut at byte {}", cut);
            for (got, want) in scanned.records.iter().zip(payloads.iter()) {
                prop_assert_eq!(got, want, "cut at byte {}", cut);
            }
            prop_assert_eq!(
                scanned.valid_bytes as usize,
                if cut == bytes.len() { cut } else { last_start },
                "cut at byte {}",
                cut
            );
            match scanned.torn {
                None => prop_assert!(
                    cut == last_start || cut == bytes.len(),
                    "cut at byte {} should have torn the last frame",
                    cut
                ),
                Some(torn) => {
                    prop_assert_eq!(torn.offset as usize, last_start, "cut at byte {}", cut);
                    prop_assert_eq!(torn.bytes as usize, cut - last_start, "cut at byte {}", cut);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Time-series interpolation fills every gap (when at least one value is
    /// present) and never alters present values.
    #[test]
    fn interpolation_properties(
        values in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 1..100),
    ) {
        let series = TimeSeries::from_options(&values);
        let filled = series.interpolate_missing();
        prop_assert_eq!(filled.len(), series.len());
        if series.present_count() > 0 {
            prop_assert_eq!(filled.missing_count(), 0);
        }
        for (i, v) in series.present() {
            prop_assert!((filled.get(i).unwrap() - v).abs() < 1e-12);
        }
    }
}

/// Strategy producing small nested JSON values.
fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1.0e9f64..1.0e9).prop_map(|n| Json::Number((n * 1e3).round() / 1e3)),
        "[a-zA-Z0-9 _.,:\\-]{0,20}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            proptest::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Json::Object),
        ]
    })
}
