//! The overload/chaos matrix: the proof harness for the serving path's
//! overload protection (deadlines, cooperative cancellation, admission
//! control and graceful degradation).
//!
//! Four properties are exercised end to end through the public service
//! API, each with deterministic fault injection — synchronization is by
//! observable state (admission stats, done flags, fail-point toggles),
//! never by sleeping:
//!
//! 1. With the admission budget held by an in-flight mine, a competing
//!    request is shed with a typed retryable [`ApiError::Overloaded`]
//!    carrying the configured back-off hint; cancelling the in-flight mine
//!    returns a typed [`ApiError::DeadlineExceeded`] and leaves the result
//!    cache clean — the re-mine recomputes and matches an undisturbed
//!    twin's CapSet byte for byte.
//! 2. Under a ~4× oversubscribed storm of cold mines, every response is
//!    either a result or a typed retryable error, admitted-request p99
//!    latency stays bounded by the queue-wait cap plus a generous multiple
//!    of the single-mine baseline, and the controller drains back to zero
//!    in-flight cost.
//! 3. A mid-append durability failure (disk "filling" via
//!    [`FailPoint::exhaust`]) flips the dataset into degraded read-only
//!    mode: appends and retention changes answer with typed retryable
//!    [`ApiError::Unavailable`], mines and reads keep serving, healing the
//!    disk re-arms durability, and a crash + recovery in the middle of the
//!    episode loses no acknowledged row — the final dataset mines
//!    byte-identically to an uninterrupted twin.
//! 4. A concurrent storm interleaving mines, an append feed, retention
//!    flips and delete/re-register churn on a second dataset completes
//!    without deadlock, keeps append revisions strictly monotonic, and the
//!    post-storm re-mine equals a cold twin's mine byte for byte.
//!
//! `MISCELA_OVERLOAD_SMOKE=1` shrinks the storms for a bounded CI run.

use miscela_v::miscela_cache::codec::capset_to_json;
use miscela_v::miscela_core::{CancelToken, CapSet, MiningParams};
use miscela_v::miscela_csv::chunk::Chunk;
use miscela_v::miscela_csv::{split_into_chunks, DatasetWriter};
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_model::{Dataset, RetentionPolicy};
use miscela_v::miscela_server::{AdmissionConfig, ApiError, MiscelaService};
use miscela_v::miscela_store::wal::{FailPoint, FailingOpener};
use miscela_v::miscela_store::Database;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const DATASET: &str = "santander";

fn smoke() -> bool {
    std::env::var("MISCELA_OVERLOAD_SMOKE").is_ok_and(|v| v == "1")
}

fn generate(scale: f64) -> Dataset {
    SantanderGenerator::small().with_scale(scale).generate()
}

fn base_params() -> MiningParams {
    MiningParams::new()
        .with_epsilon(0.4)
        .with_eta_km(0.5)
        .with_psi(20)
        .with_mu(3)
        .with_segmentation(false)
}

/// The `v`-th parameter variant: a distinct result-cache key with
/// near-identical mining cost.
fn variant(v: usize) -> MiningParams {
    base_params().with_epsilon(0.4 + 0.0005 * v as f64)
}

fn upload(svc: &MiscelaService, name: &str, ds: &Dataset) {
    let writer = DatasetWriter::new();
    svc.upload_documents(
        name,
        &writer.data_csv(ds),
        &writer.location_csv(ds),
        &writer.attribute_csv(ds),
        10_000,
    )
    .expect("fixture upload");
}

fn matrix_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("miscela-overload-matrix-{}", std::process::id()))
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn percentile(samples: &mut [u128], pct: usize) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[(samples.len() - 1) * pct / 100]
}

/// Property 1: shedding is typed while the budget is held, and a cancelled
/// mine leaves the cache in a state where the retry recomputes an answer
/// byte-identical to an undisturbed twin's.
#[test]
fn held_budget_sheds_typed_and_cancelled_mine_re_mines_identically() {
    // A dataset big enough that a cold mine stays observably in flight.
    let ds = generate(0.2);
    let retry_after_ms = 75;
    let svc = MiscelaService::new().with_admission(AdmissionConfig {
        max_cost_units: 64,
        max_per_dataset: 1,
        max_queue_depth: 0,
        max_queue_wait: Duration::from_millis(250),
        retry_after_ms,
    });
    upload(&svc, DATASET, &ds);
    let twin = MiscelaService::new();
    upload(&twin, DATASET, &ds);

    // Catch a cold mine in flight (observed through admission stats), shed
    // a competitor against it, then cancel it. If the mine finishes before
    // we observe it — or between observation and the competing request —
    // the attempt is inconclusive and the next variant retries.
    let mut caught = None;
    for v in 0..40 {
        let params = variant(v);
        let token = CancelToken::new();
        let done = AtomicBool::new(false);
        let (observed, shed, mined) = std::thread::scope(|scope| {
            let miner = scope.spawn(|| {
                let r = svc.mine_cancellable(DATASET, &params, None, &token);
                done.store(true, Ordering::SeqCst);
                r
            });
            let mut observed = false;
            while !done.load(Ordering::SeqCst) {
                if svc.admission_stats().in_flight > 0 {
                    observed = true;
                    break;
                }
                std::thread::yield_now();
            }
            let shed = observed.then(|| svc.mine(DATASET, &variant(1000 + v)));
            token.cancel();
            (observed, shed, miner.join().expect("miner thread panicked"))
        });
        if let (true, Some(Err(shed_err)), Err(mine_err)) = (observed, shed, mined) {
            caught = Some((v, shed_err, mine_err));
            break;
        }
    }
    let (v, shed_err, mine_err) = caught.expect("40 attempts never caught a cold mine in flight");

    assert!(
        matches!(shed_err, ApiError::Overloaded { .. }),
        "competitor was not shed as Overloaded: {shed_err:?}"
    );
    assert!(shed_err.is_retryable());
    // The hint is load-adaptive: at least the configured base, scaled up by
    // the held budget and any queued waiters, never past the 20× ceiling.
    let hint = shed_err.retry_after_ms().expect("shed carries a hint");
    assert!(
        (retry_after_ms..=retry_after_ms * 20).contains(&hint),
        "adaptive hint {hint}ms outside [{retry_after_ms}, {}]",
        retry_after_ms * 20
    );
    assert!(
        matches!(mine_err, ApiError::DeadlineExceeded(_)),
        "cancelled mine was not typed: {mine_err:?}"
    );
    assert!(mine_err.is_retryable());

    let stats = svc.admission_stats();
    assert!(stats.shed >= 1, "shed not accounted: {stats:?}");
    assert_eq!(stats.in_flight, 0, "permits leaked: {stats:?}");
    assert_eq!(stats.queued, 0, "waiters leaked: {stats:?}");

    // The cancelled mine must not have cached a partial result: the retry
    // recomputes (no cache hit) and matches the undisturbed twin exactly.
    let retry = svc.mine(DATASET, &variant(v)).expect("retry after cancel");
    assert!(!retry.cache_hit, "cancelled mine left a cache entry");
    let expected = twin.mine(DATASET, &variant(v)).expect("twin mine");
    assert_eq!(
        capset_to_json(&retry.result.caps).to_string(),
        capset_to_json(&expected.result.caps).to_string(),
        "re-mine after cancellation diverged from the undisturbed twin"
    );
    let again = svc.mine(DATASET, &variant(v)).expect("second retry");
    assert!(again.cache_hit, "completed retry did not cache");
}

/// Property 1b, fully race-free: an already-expired deadline cancels a mine
/// at its first boundary check, deterministically, and the retry still
/// matches a cold twin byte for byte.
#[test]
fn expired_deadline_cancels_deterministically_and_retry_matches_twin() {
    let ds = generate(0.02);
    let svc = MiscelaService::new();
    upload(&svc, DATASET, &ds);
    let twin = MiscelaService::new();
    upload(&twin, DATASET, &ds);

    let err = svc
        .mine_with_deadline(DATASET, &base_params(), Some(Instant::now()))
        .expect_err("expired deadline must not mine");
    assert!(matches!(err, ApiError::DeadlineExceeded(_)), "{err:?}");
    assert!(err.is_retryable());

    let retry = svc.mine(DATASET, &base_params()).expect("retry");
    assert!(!retry.cache_hit);
    let expected = twin.mine(DATASET, &base_params()).expect("twin");
    assert_eq!(
        capset_to_json(&retry.result.caps).to_string(),
        capset_to_json(&expected.result.caps).to_string(),
    );
}

/// Property 2: a ~4× oversubscribed storm of cold mines yields only typed
/// outcomes, bounded admitted latency, and a fully drained controller.
#[test]
fn oversubscribed_storm_bounds_admitted_latency() {
    let ds = generate(0.05);
    let queue_wait = Duration::from_millis(250);
    let svc = MiscelaService::new().with_admission(AdmissionConfig {
        max_cost_units: 2,
        max_per_dataset: 2,
        max_queue_depth: 4,
        max_queue_wait: queue_wait,
        retry_after_ms: 50,
    });
    upload(&svc, DATASET, &ds);

    // Single-mine baseline on an idle service (variant no storm client uses).
    let baseline = svc
        .mine(DATASET, &variant(5000))
        .expect("baseline mine")
        .elapsed;

    let clients = if smoke() { 4 } else { 8 };
    let per_client = if smoke() { 3 } else { 6 };
    let latencies = Mutex::new(Vec::new());
    let refused = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..clients {
            let latencies = &latencies;
            let refused = &refused;
            let svc = &svc;
            scope.spawn(move || {
                for j in 0..per_client {
                    // Every request a distinct cold variant: no cache hits,
                    // every request faces admission.
                    match svc.mine(DATASET, &variant(c * per_client + j)) {
                        Ok(out) => latencies.lock().unwrap().push(out.elapsed.as_nanos()),
                        Err(e) => {
                            assert!(e.is_retryable(), "untyped storm failure: {e:?}");
                            refused.lock().unwrap().push(e);
                        }
                    }
                }
            });
        }
    });
    let mut latencies = latencies.into_inner().unwrap();
    let refused = refused.into_inner().unwrap();
    assert_eq!(
        latencies.len() + refused.len(),
        clients * per_client,
        "storm lost requests"
    );
    assert!(!latencies.is_empty(), "storm admitted nothing");

    // Admitted requests wait at most `queue_wait` and then mine alongside
    // at most one other cold mine; 50× the idle baseline (floored at 1 ms)
    // is a deliberately generous contention allowance — the property is
    // boundedness, not a precise latency target.
    let p99 = percentile(&mut latencies, 99);
    let bound = queue_wait + 50 * baseline.max(Duration::from_millis(1));
    assert!(
        p99 <= bound.as_nanos(),
        "admitted p99 {p99}ns exceeds bound {}ns (baseline {baseline:?})",
        bound.as_nanos()
    );

    let stats = svc.admission_stats();
    assert_eq!(stats.in_flight, 0, "permits leaked: {stats:?}");
    assert_eq!(stats.in_flight_cost, 0, "cost leaked: {stats:?}");
    assert_eq!(stats.queued, 0, "waiters leaked: {stats:?}");
    assert_eq!(
        stats.shed + stats.deadline_expired,
        refused.len() as u64,
        "refusal accounting diverged: {stats:?}"
    );
}

/// Property 3: a degraded durability episode mid-append — including a crash
/// and recovery inside the episode — serves reads throughout, answers
/// writes with typed retryable errors, re-arms on heal, and loses no
/// acknowledged row.
#[test]
fn degraded_episode_keeps_acked_rows_across_crash() {
    let full = generate(0.02);
    let n = full.timestamp_count();
    let tail_len = 24;
    let split_t = full.grid().at(n - tail_len).unwrap();
    let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
    let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
    let writer = DatasetWriter::new();
    let chunks: Vec<Chunk> = split_into_chunks(&writer.data_csv(&tail), 120);
    assert!(chunks.len() >= 3, "tail must span several chunks");

    // The uninterrupted twin: same upload + append on a plain service.
    let twin = MiscelaService::new();
    upload(&twin, DATASET, &prefix);
    twin.begin_append(DATASET).unwrap();
    for chunk in &chunks {
        twin.append_chunk(DATASET, chunk).unwrap();
    }
    twin.finish_append(DATASET).unwrap();
    let expected = twin.mine(DATASET, &base_params()).unwrap().result.caps;

    let dir = matrix_dir("degraded");
    let fail = FailPoint::unlimited();
    let opener = Arc::new(FailingOpener::new(fail.clone()));
    let mut svc =
        MiscelaService::with_durability_opener(Arc::new(Database::new()), &dir, opener).unwrap();
    upload(&svc, DATASET, &prefix);
    svc.begin_append(DATASET).unwrap();

    let crash_at = chunks.len() - 1;
    for (i, chunk) in chunks.iter().enumerate() {
        if i == 1 {
            // The disk "fills": the next durable write fails and the
            // dataset degrades to read-only.
            fail.exhaust();
            let err = svc.append_chunk(DATASET, chunk).unwrap_err();
            assert!(matches!(err, ApiError::Unavailable { .. }), "{err:?}");
            assert!(err.is_retryable());
            assert!(err.retry_after_ms().is_some());
            let reason = svc.degraded_reason(DATASET);
            assert!(reason.is_some(), "failed write did not degrade");

            // Degraded mode is read-only, not down: mines and stats serve.
            svc.mine(DATASET, &base_params()).expect("degraded mine");
            svc.dataset(DATASET).expect("degraded read");
            // Every durable write path answers typed while degraded.
            let err = svc
                .set_retention(DATASET, RetentionPolicy::keep_last(100_000))
                .unwrap_err();
            assert!(matches!(err, ApiError::Unavailable { .. }), "{err:?}");

            // The disk recovers; the probe re-arms durability and the
            // retried chunk lands.
            fail.heal();
            svc.append_chunk(DATASET, chunk).expect("retry after heal");
            assert_eq!(svc.degraded_reason(DATASET), None, "heal did not re-arm");
        } else {
            svc.append_chunk(DATASET, chunk).expect("append chunk");
        }
        if i == crash_at - 1 {
            // Crash in the middle of the session, after the degraded
            // episode: recovery must replay every acknowledged chunk.
            drop(svc);
            svc = MiscelaService::with_database_and_durability(Arc::new(Database::new()), &dir)
                .unwrap();
            assert_eq!(svc.degraded_reason(DATASET), None);
        }
    }
    let (summary, _) = svc.finish_append(DATASET).expect("finish after episode");
    assert_eq!(summary.revision, 2);

    // One more restart: everything acknowledged must survive recovery and
    // mine identically to the uninterrupted twin.
    drop(svc);
    let svc =
        MiscelaService::with_database_and_durability(Arc::new(Database::new()), &dir).unwrap();
    let recovered = svc.dataset(DATASET).unwrap();
    assert_eq!(
        recovered.timestamp_count(),
        n,
        "degraded episode lost acknowledged rows"
    );
    let caps: CapSet = svc.mine(DATASET, &base_params()).unwrap().result.caps;
    assert_eq!(
        capset_to_json(&caps).to_string(),
        capset_to_json(&expected).to_string(),
        "recovered dataset mined differently from the uninterrupted twin"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Property 4 (the concurrency stress satellite): mines, an append feed,
/// retention flips and delete/re-register churn interleaved across threads
/// — no deadlock, strictly monotonic append revisions, and a post-storm
/// re-mine byte-identical to a cold twin fed the same batches.
#[test]
fn concurrent_storm_stays_consistent() {
    let full = generate(0.02);
    let n = full.timestamp_count();
    let batch_count = 4;
    let tail_len = 8 * batch_count;
    let writer = DatasetWriter::new();
    let grid = full.grid();
    let prefix = full
        .slice_time(grid.start(), grid.at(n - tail_len).unwrap())
        .unwrap();
    let batches: Vec<String> = (0..batch_count)
        .map(|b| {
            let lo = n - tail_len + 8 * b;
            let hi_t = if lo + 8 == n {
                grid.range().end
            } else {
                grid.at(lo + 8).unwrap()
            };
            writer.data_csv(&full.slice_time(grid.at(lo).unwrap(), hi_t).unwrap())
        })
        .collect();

    let svc = MiscelaService::new();
    upload(&svc, DATASET, &prefix);
    let scratch = generate(0.01);

    let mine_rounds = if smoke() { 8 } else { 24 };
    let churn_rounds = if smoke() { 3 } else { 8 };
    let finish_revisions = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let svc = &svc;
        // Two mining clients with disjoint variant ranges.
        for t in 0..2usize {
            scope.spawn(move || {
                for j in 0..mine_rounds {
                    match svc.mine(DATASET, &variant(t * mine_rounds + j)) {
                        Ok(out) => assert!(out.revision >= 1),
                        Err(e) => assert!(e.is_retryable(), "untyped mine failure: {e:?}"),
                    }
                }
            });
        }
        // The append feed: batches in order. A finish shed by admission
        // leaves the session open (the retried begin sees Conflict and the
        // chunks replay idempotently); a finish that lost a revision race
        // consumed the session without applying it, so the whole round
        // restarts cleanly.
        let finish_revisions = &finish_revisions;
        let batches = &batches;
        scope.spawn(move || {
            for batch in batches {
                let chunks = split_into_chunks(batch, 100);
                let revision = loop {
                    match svc.begin_append(DATASET) {
                        Ok(()) | Err(ApiError::Conflict(_)) => {}
                        Err(e) if e.is_retryable() => {
                            std::thread::yield_now();
                            continue;
                        }
                        Err(e) => panic!("append begin failed: {e:?}"),
                    }
                    for chunk in &chunks {
                        svc.append_chunk(DATASET, chunk).expect("append chunk");
                    }
                    match svc.finish_append(DATASET) {
                        Ok((summary, _)) => break summary.revision,
                        Err(ApiError::BadRequest(msg)) if msg.contains("retry the append") => {
                            std::thread::yield_now();
                        }
                        Err(e) if e.is_retryable() => std::thread::yield_now(),
                        Err(e) => panic!("append finish failed: {e:?}"),
                    }
                };
                finish_revisions.lock().unwrap().push(revision);
            }
        });
        // Retention flips that never trim (the window exceeds any content
        // the storm produces), ending on unbounded so the twin matches.
        // A flip racing an append finish loses the revision re-check with
        // a "retry" response; the flip simply retries.
        scope.spawn(move || {
            let flip = |policy: fn() -> RetentionPolicy| loop {
                match svc.set_retention(DATASET, policy()) {
                    Ok(_) => break,
                    Err(ApiError::BadRequest(msg)) if msg.contains("retry") => {
                        std::thread::yield_now();
                    }
                    Err(e) if e.is_retryable() => std::thread::yield_now(),
                    Err(e) => panic!("retention flip failed: {e:?}"),
                }
            };
            for _ in 0..churn_rounds {
                flip(|| RetentionPolicy::keep_last(1_000_000));
                flip(RetentionPolicy::unbounded);
            }
        });
        // Delete/re-register churn on a second dataset.
        let scratch = &scratch;
        scope.spawn(move || {
            for _ in 0..churn_rounds {
                upload(svc, "scratch", scratch);
                match svc.mine("scratch", &base_params()) {
                    Ok(_) => {}
                    Err(e) => assert!(e.is_retryable(), "scratch mine failed: {e:?}"),
                }
                svc.delete_dataset("scratch").expect("scratch delete");
            }
        });
    });

    let finish_revisions = finish_revisions.into_inner().unwrap();
    assert_eq!(finish_revisions.len(), batch_count);
    assert!(
        finish_revisions.windows(2).all(|w| w[0] < w[1]),
        "append revisions were not strictly monotonic: {finish_revisions:?}"
    );
    assert_eq!(svc.dataset(DATASET).unwrap().timestamp_count(), n);

    // Post-storm re-mine equals a cold twin fed the same batches in order.
    let twin = MiscelaService::new();
    upload(&twin, DATASET, &prefix);
    for batch in &batches {
        twin.append_documents(DATASET, batch, 100).unwrap();
    }
    let post = svc.mine(DATASET, &variant(9999)).unwrap().result.caps;
    let cold = twin.mine(DATASET, &variant(9999)).unwrap().result.caps;
    assert_eq!(
        capset_to_json(&post).to_string(),
        capset_to_json(&cold).to_string(),
        "post-storm re-mine diverged from the cold twin"
    );
    let base = std::env::temp_dir().join(format!("miscela-overload-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
}
