//! The COVID-19 demonstration scenario (Section 4, Figure 4): compare
//! pollutant levels and correlation patterns before and after the spread of
//! COVID-19.
//!
//! Run with: `cargo run --example covid_analysis`

use miscela_v::analysis::before_after;
use miscela_v::miscela_core::MiningParams;
use miscela_v::miscela_datagen::CovidGenerator;

fn main() {
    let generator = CovidGenerator::small();
    let dataset = generator.generate();
    println!("{}", dataset.stats());

    let params = MiningParams::new()
        .with_epsilon(0.8)
        .with_eta_km(2.0)
        .with_mu(3)
        .with_psi(30)
        .with_segmentation(false);

    let result = before_after(&dataset, generator.lockdown(), &params)
        .expect("before/after analysis succeeds");

    println!("\nmean pollutant levels (before -> after the lockdown):");
    for (attr, before) in &result.before_means {
        let after = result.after_means.get(attr).copied().unwrap_or(f64::NAN);
        let change = (after - before) / before * 100.0;
        println!("  {attr:6} {before:8.2} -> {after:8.2}   ({change:+.1}%)");
    }

    println!(
        "\ncorrelation patterns BEFORE ({}):",
        result.before.summary()
    );
    for ((a, b), n) in &result.before_pairs {
        println!("  {a:6} <-> {b:6}  in {n} CAPs");
    }
    println!("\ncorrelation patterns AFTER ({}):", result.after.summary());
    for ((a, b), n) in &result.after_pairs {
        println!("  {a:6} <-> {b:6}  in {n} CAPs");
    }

    let (disappeared, emerged) = result.pattern_changes();
    println!("\npattern changes caused by the activity change:");
    for (a, b) in &disappeared {
        println!("  disappeared: {a} <-> {b}");
    }
    for (a, b) in &emerged {
        println!("  emerged:     {a} <-> {b}");
    }
    if disappeared.is_empty() && emerged.is_empty() {
        println!(
            "  (same pair inventory, but CAP counts changed: {} before vs {} after)",
            result.before.len(),
            result.after.len()
        );
    }
}
