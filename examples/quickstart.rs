//! Quickstart: generate a small city-scale dataset, mine CAPs, and inspect
//! the result — the minimal end-to-end use of the public API.
//!
//! Run with: `cargo run --example quickstart`

use miscela_v::miscela_core::MiningParams;
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_viz::ascii::sparkline;
use miscela_v::MiscelaV;

fn main() {
    // 1. Build the system and register a dataset (here: the synthetic
    //    Santander stand-in at a small scale; `upload` would take the three
    //    CSV files instead).
    let system = MiscelaV::new();
    let dataset = SantanderGenerator::small().with_scale(0.03).generate();
    let summary = system.register_dataset(dataset);
    println!(
        "registered dataset {:?}: {} sensors, {} records, attributes: {}",
        summary.name,
        summary.sensors,
        summary.records,
        summary.attributes.join(", ")
    );

    // 2. Choose mining parameters (Section 2.1 of the paper): evolving rate,
    //    distance threshold, attribute bound and minimum support.
    let params = MiningParams::new()
        .with_epsilon(0.4)
        .with_eta_km(0.5)
        .with_mu(3)
        .with_psi(20)
        .with_segmentation(false);

    // 3. Mine. The first request computes; repeating the same parameters is
    //    answered from the cache.
    let outcome = system.mine("santander", &params).expect("mining succeeds");
    println!(
        "mined {} (cache hit: {}, {:.1} ms)",
        outcome.result.caps.summary(),
        outcome.cache_hit,
        outcome.elapsed.as_secs_f64() * 1000.0
    );

    // 4. Look at the strongest CAP: which sensors, which attributes, and how
    //    their measurements move together.
    let ds = system.service().dataset("santander").unwrap();
    if let Some(cap) = outcome.result.caps.caps().first() {
        println!("\nstrongest CAP: {cap}");
        for &sensor in &cap.sensors() {
            let ss = ds.sensor_series(sensor);
            let attr = ds.attributes().name_of(ss.sensor.attribute);
            println!(
                "  {:>10} {:12} {}",
                ss.sensor.id.to_string(),
                attr,
                sparkline(&ss.series.window(0, 24 * 7), 72)
            );
        }
        // The partners that would be highlighted when clicking the first
        // member on the map.
        let clicked = cap.sensors()[0];
        let partners = system
            .correlated_sensors("santander", &outcome.result.caps, clicked)
            .unwrap();
        println!(
            "\nclicking sensor {} highlights {} correlated sensors",
            ds.sensor(clicked).id,
            partners.len()
        );
    }

    // 5. Re-run with the same parameters: served from the cache.
    let again = system.mine("santander", &params).unwrap();
    println!(
        "\nrepeat request: cache hit = {}, {:.3} ms",
        again.cache_hit,
        again.elapsed.as_secs_f64() * 1000.0
    );
}
