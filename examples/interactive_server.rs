//! Drive the system through its API layer exactly as the web front end
//! would: chunked upload of the three CSV files, parameter input, CAP
//! results as JSON, and cache-accelerated re-querying (Figure 2's loop).
//!
//! Run with: `cargo run --example interactive_server`

use miscela_v::miscela_csv::{split_into_chunks, DatasetWriter};
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_server::{ApiRequest, Router};
use miscela_v::miscela_store::Json;
use miscela_v::MiscelaV;

fn main() {
    let system = MiscelaV::new();
    let router: &Router = system.router();

    // Export a generated dataset to the paper's three-file upload format.
    let generated = SantanderGenerator::small().with_scale(0.02).generate();
    let writer = DatasetWriter::new();
    let data_csv = writer.data_csv(&generated);
    let location_csv = writer.location_csv(&generated);
    let attribute_csv = writer.attribute_csv(&generated);
    println!(
        "upload payload: data.csv {} lines, location.csv {} lines",
        data_csv.lines().count(),
        location_csv.lines().count()
    );

    // 1. Begin the upload (location.csv + attribute.csv up front).
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/upload/begin",
        Json::from_pairs([
            ("location_csv", Json::from(location_csv)),
            ("attribute_csv", Json::from(attribute_csv)),
        ]),
    ));
    println!("POST upload/begin -> {}", resp.status);

    // 2. Stream data.csv in chunks (the paper uses 10,000-line chunks; the
    //    small example uses 2,000 so several chunks are visible).
    let chunks = split_into_chunks(&data_csv, 2_000);
    for chunk in &chunks {
        let resp = router.handle(&ApiRequest::post(
            "/datasets/santander-upload/upload/chunk",
            Json::from_pairs([
                ("index", Json::from(chunk.index)),
                ("total", Json::from(chunk.total)),
                ("content", Json::from(chunk.content.clone())),
            ]),
        ));
        println!(
            "POST upload/chunk {}/{} -> {} (missing: {})",
            chunk.index + 1,
            chunk.total,
            resp.status,
            resp.body
                .get("missing_chunks")
                .and_then(|v| v.as_i64())
                .unwrap_or(-1)
        );
    }

    // 3. Finish the upload: the dataset is assembled and registered.
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/upload/finish",
        Json::object(),
    ));
    println!("POST upload/finish -> {}: {}", resp.status, resp.body);

    // 4. Parameter input + mining, twice with the same parameters and once
    //    with different ones, to show the caching behaviour of Section 3.3.
    let mine_body = Json::from_pairs([
        ("epsilon", Json::from(0.4)),
        ("eta_km", Json::from(0.5)),
        ("mu", Json::from(3i64)),
        ("psi", Json::from(20i64)),
        ("segmentation", Json::from(false)),
    ]);
    for (label, body) in [
        ("first request", mine_body.clone()),
        ("same parameters again", mine_body.clone()),
        ("different psi", {
            let mut b = mine_body.clone();
            b.set("psi", Json::from(40i64));
            b
        }),
    ] {
        let resp = router.handle(&ApiRequest::post("/datasets/santander-upload/mine", body));
        println!(
            "POST mine ({label}) -> {}: {} CAPs, cache_hit={}, {:.1} ms",
            resp.status,
            resp.body
                .get("cap_count")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            resp.body
                .get("cache_hit")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            resp.body
                .get("elapsed_seconds")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                * 1000.0
        );
    }

    // 5. Inspect the cache statistics endpoint.
    let resp = router.handle(&ApiRequest::get("/cache/stats"));
    println!("GET cache/stats -> {}", resp.body);

    // 6. List registered datasets.
    let resp = router.handle(&ApiRequest::get("/datasets"));
    println!("GET datasets -> {}", resp.body);
}
