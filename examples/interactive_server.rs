//! Drive the system through its API layer exactly as the web front end
//! would: chunked upload of the three CSV files, parameter input, CAP
//! results as JSON, cache-accelerated re-querying (Figure 2's loop) — and
//! the live-feed loop on top: append a chunk of new readings and re-mine
//! incrementally, with the cache hit/reuse counters printed so the
//! incremental win is visible from the output alone.
//!
//! Run with: `cargo run --example interactive_server`

use miscela_v::miscela_csv::{split_into_chunks, DatasetWriter};
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_server::{ApiRequest, Router};
use miscela_v::miscela_store::Json;
use miscela_v::MiscelaV;

fn main() {
    let system = MiscelaV::new();
    let router: &Router = system.router();

    // Export a generated dataset to the paper's three-file upload format,
    // holding back the final day of readings to play the live feed later.
    let generated = SantanderGenerator::small().with_scale(0.02).generate();
    let n = generated.timestamp_count();
    let split_t = generated.grid().at(n - 24).unwrap();
    let history = generated
        .slice_time(generated.grid().start(), split_t)
        .unwrap();
    let live_tail = generated
        .slice_time(split_t, generated.grid().range().end)
        .unwrap();
    let writer = DatasetWriter::new();
    let data_csv = writer.data_csv(&history);
    let location_csv = writer.location_csv(&history);
    let attribute_csv = writer.attribute_csv(&history);
    println!(
        "upload payload: data.csv {} lines, location.csv {} lines ({} timestamps held back as the live feed)",
        data_csv.lines().count(),
        location_csv.lines().count(),
        live_tail.timestamp_count(),
    );

    // 1. Begin the upload (location.csv + attribute.csv up front).
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/upload/begin",
        Json::from_pairs([
            ("location_csv", Json::from(location_csv)),
            ("attribute_csv", Json::from(attribute_csv)),
        ]),
    ));
    println!("POST upload/begin -> {}", resp.status);

    // 2. Stream data.csv in chunks (the paper uses 10,000-line chunks; the
    //    small example uses 2,000 so several chunks are visible).
    let chunks = split_into_chunks(&data_csv, 2_000);
    for chunk in &chunks {
        let resp = router.handle(&ApiRequest::post(
            "/datasets/santander-upload/upload/chunk",
            Json::from_pairs([
                ("index", Json::from(chunk.index)),
                ("total", Json::from(chunk.total)),
                ("content", Json::from(chunk.content.clone())),
            ]),
        ));
        println!(
            "POST upload/chunk {}/{} -> {} (missing: {})",
            chunk.index + 1,
            chunk.total,
            resp.status,
            resp.body
                .get("missing_chunks")
                .and_then(|v| v.as_i64())
                .unwrap_or(-1)
        );
    }

    // 3. Finish the upload: the dataset is assembled and registered.
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/upload/finish",
        Json::object(),
    ));
    println!("POST upload/finish -> {}: {}", resp.status, resp.body);

    // 4. Parameter input + mining, twice with the same parameters and once
    //    with different ones, to show the caching behaviour of Section 3.3.
    let mine_body = Json::from_pairs([
        ("epsilon", Json::from(0.4)),
        ("eta_km", Json::from(0.5)),
        ("mu", Json::from(3i64)),
        ("psi", Json::from(20i64)),
        ("segmentation", Json::from(false)),
    ]);
    let print_mine = |label: &str, resp: &miscela_v::miscela_server::ApiResponse| {
        println!(
            "POST mine ({label}) -> {}: {} CAPs, revision={}, cache_hit={}, \
             extraction hits={} prefix_resumes={}, {:.1} ms",
            resp.status,
            resp.body
                .get("cap_count")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            resp.body
                .get("revision")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            resp.body
                .get("cache_hit")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            resp.body
                .get("extraction_cache_hits")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            resp.body
                .get("extraction_prefix_hits")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            resp.body
                .get("elapsed_seconds")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                * 1000.0
        );
    };
    for (label, body) in [
        ("first request", mine_body.clone()),
        ("same parameters again", mine_body.clone()),
        ("different psi", {
            let mut b = mine_body.clone();
            b.set("psi", Json::from(40i64));
            b
        }),
    ] {
        let resp = router.handle(&ApiRequest::post("/datasets/santander-upload/mine", body));
        print_mine(label, &resp);
    }

    // 5. The live loop: a day of new readings arrives. Stream it through
    //    the append-chunk protocol — no re-upload, no rebuild.
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/append/begin",
        Json::object(),
    ));
    println!("POST append/begin -> {}", resp.status);
    for chunk in split_into_chunks(&writer.data_csv(&live_tail), 2_000) {
        let resp = router.handle(&ApiRequest::post(
            "/datasets/santander-upload/append/chunk",
            Json::from_pairs([
                ("index", Json::from(chunk.index)),
                ("total", Json::from(chunk.total)),
                ("content", Json::from(chunk.content.clone())),
            ]),
        ));
        println!(
            "POST append/chunk {}/{} -> {}",
            chunk.index + 1,
            chunk.total,
            resp.status
        );
    }
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/append/finish",
        Json::object(),
    ));
    println!("POST append/finish -> {}: {}", resp.status, resp.body);

    // 6. Re-mine: the revision moved, so this is a true re-mine — but the
    //    extraction cache resumes every unchanged series from its prefix
    //    state, so only the appended tail is re-extracted.
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/mine",
        mine_body.clone(),
    ));
    print_mine("after append (incremental)", &resp);
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/mine",
        mine_body.clone(),
    ));
    print_mine("after append, repeated", &resp);

    // 7. Bound the live feed: install a sliding-window retention policy.
    //    The tight window trims expired whole storage blocks immediately,
    //    bumps the revision (trimmed content must never be served from
    //    cache), and keeps re-applying on every future append.
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/retention",
        Json::from_pairs([("max_timestamps", Json::from(48i64))]),
    ));
    println!(
        "POST retention (keep last 48) -> {}: {}",
        resp.status, resp.body
    );
    let resp = router.handle(&ApiRequest::get("/datasets/santander-upload/retention"));
    println!("GET retention -> {}", resp.body);
    let resp = router.handle(&ApiRequest::post(
        "/datasets/santander-upload/mine",
        mine_body,
    ));
    print_mine("after trim (bounded window)", &resp);

    // 8. Inspect the cache statistics endpoint (extraction tier with its
    //    prefix-resume counters, plus the revision-GC eviction counts).
    let resp = router.handle(&ApiRequest::get("/cache/stats"));
    println!("GET cache/stats -> {}", resp.body);

    // 9. List registered datasets.
    let resp = router.handle(&ApiRequest::get("/datasets"));
    println!("GET datasets -> {}", resp.body);
}
