//! Drive the system through its API layer exactly as the web front end
//! would — but over a deliberately faulty transport, through the resilient
//! client: chunked upload of the three CSV files, parameter input, CAP
//! results as JSON, cache-accelerated re-querying (Figure 2's loop), the
//! live-feed append + incremental re-mine, and a sliding-window retention
//! policy. The transport drops, duplicates, delays and reorders messages
//! the whole time; idempotency keys and sequence-numbered chunks keep every
//! mutation exactly-once, and the closing stats show how much chaos the
//! client absorbed.
//!
//! Run with: `cargo run --example interactive_server`

use miscela_v::miscela_csv::DatasetWriter;
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::miscela_server::client::{
    ChaosConfig, ChaosTransport, ClientError, ResilientClient, RouterTransport,
};
use miscela_v::miscela_server::{ApiRequest, MiscelaService, Router};
use miscela_v::miscela_store::Json;
use std::sync::Arc;

const DATASET: &str = "santander-upload";

fn main() -> Result<(), ClientError> {
    let router = Arc::new(Router::new(Arc::new(MiscelaService::new())));

    // A storm of transport faults: 15% request loss, 15% response loss,
    // 7.5% duplication and delay each. Every operation below still applies
    // exactly once.
    let chaos = ChaosConfig::storm(0.15);
    let transport = ChaosTransport::new(RouterTransport::new(router), chaos, 101);
    let mut client = ResilientClient::new(transport, "interactive");

    // Export a generated dataset to the paper's three-file upload format,
    // holding back the final day of readings to play the live feed later.
    let generated = SantanderGenerator::small().with_scale(0.02).generate();
    let n = generated.timestamp_count();
    let split_t = generated.grid().at(n - 24).unwrap();
    let history = generated
        .slice_time(generated.grid().start(), split_t)
        .unwrap();
    let live_tail = generated
        .slice_time(split_t, generated.grid().range().end)
        .unwrap();
    let writer = DatasetWriter::new();
    let data_csv = writer.data_csv(&history);
    let location_csv = writer.location_csv(&history);
    let attribute_csv = writer.attribute_csv(&history);
    println!(
        "upload payload: data.csv {} lines, location.csv {} lines ({} timestamps held back as the live feed)",
        data_csv.lines().count(),
        location_csv.lines().count(),
        live_tail.timestamp_count(),
    );

    // 1. Register the dataset: the client drives keyed upload/begin, the
    //    chunk stream (2,000-line chunks so several are visible; the paper
    //    uses 10,000) and keyed upload/finish, retrying every lost message.
    let registered = client.register(DATASET, &location_csv, &attribute_csv, &data_csv, 2_000)?;
    println!("register -> {registered}");

    // 2. Parameter input + mining, twice with the same parameters and once
    //    with different ones, to show the caching behaviour of Section 3.3.
    let mine_body = Json::from_pairs([
        ("epsilon", Json::from(0.4)),
        ("eta_km", Json::from(0.5)),
        ("mu", Json::from(3i64)),
        ("psi", Json::from(20i64)),
        ("segmentation", Json::from(false)),
    ]);
    let print_mine = |label: &str, body: &Json| {
        println!(
            "mine ({label}) -> {} CAPs, revision={}, cache_hit={}, \
             extraction hits={} prefix_resumes={}, {:.1} ms",
            body.get("cap_count").and_then(|v| v.as_i64()).unwrap_or(0),
            body.get("revision").and_then(|v| v.as_i64()).unwrap_or(0),
            body.get("cache_hit")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            body.get("extraction_cache_hits")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            body.get("extraction_prefix_hits")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            body.get("elapsed_seconds")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                * 1000.0
        );
    };
    for (label, body) in [
        ("first request", mine_body.clone()),
        ("same parameters again", mine_body.clone()),
        ("different psi", {
            let mut b = mine_body.clone();
            b.set("psi", Json::from(40i64));
            b
        }),
    ] {
        let mined = client.mine(DATASET, body)?;
        print_mine(label, &mined);
    }

    // 3. The live loop: a day of new readings arrives. The client streams
    //    it through the exactly-once append protocol — keyed begin,
    //    sequence-numbered chunks, 412 watermark resume, keyed finish — so
    //    no amount of transport chaos can double-apply a row.
    let appended = client.append(DATASET, &writer.data_csv(&live_tail), 2_000)?;
    println!("append -> {appended}");

    // 4. Re-mine: the revision moved, so this is a true re-mine — but the
    //    extraction cache resumes every unchanged series from its prefix
    //    state, so only the appended tail is re-extracted.
    let mined = client.mine(DATASET, mine_body.clone())?;
    print_mine("after append (incremental)", &mined);
    let mined = client.mine(DATASET, mine_body.clone())?;
    print_mine("after append, repeated", &mined);

    // 5. Bound the live feed: install a sliding-window retention policy.
    //    The tight window trims expired whole storage blocks immediately,
    //    bumps the revision (trimmed content must never be served from
    //    cache), and keeps re-applying on every future append. The client
    //    attaches an idempotency key, so a replayed install is a no-op.
    let retained = client.set_retention(
        DATASET,
        Json::from_pairs([("max_timestamps", Json::from(48i64))]),
    )?;
    println!("retention (keep last 48) -> {retained}");
    let resp = client.request(&ApiRequest::get(format!("/datasets/{DATASET}/retention")))?;
    println!("GET retention -> {}", resp.body);
    let mined = client.mine(DATASET, mine_body)?;
    print_mine("after trim (bounded window)", &mined);

    // 6. Inspect the cache statistics endpoint (extraction tier with its
    //    prefix-resume counters, plus the revision-GC eviction counts).
    let resp = client.request(&ApiRequest::get("/cache/stats"))?;
    println!("GET cache/stats -> {}", resp.body);

    // 7. List registered datasets, then show what the transport did to us
    //    and what it cost the client to hide it.
    let resp = client.request(&ApiRequest::get("/datasets"))?;
    println!("GET datasets -> {}", resp.body);

    client.transport_mut().drain();
    let faults = client.transport().stats();
    let stats = client.stats();
    println!(
        "transport chaos: {} faults injected ({} requests dropped, {} responses dropped, \
         {} duplicated, {} delayed, {} delivered late)",
        faults.total_faults(),
        faults.dropped_requests,
        faults.dropped_responses,
        faults.duplicated_requests,
        faults.delayed_requests,
        faults.late_deliveries,
    );
    println!(
        "client: {} attempts, {} retries, {} transport losses seen, {} server-side replays, \
         {} append resumes, {} ms virtual backoff",
        stats.attempts,
        stats.retries,
        stats.losses,
        stats.replayed_responses,
        stats.resumes,
        stats.slept_ms,
    );
    Ok(())
}
