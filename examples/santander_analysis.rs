//! The "Santander dataset: a single city data analysis" scenario
//! (Section 4): find temperature↔traffic and light↔temperature correlations
//! and render the Figure-3 style dashboard to an SVG file.
//!
//! Run with: `cargo run --example santander_analysis`

use miscela_v::analysis::named_pairs;
use miscela_v::miscela_core::evolving::extract_evolving;
use miscela_v::miscela_core::{correlation, MiningParams};
use miscela_v::miscela_datagen::SantanderGenerator;
use miscela_v::MiscelaV;

fn main() {
    let system = MiscelaV::new();
    let dataset = SantanderGenerator::small().with_scale(0.05).generate();
    let stats = dataset.stats();
    println!("{stats}");
    system.register_dataset(dataset);

    let params = MiningParams::new()
        .with_epsilon(0.4)
        .with_eta_km(0.5)
        .with_mu(3)
        .with_psi(30)
        .with_segmentation(true)
        .with_segmentation_error(0.02);
    let outcome = system.mine("santander", &params).expect("mining succeeds");
    let caps = &outcome.result.caps;
    println!("found {}", caps.summary());

    let ds = system.service().dataset("santander").unwrap();

    // Which attribute pairs are correlated, and how often? (The paper:
    // "we can find correlated patterns among temperatures and traffic
    // volumes and among light and temperature".)
    println!("\nattribute pairs appearing in CAPs:");
    for ((a, b), count) in named_pairs(&ds, caps) {
        println!("  {a:12} <-> {b:12}  in {count} CAPs");
    }

    // Inspect one temperature/traffic CAP in detail, Figure-1 style.
    let temp = ds.attributes().id_of("temperature").unwrap();
    let traffic = ds.attributes().id_of("traffic").unwrap();
    if let Some(cap) = caps.with_attributes(&[temp, traffic]).first() {
        println!("\nexample temperature/traffic CAP: {cap}");
        let sensors = cap.sensors();
        // Extract each member once; score pairs from the precomputed sets.
        let evolving: Vec<_> = sensors
            .iter()
            .map(|&s| extract_evolving(ds.series(s), params.epsilon))
            .collect();
        for (k, pair) in sensors.windows(2).enumerate() {
            let a = ds.sensor_series(pair[0]);
            let b = ds.sensor_series(pair[1]);
            let r = correlation::pearson(a.series, b.series).unwrap_or(f64::NAN);
            let score = correlation::co_evolution_score_sets(&evolving[k], &evolving[k + 1]);
            println!(
                "  {} ({}) vs {} ({}): pearson {:.2}, co-evolution score {:.2}, distance {:.2} km",
                a.sensor.id,
                ds.attributes().name_of(a.sensor.attribute),
                b.sensor.id,
                ds.attributes().name_of(b.sensor.attribute),
                r,
                score,
                a.sensor.location.distance_km(&b.sensor.location),
            );
        }
    }

    // Render the Figure-3 dashboard for the strongest CAP.
    if let Some(doc) = system.dashboard("santander", caps).unwrap() {
        let path = std::env::temp_dir().join("miscela_santander_dashboard.svg");
        std::fs::write(&path, doc.render()).expect("write SVG");
        println!("\ndashboard written to {}", path.display());
    }
}
