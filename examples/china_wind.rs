//! The "China dataset: multiple cities data analysis" scenario (Section 4):
//! sensors that are horizontally (east–west) close are correlated, while
//! vertically (north–south) close sensors are not, because wind advects
//! pollution along the east–west axis. Also demonstrates the time-delayed
//! extension: downwind stations react a few hours after upwind ones.
//!
//! Run with: `cargo run --example china_wind`

use miscela_v::analysis::wind_direction;
use miscela_v::miscela_core::{Miner, MiningParams};
use miscela_v::miscela_datagen::{ChinaGenerator, ChinaProfile};

fn main() {
    let dataset = ChinaGenerator::small(ChinaProfile::China6)
        .with_scale(0.006)
        .generate();
    println!("{}", dataset.stats());

    let eta_km = 250.0;
    let params = MiningParams::new()
        .with_epsilon(1.0)
        .with_eta_km(eta_km)
        .with_mu(2)
        .with_psi(40)
        .with_max_sensors(Some(2))
        .with_segmentation(false);

    let miner = Miner::new(params.clone()).expect("valid parameters");
    let result = miner.mine(&dataset).expect("mining succeeds");
    println!("\nsimultaneous mining: {}", result.caps.summary());

    let report = wind_direction(&dataset, &result.caps, eta_km);
    println!("\nwind-direction analysis over close station pairs:");
    println!(
        "  horizontal (east-west) pairs: {:5}   correlated: {:.1}%",
        report.horizontal_pairs,
        report.horizontal_correlated_rate * 100.0
    );
    println!(
        "  vertical (north-south) pairs: {:5}   correlated: {:.1}%",
        report.vertical_pairs,
        report.vertical_correlated_rate * 100.0
    );
    if report.horizontal_correlated_rate > report.vertical_correlated_rate {
        println!(
            "  -> horizontally close sensors correlate more, matching the paper's observation"
        );
    }

    // Time-delayed extension (DPD 2020): let the miner search for delayed
    // co-evolution; downwind stations should lag upwind ones.
    let delayed_params = params.with_max_delay(6).with_psi(40);
    let delayed_result = Miner::new(delayed_params)
        .expect("valid parameters")
        .mine(&dataset)
        .expect("mining succeeds");
    let delayed: Vec<_> = delayed_result
        .delayed
        .iter()
        .filter(|d| !d.is_simultaneous())
        .take(5)
        .collect();
    println!("\ntop time-delayed patterns (leader evolves first):");
    for d in delayed {
        let leader = dataset.sensor(d.leader);
        let follower = dataset.sensor(d.follower);
        println!(
            "  {} -> {}: delay {} h, support {}, leader at lon {:.2}, follower at lon {:.2}",
            leader.id, follower.id, d.delay, d.support, leader.location.lon, follower.location.lon
        );
    }
}
