//! Controlled generator with planted ground-truth CAPs.
//!
//! The real-data generators plant correlations qualitatively; this generator
//! is the quantitative counterpart used by the recall/precision tests of the
//! mining engine: it creates a dataset in which *exactly* the requested
//! groups of sensors co-evolve, every other sensor is independent noise, and
//! groups are spatially separated so that the expected CAP set is known.

use crate::noise::observe;
use miscela_model::{
    Dataset, DatasetBuilder, Duration, GeoPoint, SensorId, TimeGrid, TimeSeries, Timestamp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planted pattern: the ids of the sensors that were made to co-evolve.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedCap {
    /// External sensor ids of the group members.
    pub sensor_ids: Vec<SensorId>,
    /// Attribute names of the members (one per member, same order).
    pub attributes: Vec<String>,
    /// Number of planted co-evolution events.
    pub events: usize,
}

/// Generator that plants explicit CAPs.
#[derive(Debug, Clone)]
pub struct PlantedGenerator {
    /// Number of planted groups.
    pub groups: usize,
    /// Sensors per group.
    pub group_size: usize,
    /// Number of additional independent noise sensors.
    pub noise_sensors: usize,
    /// Number of grid timestamps.
    pub timestamps: usize,
    /// Number of co-evolution events planted per group.
    pub events_per_group: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedGenerator {
    fn default() -> Self {
        PlantedGenerator {
            groups: 4,
            group_size: 3,
            noise_sensors: 6,
            timestamps: 500,
            events_per_group: 40,
            seed: 7,
        }
    }
}

impl PlantedGenerator {
    /// Creates the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute name for the i-th member of a group (members always get
    /// distinct attributes so the groups qualify as CAPs).
    fn attribute_for(member: usize) -> String {
        const NAMES: [&str; 6] = [
            "temperature",
            "traffic",
            "light",
            "humidity",
            "sound",
            "pressure",
        ];
        NAMES[member % NAMES.len()].to_string()
    }

    /// Generates the dataset together with the planted ground truth.
    pub fn generate(&self) -> (Dataset, Vec<PlantedCap>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = DatasetBuilder::new("planted");
        let start = Timestamp::parse("2016-03-01 00:00:00").expect("valid start");
        let grid = TimeGrid::new(start, Duration::hours(1), self.timestamps).expect("valid grid");
        builder.set_grid(grid.clone());

        let mut truth = Vec::new();
        let mut serial = 0usize;

        for g in 0..self.groups {
            // Each group sits in its own ~200 m cluster, clusters ~11 km
            // apart so that groups never share a proximity component at
            // kilometre-scale eta.
            let base_lat = 43.0 + 0.1 * g as f64;
            let base_lon = -3.8;

            // Plant events: at each chosen timestamp every member jumps by a
            // large amount in the same direction.
            let mut event_indices: Vec<usize> = Vec::new();
            while event_indices.len() < self.events_per_group.min(self.timestamps / 2) {
                let t = rng.gen_range(1..self.timestamps);
                if !event_indices.contains(&t) {
                    event_indices.push(t);
                }
            }
            event_indices.sort_unstable();

            let mut ids = Vec::new();
            let mut attrs = Vec::new();
            for m in 0..self.group_size {
                let attr = Self::attribute_for(m);
                let id = format!("g{g}-s{m}");
                let idx = builder
                    .add_sensor(
                        id.clone(),
                        &attr,
                        GeoPoint::new_unchecked(
                            base_lat + 0.0005 * m as f64,
                            base_lon + 0.0005 * m as f64,
                        ),
                    )
                    .expect("unique sensor");
                serial += 1;
                // Base level with tiny jitter, plus the planted jumps.
                let mut values = vec![0.0f64; self.timestamps];
                let mut level = 50.0 + 10.0 * m as f64;
                let mut event_cursor = 0usize;
                for (i, slot) in values.iter_mut().enumerate() {
                    if event_cursor < event_indices.len() && event_indices[event_cursor] == i {
                        // Alternate up/down jumps so levels stay bounded.
                        let dir = if event_cursor.is_multiple_of(2) {
                            1.0
                        } else {
                            -1.0
                        };
                        level += dir * 10.0;
                        event_cursor += 1;
                    }
                    *slot = level;
                }
                let series: TimeSeries = observe(&mut rng, &values, 0.05, 0.0);
                builder.set_series(idx, series).expect("length matches");
                ids.push(SensorId::new(id));
                attrs.push(attr);
            }
            truth.push(PlantedCap {
                sensor_ids: ids,
                attributes: attrs,
                events: event_indices.len(),
            });
        }

        // Independent noise sensors scattered near the first cluster (so they
        // are spatially close to real patterns but never co-evolve).
        for nidx in 0..self.noise_sensors {
            let attr = Self::attribute_for(nidx + 1);
            let idx = builder
                .add_sensor(
                    format!("noise-{nidx}"),
                    &attr,
                    GeoPoint::new_unchecked(43.0 + 0.0005 * (nidx + self.group_size) as f64, -3.8),
                )
                .expect("unique sensor");
            serial += 1;
            let values: Vec<f64> = (0..self.timestamps)
                .map(|_| 50.0 + rng.gen_range(-0.2..0.2))
                .collect();
            let series: TimeSeries = observe(&mut rng, &values, 0.05, 0.0);
            builder.set_series(idx, series).expect("length matches");
        }
        let _ = serial;

        (builder.build().expect("valid dataset"), truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::{Miner, MiningParams};

    #[test]
    fn shape_and_ground_truth() {
        let gen = PlantedGenerator::default();
        let (ds, truth) = gen.generate();
        assert_eq!(truth.len(), gen.groups);
        assert_eq!(
            ds.sensor_count(),
            gen.groups * gen.group_size + gen.noise_sensors
        );
        assert_eq!(ds.timestamp_count(), gen.timestamps);
        for cap in &truth {
            assert_eq!(cap.sensor_ids.len(), gen.group_size);
            assert!(cap.events >= 30);
            // Distinct attributes within a group.
            let unique: std::collections::BTreeSet<&String> = cap.attributes.iter().collect();
            assert_eq!(unique.len(), gen.group_size.min(6));
        }
    }

    #[test]
    fn miner_recovers_planted_groups() {
        let gen = PlantedGenerator {
            groups: 3,
            group_size: 3,
            noise_sensors: 4,
            timestamps: 400,
            events_per_group: 30,
            seed: 11,
        };
        let (ds, truth) = gen.generate();
        let params = MiningParams::new()
            .with_epsilon(5.0)
            .with_eta_km(1.0)
            .with_psi(15)
            .with_mu(3)
            .with_segmentation(false);
        let result = Miner::new(params).unwrap().mine(&ds).unwrap();
        // Recall: every planted group appears as a CAP (the full group, not
        // just a sub-pair).
        for planted in &truth {
            let expected: std::collections::BTreeSet<&str> =
                planted.sensor_ids.iter().map(|s| s.as_str()).collect();
            let found = result.caps.caps().iter().any(|cap| {
                let names: std::collections::BTreeSet<&str> = cap
                    .sensors()
                    .iter()
                    .map(|&idx| ds.sensor(idx).id.as_str())
                    .collect();
                names == expected
            });
            assert!(
                found,
                "planted group {:?} not recovered",
                planted.sensor_ids
            );
        }
        // Precision: no CAP contains a noise sensor.
        for cap in result.caps.caps() {
            for &s in &cap.sensors() {
                assert!(
                    !ds.sensor(s).id.as_str().starts_with("noise-"),
                    "noise sensor leaked into {cap}"
                );
            }
        }
    }
}
