//! # miscela-datagen
//!
//! Synthetic stand-ins for the four smart-city datasets the paper
//! demonstrates with (Section 4). The real data (SmartSantander exports and
//! the Chinese national air-quality network) is not redistributable, so each
//! generator reproduces the *shape* of its dataset — sensor counts,
//! attribute inventory, covered period, spatial layout — and plants the
//! correlation structure that the paper's demonstration scenarios rely on:
//!
//! * [`santander`] — 552 sensors, five attributes, city-scale layout, with
//!   temperature↔traffic and light↔temperature correlations (Example 1.1 and
//!   the "single city data analysis" scenario);
//! * [`china`] — country-scale air-quality networks (China6: 9,438 sensors,
//!   five pollutants; China13: 4,810 sensors with seven extra weather
//!   attributes) where a west-to-east wind advects pollution, so
//!   horizontally close sensors correlate and vertically close ones do not
//!   (the "multiple cities" scenario);
//! * [`covid`] — 12 sensors in Shanghai and Guangzhou over the first half of
//!   2020, with a lockdown regime change that alters both pollutant levels
//!   and which attribute pairs co-evolve (Figure 4);
//! * [`planted`] — a controlled generator that plants explicit ground-truth
//!   CAPs, used by the recall/precision tests of the mining engine.
//!
//! Every generator is deterministic given its seed, supports a `scale`
//! factor so tests and benches run on reduced data, and has a
//! `paper_scale()` constructor matching Section 4's record counts.
//!
//! # Example
//!
//! ```
//! use miscela_datagen::SantanderGenerator;
//!
//! let dataset = SantanderGenerator::small().with_scale(0.02).generate();
//! assert!(dataset.sensor_count() > 0);
//! assert!(dataset.attributes().len() >= 2);
//!
//! // Generation is deterministic for a given seed.
//! let again = SantanderGenerator::small().with_scale(0.02).generate();
//! assert_eq!(dataset.record_count(), again.record_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod china;
pub mod covid;
pub mod noise;
pub mod planted;
pub mod profiles;
pub mod santander;

pub use chain::chain_component;
pub use china::{ChinaGenerator, ChinaProfile};
pub use covid::CovidGenerator;
pub use planted::{PlantedCap, PlantedGenerator};
pub use profiles::DatasetProfile;
pub use santander::SantanderGenerator;
