//! The giant-chain-component fixture: one spatially connected chain of
//! sensors, the realistic city-scale shape where a single large component
//! dominates the CAP search.
//!
//! Shared by the `search_scaling` bench and the work-stealing regression
//! test of the mining engine, so both always exercise exactly the same
//! component shape.

use miscela_model::{Dataset, DatasetBuilder, Duration, GeoPoint, TimeGrid, TimeSeries, Timestamp};

/// Attribute names cycled along the chain (three distinct attributes, so
/// neighbouring sensors differ and satisfy the ≥ 2 distinct-attribute rule).
const CHAIN_ATTRIBUTES: [&str; 3] = ["temperature", "traffic", "humidity"];

/// Builds one chain component of `sensors` sensors ~110 m apart (0.001° of
/// latitude), cycling three attributes, each with a co-evolving sawtooth
/// series of period 12 and amplitude `1.0 + (i mod 4)` over `timestamps`
/// hourly grid points. With η ≥ 1 km the proximity graph is a single
/// connected component.
pub fn chain_component(sensors: usize, timestamps: usize) -> Dataset {
    let mut b = DatasetBuilder::new("giant-chain");
    let start = Timestamp::parse("2016-03-01 00:00:00").expect("fixture start timestamp");
    b.set_grid(TimeGrid::new(start, Duration::hours(1), timestamps).expect("fixture grid"));
    for i in 0..sensors {
        let attr = CHAIN_ATTRIBUTES[i % CHAIN_ATTRIBUTES.len()];
        let idx = b
            .add_sensor(
                format!("s{i}"),
                attr,
                GeoPoint::new_unchecked(43.4 + 0.001 * i as f64, -3.80),
            )
            .expect("fixture sensor");
        let amp = 1.0 + (i % 4) as f64;
        let series = TimeSeries::from_values(
            (0..timestamps)
                .map(|t| {
                    let phase = t % 12;
                    if phase < 6 {
                        amp * phase as f64
                    } else {
                        amp * (12 - phase) as f64
                    }
                })
                .collect(),
        );
        b.set_series(idx, series).expect("fixture series");
    }
    b.build().expect("fixture dataset")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_expected_shape() {
        let ds = chain_component(10, 48);
        assert_eq!(ds.sensor_count(), 10);
        assert_eq!(ds.timestamp_count(), 48);
        assert_eq!(ds.attributes().len(), 3);
    }
}
