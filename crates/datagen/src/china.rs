//! Synthetic stand-in for the China6 / China13 datasets (country scale).
//!
//! The real datasets come from the Chinese national air-quality monitoring
//! network: thousands of stations reporting PM2.5, SO2, NO2, CO and O3
//! hourly over two years (China13 adds seven weather attributes at a subset
//! of stations).
//!
//! The demonstration scenario the paper builds on this data is the
//! wind-direction effect: *"sensors are not correlated if two sensors are
//! vertically (north and south) close to each other, but if sensors are
//! horizontally (east and west) close, they are correlated. These are often
//! caused by wind directions."* The generator therefore drives pollution
//! with plumes that advect **west to east** along latitude bands: stations
//! in the same band share a plume signal (shifted in time with longitude),
//! while stations in different bands get independent plumes. Horizontally
//! close station pairs co-evolve; vertically close pairs do not.

use crate::noise::{diurnal, observe, random_walk, scaled};
use crate::profiles::DatasetProfile;
use miscela_model::{Dataset, DatasetBuilder, GeoPoint, TimeGrid, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the two China datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChinaProfile {
    /// Five pollutant attributes, 9,438 sensors at paper scale.
    China6,
    /// Pollutants plus weather attributes, 4,810 sensors at paper scale.
    China13,
}

impl ChinaProfile {
    /// The corresponding published profile.
    pub fn profile(&self) -> DatasetProfile {
        match self {
            ChinaProfile::China6 => DatasetProfile::china6(),
            ChinaProfile::China13 => DatasetProfile::china13(),
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &'static str {
        match self {
            ChinaProfile::China6 => "china6",
            ChinaProfile::China13 => "china13",
        }
    }
}

/// Generator for the synthetic China datasets.
#[derive(Debug, Clone)]
pub struct ChinaGenerator {
    /// Which profile to generate.
    pub profile: ChinaProfile,
    /// Fraction of the paper-scale sensor count and period.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a measurement is missing.
    pub missing_rate: f64,
    /// Number of latitude bands (each band shares a wind-advected plume).
    pub latitude_bands: usize,
    /// Wind advection delay in grid steps per degree of longitude.
    pub advection_steps_per_degree: f64,
}

impl ChinaGenerator {
    /// A small test-sized configuration of the given profile.
    pub fn small(profile: ChinaProfile) -> Self {
        ChinaGenerator {
            profile,
            scale: 0.004,
            seed: 88,
            missing_rate: 0.02,
            latitude_bands: 4,
            advection_steps_per_degree: 1.0,
        }
    }

    /// The paper-scale configuration.
    pub fn paper_scale(profile: ChinaProfile) -> Self {
        ChinaGenerator {
            scale: 1.0,
            ..Self::small(profile)
        }
    }

    /// Sets the scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of monitoring cities for the configured scale. Each city hosts
    /// one station per attribute.
    pub fn city_count(&self) -> usize {
        let per_city = self.profile.profile().attributes.len();
        scaled(
            self.profile.profile().sensors / per_city,
            self.scale,
            self.latitude_bands.max(2) * 2,
        )
    }

    /// Number of grid timestamps for the configured scale.
    pub fn timestamp_count(&self) -> usize {
        scaled(self.profile.profile().timestamps(), self.scale, 24 * 14)
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let profile = self.profile.profile();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = DatasetBuilder::new(self.profile.name());
        let grid = TimeGrid::new(
            profile.period.start,
            profile.interval,
            self.timestamp_count(),
        )
        .expect("valid grid");
        builder.set_grid(grid.clone());
        for attr in &profile.attributes {
            builder.add_attribute(attr);
        }

        // One pollution plume per latitude band: slow, smooth multi-day
        // episodes (superposed oscillations with band-specific periods and
        // phases) that every station in the band observes, delayed according
        // to its longitude (wind blows west -> east). Because the episodes
        // build up and decay over tens of hours, stations a few hours of
        // advection apart still evolve in the same direction at the same
        // wall-clock timestamps, while stations in different bands follow
        // unrelated episode schedules.
        let bands = self.latitude_bands.max(1);
        let plumes: Vec<Vec<f64>> = (0..bands)
            .map(|_| {
                let period1 = rng.gen_range(60.0..120.0);
                let period2 = rng.gen_range(25.0..45.0);
                let phase1 = rng.gen_range(0.0..std::f64::consts::TAU);
                let phase2 = rng.gen_range(0.0..std::f64::consts::TAU);
                let drift = random_walk(&mut rng, &grid, 0.0, 0.8, 0.05);
                (0..grid.len())
                    .map(|i| {
                        let x = i as f64;
                        60.0 + 35.0 * (x * std::f64::consts::TAU / period1 + phase1).sin()
                            + 20.0 * (x * std::f64::consts::TAU / period2 + phase2).sin()
                            + drift[i]
                    })
                    .collect()
            })
            .collect();
        // A country-wide temperature background for the weather attributes.
        let synoptic_temp = random_walk(&mut rng, &grid, 0.0, 0.3, 0.02);

        let cities = self.city_count();
        let mut serial = 0usize;
        for _ in 0..cities {
            // Cities spread over eastern China: lat 22..42, lon 102..122.
            let band = rng.gen_range(0..bands);
            let band_height = 20.0 / bands as f64;
            let lat = 22.0 + band as f64 * band_height + rng.gen_range(0.0..band_height);
            let lon = rng.gen_range(102.0..122.0);
            // Wind advection: stations further east see the plume later.
            let delay = ((lon - 102.0) * self.advection_steps_per_degree).round() as usize;
            let plume = &plumes[band];
            let local_scale = rng.gen_range(0.7..1.3);

            let pm25: Vec<f64> = (0..grid.len())
                .map(|i| {
                    let src = if i >= delay {
                        plume[i - delay]
                    } else {
                        plume[0]
                    };
                    (src * local_scale).max(1.0)
                })
                .collect();
            let so2: Vec<f64> = pm25.iter().map(|v| 8.0 + 0.15 * v).collect();
            let no2: Vec<f64> = grid
                .iter()
                .enumerate()
                .map(|(i, t)| 20.0 + 0.25 * pm25[i] + 12.0 * crate::noise::rush_hour_profile(t))
                .collect();
            let co: Vec<f64> = pm25.iter().map(|v| 0.4 + 0.008 * v).collect();
            // Ozone is photochemical: driven by daylight, anti-correlated
            // with NO2 at night.
            let o3: Vec<f64> = grid
                .iter()
                .enumerate()
                .map(|(i, t)| (diurnal(t, 45.0, 30.0, 14.0) - 0.1 * no2[i]).max(1.0))
                .collect();

            let mut emit = |name: &str,
                            clean: &[f64],
                            noise_std: f64,
                            rng: &mut StdRng,
                            serial: &mut usize| {
                if let Ok(idx) = builder.add_sensor(
                    format!("{:05}", *serial),
                    name,
                    GeoPoint::new_unchecked(lat, lon),
                ) {
                    *serial += 1;
                    let series: TimeSeries = observe(rng, clean, noise_std, self.missing_rate);
                    let _ = builder.set_series(idx, series);
                }
            };

            emit("PM2.5", &pm25, 1.5, &mut rng, &mut serial);
            emit("SO2", &so2, 0.6, &mut rng, &mut serial);
            emit("NO2", &no2, 1.0, &mut rng, &mut serial);
            emit("CO", &co, 0.03, &mut rng, &mut serial);
            emit("O3", &o3, 1.5, &mut rng, &mut serial);

            if self.profile == ChinaProfile::China13 {
                let temperature: Vec<f64> = grid
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        diurnal(t, 16.0 - (lat - 30.0) * 0.6, 6.0, 15.0) + synoptic_temp[i]
                    })
                    .collect();
                let humidity: Vec<f64> = temperature
                    .iter()
                    .map(|t| (80.0 - 1.5 * (t - 12.0)).clamp(15.0, 100.0))
                    .collect();
                let pressure: Vec<f64> = (0..grid.len())
                    .map(|i| 1013.0 - 0.4 * synoptic_temp[i])
                    .collect();
                let daylight: Vec<f64> = grid
                    .iter()
                    .map(|t| (diurnal(t, 0.4, 0.6, 13.0)).clamp(0.0, 1.0))
                    .collect();
                let rain_pct: Vec<f64> = humidity
                    .iter()
                    .map(|h| ((h - 60.0) / 40.0).clamp(0.0, 1.0) * 60.0)
                    .collect();
                let rain_vol: Vec<f64> = rain_pct.iter().map(|p| p * 0.05).collect();
                let wind: Vec<f64> = (0..grid.len())
                    .map(|i| 3.0 + 1.5 * (i as f64 * 0.01).sin())
                    .collect();
                emit("temperature", &temperature, 0.2, &mut rng, &mut serial);
                emit("humidity", &humidity, 1.0, &mut rng, &mut serial);
                emit("air pressure", &pressure, 0.3, &mut rng, &mut serial);
                emit("daylight", &daylight, 0.02, &mut rng, &mut serial);
                emit("rainfall percentage", &rain_pct, 1.0, &mut rng, &mut serial);
                emit("rain volume", &rain_vol, 0.05, &mut rng, &mut serial);
                emit("wind speed", &wind, 0.2, &mut rng, &mut serial);
            }
        }

        builder.build().expect("generated dataset is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::correlation::co_evolution_score_sets;

    #[test]
    fn china6_shape() {
        let ds = ChinaGenerator::small(ChinaProfile::China6).generate();
        assert_eq!(ds.name(), "china6");
        assert_eq!(ds.attributes().len(), 5);
        assert!(ds.sensor_count() >= 5 * 8);
        assert!(ds.timestamp_count() >= 24 * 14);
        let bb = ds.bounding_box().unwrap();
        assert!(bb.min_lat >= 21.9 && bb.max_lat <= 42.1);
        assert!(bb.min_lon >= 101.9 && bb.max_lon <= 122.1);
    }

    #[test]
    fn china13_has_weather_attributes() {
        let ds = ChinaGenerator::small(ChinaProfile::China13).generate();
        assert_eq!(ds.name(), "china13");
        assert_eq!(ds.attributes().len(), 12);
        assert!(ds.attributes().id_of("wind speed").is_some());
        assert!(ds.attributes().id_of("temperature").is_some());
        // Each city hosts 12 sensors.
        assert_eq!(ds.sensor_count() % 12, 0);
    }

    #[test]
    fn horizontal_pairs_correlate_more_than_vertical_pairs() {
        // Enough cities that both geometric classes of pairs are well
        // populated for any seed, not just a lucky draw.
        let gen = ChinaGenerator::small(ChinaProfile::China6).with_scale(0.02);
        let ds = gen.generate();
        let pm = ds.attributes().id_of("PM2.5").unwrap();
        let stations: Vec<_> = ds.sensors_with_attribute(pm).collect();
        // Extract each station once, not once per pair.
        let evolving: Vec<_> = stations
            .iter()
            .map(|s| miscela_core::evolving::extract_evolving(s.series, 1.0))
            .collect();
        let mut horizontal = Vec::new();
        let mut vertical = Vec::new();
        for i in 0..stations.len() {
            for j in (i + 1)..stations.len() {
                let a = &stations[i];
                let b = &stations[j];
                let dlat = (a.sensor.location.lat - b.sensor.location.lat).abs();
                let dlon = (a.sensor.location.lon - b.sensor.location.lon).abs();
                let score = co_evolution_score_sets(&evolving[i], &evolving[j]);
                // Horizontal: nearly the same latitude, some longitude gap.
                if dlat < 1.0 && dlon > 0.5 && dlon < 6.0 {
                    horizontal.push(score);
                }
                // Vertical: nearly the same longitude, some latitude gap.
                if dlon < 1.0 && dlat > 3.0 {
                    vertical.push(score);
                }
            }
        }
        assert!(
            horizontal.len() >= 3 && vertical.len() >= 3,
            "not enough pairs: {} horizontal, {} vertical",
            horizontal.len(),
            vertical.len()
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&horizontal) > mean(&vertical) + 0.1,
            "horizontal {:.3} vs vertical {:.3}",
            mean(&horizontal),
            mean(&vertical)
        );
    }

    #[test]
    fn deterministic_and_scalable() {
        let a = ChinaGenerator::small(ChinaProfile::China6).generate();
        let b = ChinaGenerator::small(ChinaProfile::China6).generate();
        assert_eq!(a.sensor_count(), b.sensor_count());
        assert_eq!(
            a.series(miscela_model::SensorIndex(3)).get(10),
            b.series(miscela_model::SensorIndex(3)).get(10)
        );
        let bigger = ChinaGenerator::small(ChinaProfile::China6)
            .with_scale(0.008)
            .generate();
        assert!(bigger.sensor_count() > a.sensor_count());
    }

    #[test]
    fn paper_scale_sizing() {
        let g6 = ChinaGenerator::paper_scale(ChinaProfile::China6);
        // 9,438 sensors / 5 attributes ≈ 1,887 cities.
        assert_eq!(g6.city_count(), 9_438 / 5);
        let g13 = ChinaGenerator::paper_scale(ChinaProfile::China13);
        assert_eq!(g13.city_count(), 4_810 / 12);
    }
}
