//! Shared signal-construction helpers for the dataset generators.
//!
//! The generators compose three ingredients: deterministic daily/weekly
//! cycles (temperature, light, traffic), slowly varying random walks
//! (synoptic weather, pollution background), and white observation noise.
//! All randomness flows through a caller-supplied `StdRng`, so every dataset
//! is reproducible from its seed.

use miscela_model::{TimeGrid, TimeSeries, Timestamp};
use rand::rngs::StdRng;
use rand::Rng;

/// A smooth diurnal (24-hour) cycle evaluated at a timestamp.
///
/// `peak_hour` is where the cycle reaches `base + amplitude`; the minimum is
/// 12 hours away. Shapes like temperature (peak mid-afternoon) and light
/// (peak at noon) are instances of this.
pub fn diurnal(t: Timestamp, base: f64, amplitude: f64, peak_hour: f64) -> f64 {
    let hour = t.hour_of_day();
    let phase = (hour - peak_hour) / 24.0 * std::f64::consts::TAU;
    base + amplitude * phase.cos()
}

/// A weekday rush-hour profile: two peaks (morning and evening) on weekdays,
/// a flatter single bump on weekends. Returns a multiplier in `[0, 1]`.
pub fn rush_hour_profile(t: Timestamp) -> f64 {
    let hour = t.hour_of_day();
    let bump = |center: f64, width: f64| -> f64 {
        let d = (hour - center) / width;
        (-0.5 * d * d).exp()
    };
    if t.is_weekend() {
        0.25 + 0.45 * bump(14.0, 4.0)
    } else {
        0.15 + 0.75 * bump(8.5, 1.8) + 0.65 * bump(18.0, 2.2)
    }
}

/// Generates a mean-reverting random walk (Ornstein–Uhlenbeck-like) of the
/// grid's length. Used for synoptic weather and pollution backgrounds.
pub fn random_walk(
    rng: &mut StdRng,
    grid: &TimeGrid,
    mean: f64,
    volatility: f64,
    reversion: f64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(grid.len());
    let mut x = mean;
    for _ in 0..grid.len() {
        let shock: f64 = rng.gen_range(-1.0..1.0) * volatility;
        x += reversion * (mean - x) + shock;
        out.push(x);
    }
    out
}

/// Adds white noise and random missing values to a clean signal, producing
/// the final series. `missing_rate` is the probability that a measurement is
/// dropped (the paper's files contain explicit nulls).
pub fn observe(rng: &mut StdRng, clean: &[f64], noise_std: f64, missing_rate: f64) -> TimeSeries {
    TimeSeries::from_options(
        &clean
            .iter()
            .map(|&v| {
                if missing_rate > 0.0 && rng.gen::<f64>() < missing_rate {
                    None
                } else {
                    let noise = rng.gen_range(-1.0..1.0) * noise_std;
                    Some(v + noise)
                }
            })
            .collect::<Vec<_>>(),
    )
}

/// Scales a sensor/timestamp count by the generator's `scale` factor,
/// keeping at least `min`.
pub fn scaled(count: usize, scale: f64, min: usize) -> usize {
    ((count as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_model::Duration;
    use rand::SeedableRng;

    fn grid(len: usize) -> TimeGrid {
        TimeGrid::new(
            Timestamp::parse("2016-03-01 00:00:00").unwrap(),
            Duration::hours(1),
            len,
        )
        .unwrap()
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let base = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        let at = |h: i64| diurnal(base + Duration::hours(h), 10.0, 5.0, 15.0);
        assert!((at(15) - 15.0).abs() < 1e-9);
        assert!(at(3) < at(15));
        assert!((at(3) - 5.0).abs() < 0.2); // minimum ~12h after the peak
    }

    #[test]
    fn rush_hour_weekday_has_two_peaks() {
        // 2016-03-01 is a Tuesday, 2016-03-05 a Saturday.
        let tuesday = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        let saturday = Timestamp::parse("2016-03-05 00:00:00").unwrap();
        let wk = |h: i64| rush_hour_profile(tuesday + Duration::hours(h));
        let we = |h: i64| rush_hour_profile(saturday + Duration::hours(h));
        assert!(wk(8) > wk(3));
        assert!(wk(18) > wk(12));
        // Weekend morning rush is much weaker than the weekday one.
        assert!(we(8) < wk(8));
        for h in 0..24 {
            assert!((0.0..=1.6).contains(&wk(h)));
        }
    }

    #[test]
    fn random_walk_is_reproducible_and_bounded() {
        let g = grid(500);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = random_walk(&mut rng1, &g, 50.0, 1.0, 0.05);
        let b = random_walk(&mut rng2, &g, 50.0, 1.0, 0.05);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        // Mean reversion keeps the walk in a sane band around the mean.
        assert!(a.iter().all(|v| (0.0..150.0).contains(v)));
    }

    #[test]
    fn observe_injects_missing_values() {
        let clean = vec![10.0; 1000];
        let mut rng = StdRng::seed_from_u64(42);
        let s = observe(&mut rng, &clean, 0.1, 0.1);
        assert_eq!(s.len(), 1000);
        let missing = s.missing_count();
        assert!((40..200).contains(&missing), "missing={missing}");
        for (_, v) in s.present() {
            assert!((9.8..10.2).contains(&v));
        }
        // No missing values requested -> none produced.
        let s2 = observe(&mut rng, &clean, 0.0, 0.0);
        assert_eq!(s2.missing_count(), 0);
    }

    #[test]
    fn scaled_respects_minimum() {
        assert_eq!(scaled(100, 0.5, 1), 50);
        assert_eq!(scaled(100, 0.001, 5), 5);
        assert_eq!(scaled(7, 1.0, 1), 7);
    }
}
