//! Synthetic stand-in for the COVID-19 dataset (Figure 4).
//!
//! The real dataset covers 12 air-quality sensors in Shanghai and Guangzhou
//! from 2020-01-01 to 2020-06-30 — a period that spans the outbreak of
//! COVID-19 and the resulting lockdowns. The paper's Figure 4 shows that the
//! correlation patterns among pollutants change between the periods before
//! and after the spread of COVID-19: "our activity changes affect not only
//! the amounts of air pollutants but also their correlation patterns".
//!
//! The generator models the mechanism behind that observation:
//!
//! * **before the lockdown**, traffic drives NO2 and CO, which in turn drive
//!   a large share of PM2.5/PM10 — so NO2, CO and the particulates co-evolve
//!   with the daily traffic rhythm;
//! * **after the lockdown**, traffic collapses: NO2 and CO fall to low,
//!   flat levels; the particulates are dominated by regional background
//!   episodes (which SO2 follows), and with less NO2 titration, ozone rises
//!   and follows its photochemical daylight cycle more strongly.
//!
//! Mining the two halves therefore produces different attribute-pair
//! patterns as well as lower pollutant levels after the cut, which is what
//! experiment E4 checks.

use crate::noise::{diurnal, observe, random_walk, rush_hour_profile, scaled};
use crate::profiles::DatasetProfile;
use miscela_model::{Dataset, DatasetBuilder, GeoPoint, TimeGrid, TimeSeries, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two monitored cities.
const CITIES: [(&str, f64, f64); 2] = [
    ("shanghai", 31.2304, 121.4737),
    ("guangzhou", 23.1291, 113.2644),
];

/// Generator for the synthetic COVID-19 dataset.
#[derive(Debug, Clone)]
pub struct CovidGenerator {
    /// Fraction of the paper-scale period to generate (sensor count is fixed
    /// at 12, as in the paper).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a measurement is missing.
    pub missing_rate: f64,
    /// The lockdown date separating the "before" and "after" regimes.
    pub lockdown: Timestamp,
}

impl Default for CovidGenerator {
    fn default() -> Self {
        CovidGenerator {
            scale: 1.0,
            seed: 2020,
            missing_rate: 0.005,
            // Wuhan lockdown; city restrictions across China followed within
            // days.
            lockdown: Timestamp::parse("2020-01-23 00:00:00").expect("valid date"),
        }
    }
}

impl CovidGenerator {
    /// The paper-scale configuration (the dataset is small enough that the
    /// default is already paper scale: 12 sensors, six months, hourly).
    pub fn paper_scale() -> Self {
        Self::default()
    }

    /// A reduced configuration for fast tests (six weeks around the
    /// lockdown).
    pub fn small() -> Self {
        CovidGenerator {
            scale: 0.25,
            ..Self::default()
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// The lockdown timestamp used by the generator.
    pub fn lockdown(&self) -> Timestamp {
        self.lockdown
    }

    /// Number of grid timestamps for the configured scale.
    pub fn timestamp_count(&self) -> usize {
        scaled(DatasetProfile::covid19().timestamps(), self.scale, 24 * 28)
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let profile = DatasetProfile::covid19();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = DatasetBuilder::new("covid19");
        let grid = TimeGrid::new(
            profile.period.start,
            profile.interval,
            self.timestamp_count(),
        )
        .expect("valid grid");
        builder.set_grid(grid.clone());
        for attr in &profile.attributes {
            builder.add_attribute(attr);
        }

        let lockdown_index = grid
            .floor_index(self.lockdown)
            .unwrap_or(grid.len().saturating_sub(1));

        for (city, lat, lon) in CITIES {
            // Regional particulate background: slow episodes independent of
            // traffic, present in both regimes.
            let background = random_walk(&mut rng, &grid, 45.0, 2.0, 0.02);

            let mut pm25 = Vec::with_capacity(grid.len());
            let mut pm10 = Vec::with_capacity(grid.len());
            let mut so2 = Vec::with_capacity(grid.len());
            let mut no2 = Vec::with_capacity(grid.len());
            let mut co = Vec::with_capacity(grid.len());
            let mut o3 = Vec::with_capacity(grid.len());

            for (i, t) in grid.iter().enumerate() {
                let locked = i >= lockdown_index;
                // Traffic collapses to ~25% of normal after the lockdown.
                let traffic = rush_hour_profile(t) * if locked { 0.25 } else { 1.0 } * 100.0;
                let bg = background[i].max(5.0);

                let no2_v = 8.0 + 0.38 * traffic + 0.05 * bg;
                let co_v = 0.3 + 0.009 * traffic + 0.002 * bg;
                let traffic_pm = 0.35 * traffic;
                let pm25_v = 0.65 * bg + if locked { 0.2 * traffic_pm } else { traffic_pm };
                let pm10_v = 1.45 * pm25_v + 4.0;
                let so2_v = 6.0 + 0.12 * bg;
                // Ozone: daylight-driven, suppressed by NO2 titration.
                let o3_v = (diurnal(t, 50.0, 35.0, 14.0) - 0.45 * no2_v).max(2.0)
                    * if locked { 1.15 } else { 1.0 };

                pm25.push(pm25_v);
                pm10.push(pm10_v);
                so2.push(so2_v);
                no2.push(no2_v);
                co.push(co_v);
                o3.push(o3_v);
            }

            let signals: [(&str, &Vec<f64>, f64); 6] = [
                ("PM2.5", &pm25, 1.2),
                ("PM10", &pm10, 2.0),
                ("SO2", &so2, 0.4),
                ("NO2", &no2, 0.8),
                ("CO", &co, 0.02),
                ("O3", &o3, 1.0),
            ];
            for (attr, clean, noise_std) in signals {
                let idx = builder
                    .add_sensor(
                        format!("{city}-{attr}"),
                        attr,
                        GeoPoint::new_unchecked(
                            lat + rng.gen_range(-0.002..0.002),
                            lon + rng.gen_range(-0.002..0.002),
                        ),
                    )
                    .expect("unique sensor id");
                let series: TimeSeries = observe(&mut rng, clean, noise_std, self.missing_rate);
                builder
                    .set_series(idx, series)
                    .expect("series length matches grid");
            }
        }

        builder.build().expect("generated dataset is valid")
    }

    /// Convenience: the generated dataset split at the lockdown date into
    /// (before, after) windows, as the Figure-4 analysis uses.
    pub fn generate_split(&self) -> (Dataset, Dataset) {
        let ds = self.generate();
        let range = ds.grid().range();
        let before = ds
            .slice_time(range.start, self.lockdown)
            .expect("valid before-window");
        let after = ds
            .slice_time(self.lockdown, range.end)
            .expect("valid after-window");
        (before, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let ds = CovidGenerator::small().generate();
        assert_eq!(ds.name(), "covid19");
        assert_eq!(ds.sensor_count(), 12);
        assert_eq!(ds.attributes().len(), 6);
        assert!(ds.timestamp_count() >= 24 * 28);
        // Two cities, far apart.
        let bb = ds.bounding_box().unwrap();
        assert!(bb.diagonal_km() > 1_000.0);
    }

    #[test]
    fn paper_scale_record_count_is_close_to_published() {
        let g = CovidGenerator::paper_scale();
        let implied = 12 * g.timestamp_count();
        let published = DatasetProfile::covid19().records;
        let diff = implied.abs_diff(published);
        assert!(
            (diff as f64) < published as f64 * 0.02,
            "implied {implied} vs published {published}"
        );
    }

    #[test]
    fn pollutant_levels_drop_after_lockdown() {
        let gen = CovidGenerator::small();
        let (before, after) = gen.generate_split();
        assert!(before.timestamp_count() > 24 * 7);
        assert!(after.timestamp_count() > 24 * 7);
        let mean_of = |ds: &Dataset, attr: &str| -> f64 {
            let id = ds.attributes().id_of(attr).unwrap();
            let mut sum = 0.0;
            let mut n = 0;
            for ss in ds.sensors_with_attribute(id) {
                if let Some(m) = ss.series.mean() {
                    sum += m;
                    n += 1;
                }
            }
            sum / n as f64
        };
        // Traffic-driven pollutants collapse.
        assert!(mean_of(&after, "NO2") < mean_of(&before, "NO2") * 0.75);
        assert!(mean_of(&after, "CO") < mean_of(&before, "CO") * 0.9);
        // Ozone rises.
        assert!(mean_of(&after, "O3") > mean_of(&before, "O3"));
    }

    #[test]
    fn correlation_structure_changes_after_lockdown() {
        use miscela_core::correlation::co_evolution_score;
        let gen = CovidGenerator::small();
        let (before, after) = gen.generate_split();
        let series_of = |ds: &Dataset, city: &str, attr: &str| {
            let id = ds
                .index_of_id(&miscela_model::SensorId::new(format!("{city}-{attr}")))
                .unwrap();
            ds.series(id).clone()
        };
        // NO2 and PM2.5 co-evolve strongly before (traffic drives both), and
        // much less after.
        let b = co_evolution_score(
            &series_of(&before, "shanghai", "NO2"),
            &series_of(&before, "shanghai", "PM2.5"),
            0.8,
        );
        let a = co_evolution_score(
            &series_of(&after, "shanghai", "NO2"),
            &series_of(&after, "shanghai", "PM2.5"),
            0.8,
        );
        assert!(
            b > a + 0.1,
            "NO2/PM2.5 co-evolution before={b:.3} after={a:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let a = CovidGenerator::small().generate();
        let b = CovidGenerator::small().generate();
        assert_eq!(
            a.series(miscela_model::SensorIndex(5)).get(100),
            b.series(miscela_model::SensorIndex(5)).get(100)
        );
    }
}
