//! Synthetic stand-in for the Santander dataset (city scale).
//!
//! The real dataset comes from the SmartSantander testbed: 552 sensors in
//! Santander, Spain, measuring temperature, light, sound, traffic volume and
//! humidity at hourly resolution from 2016-03-01 to 2016-09-30.
//!
//! The generator reproduces that shape and plants the correlations the
//! paper's demonstration scenarios rely on:
//!
//! * sensors sit in small street-level clusters scattered over the city, so
//!   the η-proximity graph has many small components at sub-kilometre
//!   thresholds;
//! * **temperature ↔ traffic** co-evolve (Example 1.1, Figure 1): both follow
//!   the daily cycle — afternoon warmth coincides with afternoon traffic;
//! * **light ↔ temperature** co-evolve (the "single city" scenario);
//! * sound tracks traffic loosely; humidity moves opposite to temperature;
//!   every signal carries sensor-local noise and missing values.

use crate::noise::{diurnal, observe, random_walk, rush_hour_profile, scaled};
use crate::profiles::DatasetProfile;
use miscela_model::{Dataset, DatasetBuilder, GeoPoint, TimeGrid, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// City centre of Santander.
const CENTER_LAT: f64 = 43.4623;
const CENTER_LON: f64 = -3.8099;

/// Generator for the synthetic Santander dataset.
#[derive(Debug, Clone)]
pub struct SantanderGenerator {
    /// Fraction of the paper-scale sensor count and period to generate.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a measurement is missing.
    pub missing_rate: f64,
}

impl Default for SantanderGenerator {
    fn default() -> Self {
        SantanderGenerator {
            scale: 0.05,
            seed: 2016,
            missing_rate: 0.01,
        }
    }
}

impl SantanderGenerator {
    /// A small configuration suitable for unit tests and examples
    /// (a few dozen sensors, a couple of weeks).
    pub fn small() -> Self {
        Self::default()
    }

    /// The paper-scale configuration: 552 sensors over seven months.
    pub fn paper_scale() -> Self {
        SantanderGenerator {
            scale: 1.0,
            seed: 2016,
            missing_rate: 0.01,
        }
    }

    /// Sets the scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of sensor clusters (street corners) for the configured scale.
    fn cluster_count(&self) -> usize {
        // Paper scale: 552 sensors / 5 attributes ≈ 110 clusters.
        scaled(110, self.scale, 3)
    }

    /// Number of grid timestamps for the configured scale.
    fn timestamp_count(&self) -> usize {
        scaled(
            DatasetProfile::santander().timestamps(),
            self.scale,
            24 * 14,
        )
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let profile = DatasetProfile::santander();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = DatasetBuilder::new("santander");
        let grid = TimeGrid::new(
            profile.period.start,
            profile.interval,
            self.timestamp_count(),
        )
        .expect("valid grid");
        builder.set_grid(grid.clone());
        for attr in &profile.attributes {
            builder.add_attribute(attr);
        }

        // City-wide weather backgrounds shared by every cluster: these make
        // distant same-attribute sensors mildly correlated, as in reality.
        let synoptic_temp = random_walk(&mut rng, &grid, 0.0, 0.35, 0.02);
        let synoptic_cloud = random_walk(&mut rng, &grid, 0.0, 0.08, 0.05);

        let clusters = self.cluster_count();
        let mut sensor_serial = 0usize;
        for c in 0..clusters {
            // Cluster location: scattered over ~6 x 6 km around the centre.
            let lat = CENTER_LAT + rng.gen_range(-0.027..0.027);
            let lon = CENTER_LON + rng.gen_range(-0.037..0.037);
            // Cluster-local modifiers.
            let traffic_volume = rng.gen_range(60.0..220.0);
            let temp_offset = rng.gen_range(-1.0..1.0);

            // Clean signals for this cluster.
            let mut temperature = Vec::with_capacity(grid.len());
            let mut light = Vec::with_capacity(grid.len());
            let mut sound = Vec::with_capacity(grid.len());
            let mut traffic = Vec::with_capacity(grid.len());
            let mut humidity = Vec::with_capacity(grid.len());
            for (i, t) in grid.iter().enumerate() {
                let season = seasonal_factor(i, grid.len());
                let temp =
                    diurnal(t, 14.0 + temp_offset + 6.0 * season, 5.0, 15.0) + synoptic_temp[i];
                let lux = (diurnal(t, 400.0, 450.0, 13.0) - 100.0).max(0.0)
                    * (1.0 - 0.5 * synoptic_cloud[i].clamp(-1.0, 1.0).abs());
                let rush = rush_hour_profile(t);
                let cars = traffic_volume * rush * (1.0 + 0.12 * (temp - 14.0) / 10.0);
                let db = 45.0 + 18.0 * rush;
                let hum = (85.0 - 1.8 * (temp - 10.0)).clamp(20.0, 100.0);
                temperature.push(temp);
                light.push(lux);
                sound.push(db);
                traffic.push(cars);
                humidity.push(hum);
            }

            // Which attributes this cluster hosts: every cluster has
            // temperature + traffic (the Figure-1 pattern needs them);
            // the other three appear with some probability so that the
            // per-attribute sensor counts differ as in the real testbed.
            let mut emit = |name: &str,
                            clean: &[f64],
                            noise_std: f64,
                            rng: &mut StdRng,
                            serial: &mut usize|
             -> Option<()> {
                let jitter_lat = rng.gen_range(-0.0008..0.0008);
                let jitter_lon = rng.gen_range(-0.0008..0.0008);
                let idx = builder
                    .add_sensor(
                        format!("{:05}", *serial),
                        name,
                        GeoPoint::new_unchecked(lat + jitter_lat, lon + jitter_lon),
                    )
                    .ok()?;
                *serial += 1;
                let series: TimeSeries = observe(rng, clean, noise_std, self.missing_rate);
                builder.set_series(idx, series).ok()?;
                Some(())
            };

            emit(
                "temperature",
                &temperature,
                0.12,
                &mut rng,
                &mut sensor_serial,
            );
            emit("traffic", &traffic, 4.0, &mut rng, &mut sensor_serial);
            if rng.gen::<f64>() < 0.85 {
                emit("light", &light, 12.0, &mut rng, &mut sensor_serial);
            }
            if rng.gen::<f64>() < 0.6 {
                emit("sound", &sound, 1.5, &mut rng, &mut sensor_serial);
            }
            if rng.gen::<f64>() < 0.55 {
                emit("humidity", &humidity, 1.2, &mut rng, &mut sensor_serial);
            }
            let _ = c;
        }

        builder.build().expect("generated dataset is valid")
    }
}

/// Slow seasonal warming over the covered period (March to September).
fn seasonal_factor(i: usize, len: usize) -> f64 {
    if len <= 1 {
        return 0.0;
    }
    let frac = i as f64 / (len - 1) as f64;
    // Rises from 0 in March to 1 in July/August, dips slightly by the end.
    (frac * std::f64::consts::PI * 0.85).sin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_model::SensorIndex;

    #[test]
    fn generates_requested_shape() {
        let ds = SantanderGenerator::small().generate();
        assert_eq!(ds.name(), "santander");
        assert!(ds.sensor_count() >= 10);
        assert!(ds.timestamp_count() >= 24 * 14);
        assert_eq!(ds.attributes().len(), 5);
        let stats = ds.stats();
        assert!(stats.sensors_per_attribute["temperature"] >= 3);
        assert!(stats.sensors_per_attribute["traffic"] >= 3);
        assert!(stats.mean_coverage > 0.95);
        // All sensors are within the city bounding box.
        let bb = ds.bounding_box().unwrap();
        assert!(bb.min_lat > 43.3 && bb.max_lat < 43.6);
        assert!(bb.min_lon > -3.95 && bb.max_lon < -3.65);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SantanderGenerator::small().generate();
        let b = SantanderGenerator::small().generate();
        assert_eq!(a.sensor_count(), b.sensor_count());
        let ia = SensorIndex(0);
        for i in 0..50 {
            assert_eq!(a.series(ia).get(i), b.series(ia).get(i));
        }
        let c = SantanderGenerator::small().with_seed(999).generate();
        // Different seed gives different data (compare a few values).
        let mut differs = false;
        for i in 0..50 {
            if a.series(ia).get(i) != c.series(ia).get(i) {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn temperature_and_traffic_are_correlated_within_cluster() {
        let ds = SantanderGenerator::small().generate();
        let temp = ds.attributes().id_of("temperature").unwrap();
        let traffic = ds.attributes().id_of("traffic").unwrap();
        // Find a temperature sensor and the traffic sensor closest to it.
        let t_sensor = ds.sensors_with_attribute(temp).next().unwrap();
        let closest_traffic = ds
            .sensors_with_attribute(traffic)
            .min_by(|a, b| {
                let da = a.sensor.location.distance_km(&t_sensor.sensor.location);
                let db = b.sensor.location.distance_km(&t_sensor.sensor.location);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        assert!(
            closest_traffic
                .sensor
                .location
                .distance_km(&t_sensor.sensor.location)
                < 0.5
        );
        let score = miscela_core::correlation::co_evolution_score(
            t_sensor.series,
            closest_traffic.series,
            0.3,
        );
        assert!(score > 0.3, "co-evolution score was {score}");
    }

    #[test]
    fn paper_scale_counts_match_profile_when_not_scaled_down() {
        // Do not generate the full dataset here (too slow for a unit test);
        // just check the sizing arithmetic.
        let g = SantanderGenerator::paper_scale();
        assert_eq!(g.cluster_count(), 110);
        assert_eq!(
            g.timestamp_count(),
            DatasetProfile::santander().timestamps()
        );
    }

    #[test]
    fn scale_controls_size() {
        let small = SantanderGenerator::small().with_scale(0.03).generate();
        let larger = SantanderGenerator::small().with_scale(0.08).generate();
        assert!(larger.sensor_count() > small.sensor_count());
        assert!(larger.timestamp_count() > small.timestamp_count());
    }
}
