//! Descriptions of the paper's four datasets (Section 4).
//!
//! A [`DatasetProfile`] records the published statistics of one dataset —
//! sensor count, record count, attribute inventory, covered period and
//! sampling interval — and is used (a) by the generators to size their
//! output and (b) by the `dataset_stats` experiment (E5) to print the
//! paper's dataset table next to the generated one.

use miscela_model::{Duration, TimeRange, Timestamp};

/// The published statistics of one demonstration dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of sensors.
    pub sensors: usize,
    /// Number of records reported in the paper.
    pub records: usize,
    /// Attribute names.
    pub attributes: Vec<&'static str>,
    /// Covered period.
    pub period: TimeRange,
    /// Sampling interval used by the generator for this dataset.
    pub interval: Duration,
    /// Where the sensors are located (for the experiment printouts).
    pub region: &'static str,
}

impl DatasetProfile {
    /// Santander, Spain: 552 sensors, 2016-03-01 to 2016-09-30,
    /// 2,329,936 records; temperature, light, sound, traffic volume,
    /// humidity.
    pub fn santander() -> Self {
        DatasetProfile {
            name: "Santander",
            sensors: 552,
            records: 2_329_936,
            attributes: vec!["temperature", "light", "sound", "traffic", "humidity"],
            period: range("2016-03-01 00:00:00", "2016-10-01 00:00:00"),
            interval: Duration::hours(1),
            region: "Santander, Spain (city scale)",
        }
    }

    /// China6: 9,438 sensors, 2016-09-01 to 2018-10-31, 6,889,740 records;
    /// PM2.5, SO2, NO2, CO, O3.
    pub fn china6() -> Self {
        DatasetProfile {
            name: "China6",
            sensors: 9_438,
            records: 6_889_740,
            attributes: vec!["PM2.5", "SO2", "NO2", "CO", "O3"],
            period: range("2016-09-01 00:00:00", "2018-11-01 00:00:00"),
            interval: Duration::hours(1),
            region: "China (country scale)",
        }
    }

    /// China13: 4,810 sensors, same period as China6, 3,511,300 records;
    /// the China6 pollutants plus weather attributes.
    pub fn china13() -> Self {
        DatasetProfile {
            name: "China13",
            sensors: 4_810,
            records: 3_511_300,
            attributes: vec![
                "PM2.5",
                "SO2",
                "NO2",
                "CO",
                "O3",
                "temperature",
                "humidity",
                "air pressure",
                "daylight",
                "rainfall percentage",
                "rain volume",
                "wind speed",
            ],
            period: range("2016-09-01 00:00:00", "2018-11-01 00:00:00"),
            interval: Duration::hours(1),
            region: "China (country scale)",
        }
    }

    /// COVID-19: 12 sensors in Shanghai and Guangzhou, 2020-01-01 to
    /// 2020-06-30, 52,261 records; PM2.5, PM10, SO2, NO2, CO, O3.
    pub fn covid19() -> Self {
        DatasetProfile {
            name: "COVID-19",
            sensors: 12,
            records: 52_261,
            attributes: vec!["PM2.5", "PM10", "SO2", "NO2", "CO", "O3"],
            period: range("2020-01-01 00:00:00", "2020-07-01 00:00:00"),
            interval: Duration::hours(1),
            region: "Shanghai and Guangzhou, China",
        }
    }

    /// All four profiles in the order the paper lists them.
    pub fn all() -> Vec<DatasetProfile> {
        vec![
            Self::santander(),
            Self::china6(),
            Self::china13(),
            Self::covid19(),
        ]
    }

    /// Number of grid timestamps covered by the period at this profile's
    /// interval.
    pub fn timestamps(&self) -> usize {
        (self.period.duration().as_secs() / self.interval.as_secs()) as usize
    }

    /// The implied records per sensor (timestamps), for comparison with the
    /// published record count.
    pub fn records_per_sensor(&self) -> usize {
        self.records.checked_div(self.sensors).unwrap_or(0)
    }

    /// One row of the Section-4 dataset table.
    pub fn table_row(&self) -> String {
        format!(
            "{} | {} sensors | {} records | {} .. {} | {}",
            self.name,
            self.sensors,
            self.records,
            self.period.start,
            self.period.end,
            self.attributes.join(", ")
        )
    }
}

fn range(start: &str, end: &str) -> TimeRange {
    TimeRange::new(
        Timestamp::parse(start).expect("valid start"),
        Timestamp::parse(end).expect("valid end"),
    )
    .expect("valid range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_counts() {
        let s = DatasetProfile::santander();
        assert_eq!(s.sensors, 552);
        assert_eq!(s.records, 2_329_936);
        assert_eq!(s.attributes.len(), 5);

        let c6 = DatasetProfile::china6();
        assert_eq!(c6.sensors, 9_438);
        assert_eq!(c6.records, 6_889_740);
        assert_eq!(c6.attributes.len(), 5);

        let c13 = DatasetProfile::china13();
        assert_eq!(c13.sensors, 4_810);
        assert_eq!(c13.records, 3_511_300);
        assert!(c13.attributes.len() > c6.attributes.len());

        let cv = DatasetProfile::covid19();
        assert_eq!(cv.sensors, 12);
        assert_eq!(cv.records, 52_261);
        assert_eq!(cv.attributes.len(), 6);

        assert_eq!(DatasetProfile::all().len(), 4);
    }

    #[test]
    fn periods_are_plausible() {
        // Santander: 7 months of hourly data is ~5,136 timestamps.
        let s = DatasetProfile::santander();
        assert!((5_000..5_500).contains(&s.timestamps()));
        // Records per sensor should be within the covered period.
        assert!(s.records_per_sensor() <= s.timestamps());

        // COVID: 182 days of hourly data.
        let cv = DatasetProfile::covid19();
        assert!((4_300..4_400).contains(&cv.timestamps()));
        // 12 sensors * ~4368 timestamps is close to the published 52,261.
        let implied = cv.sensors * cv.timestamps();
        let diff = implied.abs_diff(cv.records);
        assert!(
            diff < 1_000,
            "implied {implied} vs published {}",
            cv.records
        );
    }

    #[test]
    fn table_rows_mention_key_fields() {
        for p in DatasetProfile::all() {
            let row = p.table_row();
            assert!(row.contains(p.name));
            assert!(row.contains(&p.sensors.to_string()));
        }
    }
}
