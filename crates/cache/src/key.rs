//! Cache keys: dataset name + revision + trim offset + parameter signature.

use miscela_core::MiningParams;
use std::fmt;

/// Identifies one cached mining result: the dataset it was mined from, the
/// dataset's revision and sliding-window trim offset at mining time, and
/// the exact parameter setting used.
///
/// The revision is the versioned-invalidation mechanism of the append-aware
/// pipeline: every append bumps the dataset's revision counter, so cached
/// results for older content become unreachable by key instead of relying
/// solely on explicit invalidation. The trim offset (total points the
/// retention window has dropped from the front) makes the key trim-aware as
/// defense in depth: even a caller that forgets to bump revisions on trim
/// can never serve a pre-trim result for a post-trim window.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset name (the store key under which the dataset was uploaded).
    pub dataset: String,
    /// Dataset revision at mining time (0 when the caller does not track
    /// revisions).
    pub revision: u64,
    /// Total grid points the dataset's retention window had trimmed from
    /// the front at mining time (0 for unbounded datasets).
    pub trimmed: u64,
    /// Canonical parameter signature ([`MiningParams::signature`]).
    pub signature: String,
}

impl CacheKey {
    /// Builds the key for an unversioned dataset name and parameter setting
    /// (revision 0, no trim).
    pub fn new(dataset: impl Into<String>, params: &MiningParams) -> Self {
        Self::for_state(dataset, 0, 0, params)
    }

    /// Builds the key for a specific dataset revision (no trim).
    pub fn for_revision(dataset: impl Into<String>, revision: u64, params: &MiningParams) -> Self {
        Self::for_state(dataset, revision, 0, params)
    }

    /// Builds the key for a specific dataset revision and trim offset.
    pub fn for_state(
        dataset: impl Into<String>,
        revision: u64,
        trimmed: u64,
        params: &MiningParams,
    ) -> Self {
        CacheKey {
            dataset: dataset.into(),
            revision,
            trimmed,
            signature: params.signature(),
        }
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@r{}~{}::{}",
            self.dataset, self.revision, self.trimmed, self.signature
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_params_equal_keys() {
        let a = CacheKey::new("santander", &MiningParams::default());
        let b = CacheKey::new("santander", &MiningParams::default());
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.revision, 0);
        assert_eq!(a.trimmed, 0);
    }

    #[test]
    fn different_params_dataset_revision_or_trim_differ() {
        let base = CacheKey::new("santander", &MiningParams::default());
        let other_params = CacheKey::new("santander", &MiningParams::default().with_psi(99));
        let other_dataset = CacheKey::new("china6", &MiningParams::default());
        let other_revision = CacheKey::for_revision("santander", 3, &MiningParams::default());
        let other_trim = CacheKey::for_state("santander", 0, 256, &MiningParams::default());
        assert_ne!(base, other_params);
        assert_ne!(base, other_dataset);
        assert_ne!(base, other_revision);
        assert_ne!(base, other_trim);
        assert!(other_revision.to_string().contains("@r3"));
        assert!(other_trim.to_string().contains("~256"));
    }
}
