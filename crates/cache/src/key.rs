//! Cache keys: dataset name + parameter signature.

use miscela_core::MiningParams;
use std::fmt;

/// Identifies one cached mining result: the dataset it was mined from and
/// the exact parameter setting used.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Dataset name (the store key under which the dataset was uploaded).
    pub dataset: String,
    /// Canonical parameter signature ([`MiningParams::signature`]).
    pub signature: String,
}

impl CacheKey {
    /// Builds the key for a dataset name and parameter setting.
    pub fn new(dataset: impl Into<String>, params: &MiningParams) -> Self {
        CacheKey {
            dataset: dataset.into(),
            signature: params.signature(),
        }
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.dataset, self.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_params_equal_keys() {
        let a = CacheKey::new("santander", &MiningParams::default());
        let b = CacheKey::new("santander", &MiningParams::default());
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn different_params_or_dataset_differ() {
        let base = CacheKey::new("santander", &MiningParams::default());
        let other_params = CacheKey::new("santander", &MiningParams::default().with_psi(99));
        let other_dataset = CacheKey::new("china6", &MiningParams::default());
        assert_ne!(base, other_params);
        assert_ne!(base, other_dataset);
    }
}
