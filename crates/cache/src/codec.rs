//! JSON encoding/decoding of CAP sets.
//!
//! MISCELA "returns a set of sets of sensors as CAPs [...] and its format is
//! JSON" (Section 3.4). The persistent cache and the API server both ship
//! CAP sets as JSON, using the encoding defined here: an array of CAP
//! objects, each with its member sensors (index + direction), attribute ids,
//! support and co-evolving timestamps.

use miscela_core::{Cap, CapMember, CapSet, Direction};
use miscela_model::{AttributeId, SensorIndex};
use miscela_store::Json;
use std::collections::BTreeSet;

/// Encodes one CAP as a JSON object.
pub fn cap_to_json(cap: &Cap) -> Json {
    let members: Vec<Json> = cap
        .members
        .iter()
        .map(|m| {
            Json::from_pairs([
                ("sensor", Json::from(m.sensor.0 as i64)),
                ("direction", Json::from(m.direction.symbol())),
            ])
        })
        .collect();
    Json::from_pairs([
        ("members", Json::Array(members)),
        (
            "attributes",
            Json::Array(
                cap.attributes
                    .iter()
                    .map(|a| Json::from(a.0 as i64))
                    .collect(),
            ),
        ),
        ("support", Json::from(cap.support)),
        (
            "timestamps",
            Json::Array(
                cap.timestamps
                    .iter()
                    .map(|&t| Json::from(t as i64))
                    .collect(),
            ),
        ),
    ])
}

/// Encodes a whole CAP set as a JSON array.
pub fn capset_to_json(caps: &CapSet) -> Json {
    Json::Array(caps.caps().iter().map(cap_to_json).collect())
}

/// Decodes one CAP from its JSON object. Returns `None` on malformed input.
pub fn cap_from_json(json: &Json) -> Option<Cap> {
    let members: Vec<CapMember> = json
        .get("members")?
        .as_array()?
        .iter()
        .map(|m| {
            let sensor = SensorIndex(m.get("sensor")?.as_i64()? as u32);
            let direction = match m.get("direction")?.as_str()? {
                "+" => Direction::Up,
                "-" => Direction::Down,
                _ => return None,
            };
            Some(CapMember { sensor, direction })
        })
        .collect::<Option<Vec<_>>>()?;
    let attributes: BTreeSet<AttributeId> = json
        .get("attributes")?
        .as_array()?
        .iter()
        .map(|a| a.as_i64().map(|v| AttributeId(v as u16)))
        .collect::<Option<BTreeSet<_>>>()?;
    let timestamps: Vec<u32> = json
        .get("timestamps")?
        .as_array()?
        .iter()
        .map(|t| t.as_i64().map(|v| v as u32))
        .collect::<Option<Vec<_>>>()?;
    Some(Cap::new(members, attributes, timestamps))
}

/// Decodes a CAP set from its JSON array. Returns `None` on malformed input.
pub fn capset_from_json(json: &Json) -> Option<CapSet> {
    let caps = json
        .as_array()?
        .iter()
        .map(cap_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some(CapSet::from_caps(caps))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_capset() -> CapSet {
        let cap1 = Cap::new(
            vec![
                CapMember {
                    sensor: SensorIndex(3),
                    direction: Direction::Up,
                },
                CapMember {
                    sensor: SensorIndex(7),
                    direction: Direction::Down,
                },
            ],
            [AttributeId(0), AttributeId(2)].into_iter().collect(),
            vec![4, 9, 20],
        );
        let cap2 = Cap::new(
            vec![
                CapMember {
                    sensor: SensorIndex(1),
                    direction: Direction::Up,
                },
                CapMember {
                    sensor: SensorIndex(2),
                    direction: Direction::Up,
                },
            ],
            [AttributeId(0), AttributeId(1)].into_iter().collect(),
            vec![1, 2, 3, 4, 5],
        );
        CapSet::from_caps(vec![cap1, cap2])
    }

    #[test]
    fn round_trip() {
        let caps = sample_capset();
        let json = capset_to_json(&caps);
        let text = json.to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        let back = capset_from_json(&parsed).unwrap();
        assert_eq!(back, caps);
    }

    #[test]
    fn json_structure_is_as_documented() {
        let caps = sample_capset();
        let json = capset_to_json(&caps);
        let arr = json.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        let first = &arr[0];
        assert!(first.get("members").is_some());
        assert!(first.get("support").is_some());
        assert_eq!(
            first.get("support").unwrap().as_i64().unwrap() as usize,
            caps.caps()[0].support
        );
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(capset_from_json(&Json::from("not an array")).is_none());
        let bad_member = Json::parse(r#"[{"members":[{"sensor":1,"direction":"x"}],"attributes":[0],"support":1,"timestamps":[1]}]"#).unwrap();
        assert!(capset_from_json(&bad_member).is_none());
        let missing_field =
            Json::parse(r#"[{"attributes":[0],"support":1,"timestamps":[1]}]"#).unwrap();
        assert!(capset_from_json(&missing_field).is_none());
    }
}
