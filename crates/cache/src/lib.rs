//! # miscela-cache
//!
//! The caching mechanism of Miscela-V (Section 3.3 of the paper):
//!
//! > "Miscela may take a long time for finding CAPs depending on data and
//! > user-specified parameters. For efficient interactive analysis, Miscela-V
//! > caches CAP mining results and reuses the cached results if users specify
//! > the same parameter setting. [...] We store the name of the dataset,
//! > parameters, and CAPs (i.e., a set of sets of sensors) to the database.
//! > Before computing CAPs by Miscela, our system searches for CAPs with the
//! > same parameters and the name of the dataset from the database."
//!
//! [`CacheKey`] is exactly (dataset name, parameter signature);
//! [`ResultCache`] is the in-memory cache with hit/miss statistics;
//! [`PersistentCache`] stores entries as JSON documents in a
//! [`miscela_store::Database`] collection (the MongoDB substitute), so
//! cached results survive across sessions and can be inspected with the
//! store's query interface.
//!
//! [`EvolvingSetsCache`] is the front-end companion: a per-series cache of
//! extraction results keyed by series content fingerprint and the
//! parameters steps (1)+(2) depend on, so re-mining with tweaked
//! search-side parameters (ψ, η, μ) skips segmentation and extraction
//! entirely. Entries retain the full extraction state (evolving sets plus
//! segmentation), and appended series reuse their cached *prefix* through
//! rolling-fingerprint keys instead of missing — the cache side of the
//! streaming append pipeline. [`CacheKey`] carries the dataset revision
//! and sliding-window trim offset, so results mined from superseded or
//! trimmed content become unreachable by key; the revision GC
//! ([`PersistentCache::evict_superseded`],
//! [`EvolvingSetsCache::collect_superseded`]) then reclaims those dead
//! entries instead of letting them leak until capacity pressure.
//!
//! # Example
//!
//! ```
//! use miscela_cache::{CacheKey, ResultCache};
//! use miscela_core::{CapSet, MiningParams};
//!
//! let cache = ResultCache::new();
//! let params = MiningParams::new().with_psi(20);
//! let key = CacheKey::new("santander", &params);
//!
//! assert!(cache.get(&key).is_none()); // miss: would trigger mining
//! cache.put(key.clone(), CapSet::new());
//! assert!(cache.get(&key).is_some()); // hit: mining skipped
//!
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod extraction;
pub mod key;
pub mod memory;
pub mod persistent;

pub use extraction::{EvolvingSetsCache, ExtractionCacheStats, DEFAULT_KEEP_GENERATIONS};
pub use key::CacheKey;
pub use memory::{CacheStats, ResultCache};
pub use persistent::PersistentCache;
