//! Store-backed cache: CAP results persisted as documents.
//!
//! This is the faithful counterpart of the paper's mechanism: results live
//! in a database collection (`cap_results`) keyed by dataset name and
//! parameter signature, so that a freshly started server can still answer a
//! repeated request without re-mining, and the documents can be inspected
//! through the store's query API.

use crate::codec::{capset_from_json, capset_to_json};
use crate::key::CacheKey;
use crate::memory::{CacheStats, ResultCache};
use miscela_core::CapSet;
use miscela_store::{Database, Filter, Json};
use std::sync::Arc;

/// Name of the collection holding cached CAP results.
pub const RESULTS_COLLECTION: &str = "cap_results";

/// A two-level cache: an in-memory [`ResultCache`] in front of a
/// [`Database`] collection.
#[derive(Debug)]
pub struct PersistentCache {
    db: Arc<Database>,
    memory: ResultCache,
}

impl PersistentCache {
    /// Creates the cache over a shared database, declaring the indexes the
    /// lookups need.
    pub fn new(db: Arc<Database>) -> Self {
        db.create_collection(RESULTS_COLLECTION);
        db.create_index(RESULTS_COLLECTION, "dataset");
        db.create_index(RESULTS_COLLECTION, "signature");
        PersistentCache {
            db,
            memory: ResultCache::new(),
        }
    }

    /// Looks up a cached result, first in memory, then in the store.
    pub fn get(&self, key: &CacheKey) -> Option<CapSet> {
        if let Some(hit) = self.memory.get(key) {
            return Some(hit);
        }
        let doc = self.db.find_one(RESULTS_COLLECTION, &key_filter(key))?;
        let caps = capset_from_json(doc.get("caps")?)?;
        // Promote to the memory tier for subsequent lookups.
        self.memory.put(key.clone(), caps.clone());
        Some(caps)
    }

    /// Stores a result under a key (replacing any previous entry for the
    /// same key).
    pub fn put(&self, key: &CacheKey, caps: &CapSet) {
        self.db.delete_where(RESULTS_COLLECTION, &key_filter(key));
        let mut doc = Json::object();
        doc.set("dataset", Json::from(key.dataset.as_str()));
        doc.set("revision", Json::from(key.revision as i64));
        doc.set("trimmed", Json::from(key.trimmed as i64));
        doc.set("signature", Json::from(key.signature.as_str()));
        doc.set("cap_count", Json::from(caps.len()));
        doc.set("caps", capset_to_json(caps));
        self.db.insert(RESULTS_COLLECTION, doc);
        self.memory.put(key.clone(), caps.clone());
    }

    /// Removes every cached result for a dataset. Returns how many store
    /// documents were removed.
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        self.memory.invalidate_dataset(dataset);
        self.db
            .delete_where(RESULTS_COLLECTION, &Filter::eq("dataset", dataset))
    }

    /// Garbage-collects every result of `dataset` mined at a revision older
    /// than `current_revision`, in both tiers. Without this, the
    /// revision-partitioned store grows one dead generation per append —
    /// the stale-revision leak. Returns the total number of entries
    /// collected (memory + store).
    pub fn evict_superseded(&self, dataset: &str, current_revision: u64) -> usize {
        let from_memory = self.memory.evict_superseded(dataset, current_revision);
        // Collect documents below the live revision, plus legacy documents
        // written before the `revision`/`trimmed` fields existed: those are
        // unreachable by `key_filter` (equality on a missing field never
        // matches) but `Filter::Lt` would never match them either, so
        // without the explicit `Exists` arms they would linger forever.
        let from_store = self.db.delete_where(
            RESULTS_COLLECTION,
            &Filter::And(vec![
                Filter::eq("dataset", dataset),
                Filter::Or(vec![
                    Filter::Lt("revision".to_string(), current_revision as f64),
                    Filter::Not(Box::new(Filter::Exists("revision".to_string()))),
                    Filter::Not(Box::new(Filter::Exists("trimmed".to_string()))),
                ]),
            ]),
        );
        self.memory.record_evictions(from_store);
        from_memory + from_store
    }

    /// Number of results stored in the database tier.
    pub fn stored_results(&self) -> usize {
        self.db.count(RESULTS_COLLECTION, &Filter::All)
    }

    /// In-memory tier statistics.
    pub fn stats(&self) -> CacheStats {
        self.memory.stats()
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }
}

/// The store filter selecting exactly one key's document. Documents written
/// before revisions (or the trim offset) existed lack those fields and are
/// simply never matched again; [`PersistentCache::evict_superseded`]
/// explicitly collects such field-less legacy documents (equality and `Lt`
/// both skip missing fields, so the GC matches on non-existence instead).
fn key_filter(key: &CacheKey) -> Filter {
    Filter::and([
        Filter::eq("dataset", key.dataset.as_str()),
        Filter::eq("revision", Json::from(key.revision as i64)),
        Filter::eq("trimmed", Json::from(key.trimmed as i64)),
        Filter::eq("signature", key.signature.as_str()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::{Cap, CapMember, Direction, MiningParams};
    use miscela_model::{AttributeId, SensorIndex};

    fn sample_caps() -> CapSet {
        CapSet::from_caps(vec![Cap::new(
            vec![
                CapMember {
                    sensor: SensorIndex(0),
                    direction: Direction::Up,
                },
                CapMember {
                    sensor: SensorIndex(1),
                    direction: Direction::Up,
                },
            ],
            [AttributeId(0), AttributeId(1)].into_iter().collect(),
            vec![3, 5, 8],
        )])
    }

    #[test]
    fn put_get_round_trip() {
        let cache = PersistentCache::new(Arc::new(Database::new()));
        let key = CacheKey::new("santander", &MiningParams::default());
        assert!(cache.get(&key).is_none());
        cache.put(&key, &sample_caps());
        assert_eq!(cache.get(&key).unwrap(), sample_caps());
        assert_eq!(cache.stored_results(), 1);
        // Replacing the same key does not duplicate documents.
        cache.put(&key, &CapSet::new());
        assert_eq!(cache.stored_results(), 1);
        assert!(cache.get(&key).unwrap().is_empty());
    }

    #[test]
    fn survives_memory_loss() {
        // Simulates a server restart: a new PersistentCache over the same
        // database still answers from the store tier.
        let db = Arc::new(Database::new());
        let key = CacheKey::new("santander", &MiningParams::default());
        {
            let cache = PersistentCache::new(Arc::clone(&db));
            cache.put(&key, &sample_caps());
        }
        let fresh = PersistentCache::new(Arc::clone(&db));
        let got = fresh.get(&key).expect("store tier should answer");
        assert_eq!(got, sample_caps());
        // The promotion into memory counts one miss then later hits.
        assert!(fresh.get(&key).is_some());
        assert!(fresh.stats().hits >= 1);
    }

    #[test]
    fn distinct_parameters_are_distinct_entries() {
        let cache = PersistentCache::new(Arc::new(Database::new()));
        let k1 = CacheKey::new("santander", &MiningParams::default().with_psi(5));
        let k2 = CacheKey::new("santander", &MiningParams::default().with_psi(10));
        cache.put(&k1, &sample_caps());
        cache.put(&k2, &CapSet::new());
        assert_eq!(cache.stored_results(), 2);
        assert_eq!(cache.get(&k1).unwrap().len(), 1);
        assert!(cache.get(&k2).unwrap().is_empty());
    }

    #[test]
    fn revisions_partition_the_key_space() {
        let cache = PersistentCache::new(Arc::new(Database::new()));
        let params = MiningParams::default();
        let r1 = CacheKey::for_revision("santander", 1, &params);
        let r2 = CacheKey::for_revision("santander", 2, &params);
        cache.put(&r1, &sample_caps());
        // The appended dataset's revision misses even though name and
        // parameters match — versioned invalidation without any explicit
        // invalidate call.
        assert!(cache.get(&r2).is_none());
        cache.put(&r2, &CapSet::new());
        assert_eq!(cache.get(&r1).unwrap(), sample_caps());
        assert!(cache.get(&r2).unwrap().is_empty());
        assert_eq!(cache.stored_results(), 2);
        // Dataset-level invalidation still clears every revision.
        assert_eq!(cache.invalidate_dataset("santander"), 2);
    }

    #[test]
    fn evict_superseded_collects_only_dead_revisions() {
        let cache = PersistentCache::new(Arc::new(Database::new()));
        let params = MiningParams::default();
        for r in 1..=3u64 {
            cache.put(
                &CacheKey::for_revision("santander", r, &params),
                &sample_caps(),
            );
        }
        cache.put(
            &CacheKey::for_revision("china6", 1, &params),
            &sample_caps(),
        );
        // Collect everything of santander below revision 3: two memory
        // entries and two store documents.
        assert_eq!(cache.evict_superseded("santander", 3), 4);
        assert!(cache
            .get(&CacheKey::for_revision("santander", 2, &params))
            .is_none());
        assert!(cache
            .get(&CacheKey::for_revision("santander", 3, &params))
            .is_some());
        // Other datasets are untouched.
        assert!(cache
            .get(&CacheKey::for_revision("china6", 1, &params))
            .is_some());
        assert_eq!(cache.stored_results(), 2);
        assert_eq!(cache.stats().evicted, 4);
        // Nothing further to collect.
        assert_eq!(cache.evict_superseded("santander", 3), 0);
        // Legacy documents written before the revision/trimmed fields
        // existed are unreachable by key; the GC must still collect them.
        let mut legacy = Json::object();
        legacy.set("dataset", Json::from("santander"));
        legacy.set("signature", Json::from("old"));
        cache.database().insert(RESULTS_COLLECTION, legacy);
        assert_eq!(cache.evict_superseded("santander", 3), 1);
        // The live santander revision and the china6 result both remain.
        assert_eq!(cache.stored_results(), 2);
    }

    #[test]
    fn evict_superseded_handles_multi_revision_jumps_after_replay() {
        // Crash recovery replays several committed append sessions in one
        // startup, so the live revision jumps by more than one step and the
        // GC runs against a cache whose memory tier is empty (the process
        // that filled it is gone). Every store document below the replayed
        // revision must go in a single sweep.
        let db = Arc::new(Database::new());
        let params = MiningParams::default();
        {
            let cache = PersistentCache::new(Arc::clone(&db));
            for r in 1..=4u64 {
                cache.put(
                    &CacheKey::for_revision("santander", r, &params),
                    &sample_caps(),
                );
            }
        }
        let fresh = PersistentCache::new(Arc::clone(&db));
        // Replay bumped 4 -> 7: revisions 1..=4 are all superseded at once.
        assert_eq!(fresh.evict_superseded("santander", 7), 4);
        assert_eq!(fresh.stored_results(), 0);
        for r in 1..=4u64 {
            assert!(fresh
                .get(&CacheKey::for_revision("santander", r, &params))
                .is_none());
        }
        // A result mined at the replayed revision is reachable again.
        let live = CacheKey::for_revision("santander", 7, &params);
        fresh.put(&live, &sample_caps());
        assert_eq!(fresh.evict_superseded("santander", 7), 0);
        assert_eq!(fresh.get(&live).unwrap(), sample_caps());
    }

    #[test]
    fn trim_offsets_partition_the_key_space() {
        let cache = PersistentCache::new(Arc::new(Database::new()));
        let params = MiningParams::default();
        let untrimmed = CacheKey::for_state("santander", 1, 0, &params);
        let trimmed = CacheKey::for_state("santander", 1, 256, &params);
        cache.put(&untrimmed, &sample_caps());
        // A post-trim window misses even at the same name/revision/params.
        assert!(cache.get(&trimmed).is_none());
        cache.put(&trimmed, &CapSet::new());
        assert_eq!(cache.get(&untrimmed).unwrap(), sample_caps());
        assert!(cache.get(&trimmed).unwrap().is_empty());
        assert_eq!(cache.stored_results(), 2);
    }

    #[test]
    fn invalidate_dataset_clears_both_tiers() {
        let cache = PersistentCache::new(Arc::new(Database::new()));
        let k1 = CacheKey::new("santander", &MiningParams::default());
        let k2 = CacheKey::new("china6", &MiningParams::default());
        cache.put(&k1, &sample_caps());
        cache.put(&k2, &sample_caps());
        assert_eq!(cache.invalidate_dataset("santander"), 1);
        assert!(cache.get(&k1).is_none());
        assert!(cache.get(&k2).is_some());
        assert_eq!(cache.stored_results(), 1);
    }
}
