//! Per-series extraction cache: the front-end companion of the CAP result
//! cache.
//!
//! The result cache (Section 3.3) only helps when the *entire* parameter
//! setting repeats. The interactive exploration loop, however, mostly
//! re-mines with tweaked support/distance parameters (ψ, η, μ) — which do
//! not affect steps (1)+(2) at all. [`EvolvingSetsCache`] memoizes the
//! per-series [`ExtractionState`] keyed by
//! [`ExtractionKey`] (series content fingerprint + ε + segmentation
//! parameters), so those re-mining calls skip segmentation and extraction
//! entirely and pay only for the search.
//!
//! Since the pipeline became append-aware, the cache also serves the
//! *streaming* loop: entries retain the full [`ExtractionState`] (evolving
//! sets plus segmentation), and the miner probes them with
//! prefix-fingerprint keys of appended series — a hit seeds
//! `miscela_core::evolving::extract_resume`, which re-extracts only the
//! appended tail. [`ExtractionCacheStats::prefix_hits`] counts those
//! resumptions.

use miscela_core::evolving::{EvolvingCache, EvolvingSets, ExtractionKey, ExtractionState};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default capacity: enough for every sensor of several city-scale datasets
/// at a handful of ε/segmentation settings.
pub const DEFAULT_EXTRACTION_CAPACITY: usize = 16_384;

/// How many dataset *generations* (revision bumps — appends, trims,
/// re-registrations) an entry may go untouched before
/// [`EvolvingSetsCache::collect_superseded`] considers it dead.
///
/// Entries are content-keyed, so the cache cannot attribute them to a
/// dataset directly; instead every hit re-stamps the entry with the
/// current generation, and states that no mining pass has touched for this
/// many revision bumps — superseded pre-append prefixes, pre-trim windows
/// whose indices slid out from under them — are garbage-collected instead
/// of lingering until capacity eviction. Mirrors
/// `miscela_model::MAX_APPEND_BASES`: a prefix state older than the bases
/// any dataset still remembers can never seed a resume again.
pub const DEFAULT_KEEP_GENERATIONS: u64 = 8;

/// Counters of the per-series extraction cache.
///
/// Replaces the old unnamed `(hits, misses, entries)` tuple: callers had to
/// guess the field order, and the append-aware cache needed two more
/// counters anyway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionCacheStats {
    /// Full-content lookups answered from the cache (steps (1)+(2) skipped
    /// entirely).
    pub hits: usize,
    /// Full-content lookups that required extraction.
    pub misses: usize,
    /// Prefix-state lookups answered from the cache (extraction *resumed*
    /// over the appended tail only).
    pub prefix_hits: usize,
    /// Prefix-state lookups that found no reusable prefix.
    pub prefix_misses: usize,
    /// Number of series entries currently stored.
    pub entries: usize,
    /// Entries garbage-collected because they went untouched across
    /// [`DEFAULT_KEEP_GENERATIONS`] dataset revisions — the dead-revision
    /// states of superseded or out-of-window content (cumulative).
    pub evicted: usize,
}

impl ExtractionCacheStats {
    /// Fraction of full-content lookups served from the cache, in `[0, 1]`
    /// (zero when there were no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, capacity-bounded cache from [`ExtractionKey`] to
/// [`ExtractionState`], evicting the least recently inserted entry.
///
/// Keys are content fingerprints, so no dataset-level invalidation is
/// needed: re-uploading changed data simply misses (and the stale entries
/// age out through the capacity bound). Appended data *reuses* its prefix
/// entry through the prefix-fingerprint scheme instead of missing.
#[derive(Debug)]
pub struct EvolvingSetsCache {
    inner: Mutex<Inner>,
}

// Entries are `Arc`ed so the critical section of a hit is one reference
// bump: the deep bitset clone the `EvolvingCache` contract requires happens
// outside the lock, keeping the parallel warm-extraction path from
// serializing on the mutex. Each entry carries the generation stamp of its
// last touch for the revision GC.
#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<ExtractionKey, (Arc<ExtractionState>, u64)>,
    insertion_order: VecDeque<ExtractionKey>,
    capacity: usize,
    generation: u64,
    stats: ExtractionCacheStats,
}

impl EvolvingSetsCache {
    /// Creates a cache with [`DEFAULT_EXTRACTION_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EXTRACTION_CAPACITY)
    }

    /// Creates a cache that keeps at most `capacity` series entries.
    pub fn with_capacity(capacity: usize) -> Self {
        EvolvingSetsCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                ..Inner::default()
            }),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ExtractionCacheStats {
        let inner = self.inner.lock();
        ExtractionCacheStats {
            entries: inner.entries.len(),
            ..inner.stats
        }
    }

    /// Removes every entry (statistics are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.insertion_order.clear();
    }

    /// Advances the cache's generation counter. The server calls this once
    /// per dataset revision bump (append, trim, re-registration); entries
    /// untouched for [`DEFAULT_KEEP_GENERATIONS`] generations become
    /// eligible for [`EvolvingSetsCache::collect_superseded`]. Returns the
    /// new generation.
    pub fn bump_generation(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.generation += 1;
        inner.generation
    }

    /// Garbage-collects entries whose last touch is more than
    /// `keep_generations` generation bumps old — the extraction-tier
    /// stale-revision fix: superseded prefix states and out-of-window
    /// pre-trim states stop occupying capacity once no mining pass can use
    /// them. Returns how many entries were collected.
    pub fn collect_superseded(&self, keep_generations: u64) -> usize {
        let mut inner = self.inner.lock();
        let horizon = inner.generation.saturating_sub(keep_generations);
        if horizon == 0 {
            return 0;
        }
        let before = inner.entries.len();
        inner.entries.retain(|_, (_, touched)| *touched >= horizon);
        let removed = before - inner.entries.len();
        if removed > 0 {
            let entries = std::mem::take(&mut inner.entries);
            inner.insertion_order.retain(|k| entries.contains_key(k));
            inner.entries = entries;
            inner.stats.evicted += removed;
        }
        removed
    }

    fn lookup(&self, key: &ExtractionKey, prefix: bool) -> Option<Arc<ExtractionState>> {
        let mut inner = self.inner.lock();
        let generation = inner.generation;
        let found = inner.entries.get_mut(key).map(|(state, touched)| {
            *touched = generation;
            Arc::clone(state)
        });
        match (prefix, found.is_some()) {
            (false, true) => inner.stats.hits += 1,
            (false, false) => inner.stats.misses += 1,
            (true, true) => inner.stats.prefix_hits += 1,
            (true, false) => inner.stats.prefix_misses += 1,
        }
        found
    }

    fn store(&self, key: ExtractionKey, state: Arc<ExtractionState>) {
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(&key) {
            inner.insertion_order.push_back(key);
        }
        let generation = inner.generation;
        inner.entries.insert(key, (state, generation));
        while inner.entries.len() > inner.capacity {
            let oldest = inner
                .insertion_order
                .pop_front()
                .expect("eviction with empty insertion order");
            inner.entries.remove(&oldest);
        }
    }
}

impl Default for EvolvingSetsCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvolvingCache for EvolvingSetsCache {
    fn get(&self, key: &ExtractionKey) -> Option<EvolvingSets> {
        self.lookup(key, false).map(|state| state.sets.clone())
    }

    fn put(&self, key: ExtractionKey, sets: &EvolvingSets) {
        self.store(
            key,
            Arc::new(ExtractionState {
                sets: sets.clone(),
                segmentation: None,
            }),
        );
    }

    fn get_state(&self, key: &ExtractionKey) -> Option<Arc<ExtractionState>> {
        self.lookup(key, true)
    }

    fn put_state(&self, key: ExtractionKey, state: &ExtractionState) {
        self.store(key, Arc::new(state.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::evolving::{extract_evolving, extract_resume, extract_state};
    use miscela_model::TimeSeries;

    fn series(shift: f64) -> TimeSeries {
        TimeSeries::from_values(
            (0..96)
                .map(|i| ((i as f64) * 0.4).sin() * 3.0 + shift)
                .collect(),
        )
    }

    #[test]
    fn get_put_round_trip_and_stats() {
        let cache = EvolvingSetsCache::new();
        let s = series(0.0);
        let key = ExtractionKey::new(&s, 0.5, false, 0.0);
        assert!(cache.get(&key).is_none());
        let sets = extract_evolving(&s, 0.5);
        cache.put(key, &sets);
        assert_eq!(cache.get(&key).unwrap(), sets);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!((stats.prefix_hits, stats.prefix_misses), (0, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn prefix_states_round_trip_and_seed_resume() {
        let cache = EvolvingSetsCache::new();
        let full =
            TimeSeries::from_values((0..160).map(|i| ((i as f64) * 0.3).sin() * 4.0).collect());
        let prefix = full.window(0, 120);
        let pkey = ExtractionKey::new(&prefix, 0.5, true, 0.05);
        let state = extract_state(&prefix, 0.5, true, 0.05);
        cache.put_state(pkey, &state);
        // The appended series' prefix key is the prefix's own key.
        assert_eq!(pkey, ExtractionKey::for_prefix(&full, 120, 0.5, true, 0.05));
        let recovered = cache.get_state(&pkey).unwrap();
        assert_eq!(*recovered, state);
        let resumed = extract_resume(&full, 0.5, true, 0.05, &recovered);
        assert_eq!(resumed, extract_state(&full, 0.5, true, 0.05));
        let stats = cache.stats();
        assert_eq!(stats.prefix_hits, 1);
        assert_eq!(stats.prefix_misses, 0);
        // An unknown prefix misses and is counted separately.
        assert!(cache
            .get_state(&ExtractionKey::for_prefix(&full, 60, 0.5, true, 0.05))
            .is_none());
        assert_eq!(cache.stats().prefix_misses, 1);
    }

    #[test]
    fn keys_distinguish_content_and_parameters() {
        let a = series(0.0);
        let b = series(1.0);
        let base = ExtractionKey::new(&a, 0.5, false, 0.0);
        assert_ne!(base, ExtractionKey::new(&b, 0.5, false, 0.0));
        assert_ne!(base, ExtractionKey::new(&a, 0.6, false, 0.0));
        assert_ne!(base, ExtractionKey::new(&a, 0.5, true, 0.05));
        // A disabled tolerance does not split the key space.
        assert_eq!(base, ExtractionKey::new(&a, 0.5, true, 0.0));
        assert_eq!(base, ExtractionKey::new(&a, 0.5, false, 0.05));
        // Missingness patterns are part of the fingerprint.
        let mut gapped = a.clone();
        gapped.clear(10);
        assert_ne!(base, ExtractionKey::new(&gapped, 0.5, false, 0.0));
    }

    #[test]
    fn generation_gc_collects_untouched_entries_and_keeps_hot_ones() {
        let cache = EvolvingSetsCache::new();
        let hot = series(1.0);
        let cold = series(2.0);
        let hot_key = ExtractionKey::new(&hot, 0.5, false, 0.0);
        let cold_key = ExtractionKey::new(&cold, 0.5, false, 0.0);
        cache.put(hot_key, &extract_evolving(&hot, 0.5));
        cache.put(cold_key, &extract_evolving(&cold, 0.5));
        // Bump through `keep` generations, touching only the hot entry:
        // the cold entry (stamped at generation 0) survives while the
        // horizon has not passed it.
        for _ in 0..3 {
            cache.bump_generation();
            assert!(cache.get(&hot_key).is_some());
            assert_eq!(cache.collect_superseded(3), 0);
        }
        // One more bump pushes the cold entry past the horizon.
        cache.bump_generation();
        assert!(cache.get(&hot_key).is_some());
        assert_eq!(cache.collect_superseded(3), 1);
        assert!(cache.get(&cold_key).is_none());
        assert!(cache.get(&hot_key).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.entries, 1);
        // Re-inserting after GC works (insertion order was compacted).
        cache.put(cold_key, &extract_evolving(&cold, 0.5));
        assert!(cache.get(&cold_key).is_some());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cache = EvolvingSetsCache::with_capacity(2);
        let keys: Vec<ExtractionKey> = (0..3)
            .map(|i| ExtractionKey::new(&series(i as f64), 0.5, false, 0.0))
            .collect();
        let sets = extract_evolving(&series(0.0), 0.5);
        for &k in &keys {
            cache.put(k, &sets);
        }
        assert!(cache.get(&keys[0]).is_none());
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[2]).is_some());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(EvolvingSetsCache::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let s = series((t * 100 + i) as f64);
                    let key = ExtractionKey::new(&s, 0.5, false, 0.0);
                    cache.put(key, &extract_evolving(&s, 0.5));
                    assert!(cache.get(&key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 80);
    }
}
