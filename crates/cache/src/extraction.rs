//! Per-series extraction cache: the front-end companion of the CAP result
//! cache.
//!
//! The result cache (Section 3.3) only helps when the *entire* parameter
//! setting repeats. The interactive exploration loop, however, mostly
//! re-mines with tweaked support/distance parameters (ψ, η, μ) — which do
//! not affect steps (1)+(2) at all. [`EvolvingSetsCache`] memoizes the
//! per-series [`EvolvingSets`] keyed by
//! [`ExtractionKey`] (series content fingerprint + ε + segmentation
//! parameters), so those re-mining calls skip segmentation and extraction
//! entirely and pay only for the search.

use miscela_core::evolving::{EvolvingCache, EvolvingSets, ExtractionKey};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default capacity: enough for every sensor of several city-scale datasets
/// at a handful of ε/segmentation settings.
pub const DEFAULT_EXTRACTION_CAPACITY: usize = 16_384;

/// A thread-safe, capacity-bounded cache from [`ExtractionKey`] to
/// [`EvolvingSets`], evicting the least recently inserted entry.
///
/// Keys are content fingerprints, so no dataset-level invalidation is
/// needed: re-uploading changed data simply misses (and the stale entries
/// age out through the capacity bound).
#[derive(Debug)]
pub struct EvolvingSetsCache {
    inner: Mutex<Inner>,
}

// Entries are `Arc`ed so the critical section of a hit is one reference
// bump: the deep bitset clone the `EvolvingCache` contract requires happens
// outside the lock, keeping the parallel warm-extraction path from
// serializing on the mutex.
#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<ExtractionKey, Arc<EvolvingSets>>,
    insertion_order: VecDeque<ExtractionKey>,
    capacity: usize,
    hits: usize,
    misses: usize,
}

impl EvolvingSetsCache {
    /// Creates a cache with [`DEFAULT_EXTRACTION_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EXTRACTION_CAPACITY)
    }

    /// Creates a cache that keeps at most `capacity` series entries.
    pub fn with_capacity(capacity: usize) -> Self {
        EvolvingSetsCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                ..Inner::default()
            }),
        }
    }

    /// `(hits, misses, entries)` counters.
    pub fn stats(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses, inner.entries.len())
    }

    /// Removes every entry (statistics are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.insertion_order.clear();
    }
}

impl Default for EvolvingSetsCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvolvingCache for EvolvingSetsCache {
    fn get(&self, key: &ExtractionKey) -> Option<EvolvingSets> {
        let shared = {
            let mut inner = self.inner.lock();
            let found = inner.entries.get(key).map(Arc::clone);
            if found.is_some() {
                inner.hits += 1;
            } else {
                inner.misses += 1;
            }
            found
        };
        shared.map(|sets| (*sets).clone())
    }

    fn put(&self, key: ExtractionKey, sets: &EvolvingSets) {
        let sets = Arc::new(sets.clone());
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(&key) {
            inner.insertion_order.push_back(key);
        }
        inner.entries.insert(key, sets);
        while inner.entries.len() > inner.capacity {
            let oldest = inner
                .insertion_order
                .pop_front()
                .expect("eviction with empty insertion order");
            inner.entries.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::evolving::extract_evolving;
    use miscela_model::TimeSeries;

    fn series(shift: f64) -> TimeSeries {
        TimeSeries::from_values(
            (0..96)
                .map(|i| ((i as f64) * 0.4).sin() * 3.0 + shift)
                .collect(),
        )
    }

    #[test]
    fn get_put_round_trip_and_stats() {
        let cache = EvolvingSetsCache::new();
        let s = series(0.0);
        let key = ExtractionKey::new(&s, 0.5, false, 0.0);
        assert!(cache.get(&key).is_none());
        let sets = extract_evolving(&s, 0.5);
        cache.put(key, &sets);
        assert_eq!(cache.get(&key).unwrap(), sets);
        assert_eq!(cache.stats(), (1, 1, 1));
        cache.clear();
        assert_eq!(cache.stats().2, 0);
    }

    #[test]
    fn keys_distinguish_content_and_parameters() {
        let a = series(0.0);
        let b = series(1.0);
        let base = ExtractionKey::new(&a, 0.5, false, 0.0);
        assert_ne!(base, ExtractionKey::new(&b, 0.5, false, 0.0));
        assert_ne!(base, ExtractionKey::new(&a, 0.6, false, 0.0));
        assert_ne!(base, ExtractionKey::new(&a, 0.5, true, 0.05));
        // A disabled tolerance does not split the key space.
        assert_eq!(base, ExtractionKey::new(&a, 0.5, true, 0.0));
        assert_eq!(base, ExtractionKey::new(&a, 0.5, false, 0.05));
        // Missingness patterns are part of the fingerprint.
        let mut gapped = a.clone();
        gapped.clear(10);
        assert_ne!(base, ExtractionKey::new(&gapped, 0.5, false, 0.0));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cache = EvolvingSetsCache::with_capacity(2);
        let keys: Vec<ExtractionKey> = (0..3)
            .map(|i| ExtractionKey::new(&series(i as f64), 0.5, false, 0.0))
            .collect();
        let sets = extract_evolving(&series(0.0), 0.5);
        for &k in &keys {
            cache.put(k, &sets);
        }
        assert!(cache.get(&keys[0]).is_none());
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[2]).is_some());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(EvolvingSetsCache::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let s = series((t * 100 + i) as f64);
                    let key = ExtractionKey::new(&s, 0.5, false, 0.0);
                    cache.put(key, &extract_evolving(&s, 0.5));
                    assert!(cache.get(&key).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().2, 80);
    }
}
