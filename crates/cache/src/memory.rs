//! In-memory result cache with hit/miss statistics.

use crate::key::CacheKey;
use miscela_core::CapSet;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups answered from the cache.
    pub hits: usize,
    /// Number of lookups that required mining.
    pub misses: usize,
    /// Number of entries currently stored.
    pub entries: usize,
    /// Number of entries garbage-collected because their dataset revision
    /// was superseded by an append, trim or re-registration (cumulative,
    /// across both cache tiers).
    pub evicted: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (zero when there were no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe in-memory cache from [`CacheKey`] to [`CapSet`], with an
/// optional capacity bound evicting the least recently inserted entry.
#[derive(Debug, Default)]
pub struct ResultCache {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<CacheKey, CapSet>,
    insertion_order: Vec<CacheKey>,
    capacity: Option<usize>,
    hits: usize,
    misses: usize,
    evicted: usize,
}

impl ResultCache {
    /// Creates an unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache that keeps at most `capacity` entries (oldest-in
    /// evicted first).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                capacity: Some(capacity.max(1)),
                ..Inner::default()
            }),
        }
    }

    /// Looks up a key, recording a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<CapSet> {
        let mut inner = self.inner.lock();
        match inner.entries.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether a key is cached (does not affect statistics).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.inner.lock().entries.contains_key(key)
    }

    /// Inserts (or replaces) an entry.
    pub fn put(&self, key: CacheKey, caps: CapSet) {
        let mut inner = self.inner.lock();
        if !inner.entries.contains_key(&key) {
            inner.insertion_order.push(key.clone());
        }
        inner.entries.insert(key, caps);
        if let Some(cap) = inner.capacity {
            while inner.entries.len() > cap {
                let oldest = inner.insertion_order.remove(0);
                inner.entries.remove(&oldest);
            }
        }
    }

    /// Removes every cached entry for a dataset (used when a dataset is
    /// re-uploaded under the same name).
    pub fn invalidate_dataset(&self, dataset: &str) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner.entries.retain(|k, _| k.dataset != dataset);
        inner.insertion_order.retain(|k| k.dataset != dataset);
        before - inner.entries.len()
    }

    /// Garbage-collects every entry of `dataset` whose revision is older
    /// than `current_revision` — the stale-revision leak fix: revisions
    /// made unreachable by an append/trim revision bump no longer linger
    /// until a whole-dataset invalidation. Returns how many entries were
    /// collected.
    pub fn evict_superseded(&self, dataset: &str, current_revision: u64) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner
            .entries
            .retain(|k, _| k.dataset != dataset || k.revision >= current_revision);
        inner
            .insertion_order
            .retain(|k| k.dataset != dataset || k.revision >= current_revision);
        let removed = before - inner.entries.len();
        inner.evicted += removed;
        removed
    }

    /// Adds externally performed evictions (the store tier's revision GC)
    /// to the [`CacheStats::evicted`] counter, so one counter reports both
    /// tiers.
    pub fn record_evictions(&self, n: usize) {
        self.inner.lock().evicted += n;
    }

    /// Clears the cache (statistics are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.insertion_order.clear();
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.entries.len(),
            evicted: inner.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::MiningParams;

    fn key(dataset: &str, psi: usize) -> CacheKey {
        CacheKey::new(dataset, &MiningParams::default().with_psi(psi))
    }

    #[test]
    fn get_put_and_stats() {
        let cache = ResultCache::new();
        let k = key("santander", 10);
        assert!(cache.get(&k).is_none());
        cache.put(k.clone(), CapSet::new());
        assert!(cache.get(&k).is_some());
        assert!(cache.contains(&k));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cache = ResultCache::with_capacity(2);
        cache.put(key("a", 1), CapSet::new());
        cache.put(key("b", 1), CapSet::new());
        cache.put(key("c", 1), CapSet::new());
        assert!(!cache.contains(&key("a", 1)));
        assert!(cache.contains(&key("b", 1)));
        assert!(cache.contains(&key("c", 1)));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn invalidate_dataset_removes_only_that_dataset() {
        let cache = ResultCache::new();
        cache.put(key("santander", 1), CapSet::new());
        cache.put(key("santander", 2), CapSet::new());
        cache.put(key("china6", 1), CapSet::new());
        assert_eq!(cache.invalidate_dataset("santander"), 2);
        assert!(!cache.contains(&key("santander", 1)));
        assert!(cache.contains(&key("china6", 1)));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn hit_rate_zero_without_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(ResultCache::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let k = key(&format!("d{t}"), i);
                    cache.put(k.clone(), CapSet::new());
                    assert!(cache.get(&k).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 100);
        assert_eq!(cache.stats().hits, 100);
    }
}
