//! Sensor identity and metadata.
//!
//! Following the paper (footnote 2 of Section 4): *"We consider sensors with
//! different attributes as different sensors even if they are located at the
//! same location."* A [`Sensor`] therefore carries exactly one attribute, and
//! a physical multi-sensor station appears as several `Sensor` values sharing
//! a location.

use crate::attribute::AttributeId;
use crate::geo::GeoPoint;
use std::fmt;

/// External identifier of a sensor, as it appears in `location.csv` /
/// `data.csv` (e.g. `"00000"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SensorId(pub String);

impl SensorId {
    /// Creates an id, trimming surrounding whitespace.
    pub fn new(id: impl Into<String>) -> Self {
        SensorId(id.into().trim().to_string())
    }

    /// The id string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SensorId {
    fn from(s: &str) -> Self {
        SensorId::new(s)
    }
}

impl From<String> for SensorId {
    fn from(s: String) -> Self {
        SensorId::new(s)
    }
}

/// Dense index of a sensor within one dataset (assigned at dataset build
/// time). The mining engine and the visualization layer use this everywhere
/// instead of the string id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SensorIndex(pub u32);

impl SensorIndex {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SensorIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A sensor: identifier, the single attribute it measures, and its location.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensor {
    /// External identifier (string, as uploaded).
    pub id: SensorId,
    /// Attribute measured by this sensor.
    pub attribute: AttributeId,
    /// Geographic location.
    pub location: GeoPoint,
}

impl Sensor {
    /// Creates a sensor.
    pub fn new(id: impl Into<SensorId>, attribute: AttributeId, location: GeoPoint) -> Self {
        Sensor {
            id: id.into(),
            attribute,
            location,
        }
    }

    /// Great-circle distance to another sensor, in kilometres.
    pub fn distance_km(&self, other: &Sensor) -> f64 {
        self.location.distance_km(&other.location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::AttributeId;

    #[test]
    fn sensor_id_trims() {
        assert_eq!(SensorId::new(" 00000 ").as_str(), "00000");
        assert_eq!(SensorId::from("abc").to_string(), "abc");
    }

    #[test]
    fn sensor_distance() {
        let a = Sensor::new(
            "s1",
            AttributeId(0),
            GeoPoint::new_unchecked(43.46192, -3.80176),
        );
        let b = Sensor::new(
            "s2",
            AttributeId(1),
            GeoPoint::new_unchecked(43.46212, -3.79979),
        );
        let d = a.distance_km(&b);
        assert!(d > 0.1 && d < 0.3);
        assert!((a.distance_km(&a)).abs() < 1e-12);
    }

    #[test]
    fn sensor_index_display() {
        assert_eq!(SensorIndex(7).to_string(), "s7");
        assert_eq!(SensorIndex(7).index(), 7usize);
    }
}
