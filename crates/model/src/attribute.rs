//! Attribute names and interning.
//!
//! The paper's datasets measure a fixed, small vocabulary of attributes
//! (temperature, light, sound, traffic volume, humidity for Santander;
//! PM2.5, SO2, NO2, CO, O3 and weather attributes for the China datasets).
//! CAP mining reasons about *sets of attributes* constantly, so attributes
//! are interned into small integer ids ([`AttributeId`]) through an
//! [`AttributeRegistry`]; the mining engine then works with dense bitsets of
//! attribute ids rather than strings.

use std::collections::HashMap;
use std::fmt;

/// A dense, registry-scoped identifier for an attribute.
///
/// Ids are assigned in registration order starting from zero, so they can be
/// used directly as indices into per-attribute vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttributeId(pub u16);

impl AttributeId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An attribute name, e.g. `"temperature"` or `"PM2.5"`.
///
/// Attribute names are case-sensitive and compared exactly, matching the
/// behaviour of the paper's `attribute.csv` upload file, which simply lists
/// the attribute strings appearing in `data.csv` / `location.csv`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute(String);

impl Attribute {
    /// Creates an attribute from a name. Leading / trailing whitespace is
    /// trimmed (the CSV files in the wild contain trailing spaces).
    pub fn new(name: impl Into<String>) -> Self {
        let name: String = name.into();
        Attribute(name.trim().to_string())
    }

    /// The attribute name as a string slice.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Whether the attribute name is empty after trimming.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Attribute {
    fn from(s: &str) -> Self {
        Attribute::new(s)
    }
}

impl From<String> for Attribute {
    fn from(s: String) -> Self {
        Attribute::new(s)
    }
}

/// Interns attribute names into dense [`AttributeId`]s.
///
/// A registry belongs to a dataset: the ids it hands out are only meaningful
/// relative to it. Registration is idempotent — registering the same name
/// twice returns the same id.
#[derive(Debug, Clone, Default)]
pub struct AttributeRegistry {
    names: Vec<Attribute>,
    ids: HashMap<Attribute, AttributeId>,
}

impl AttributeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-populated with the given attribute names,
    /// in order.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut reg = Self::new();
        for n in names {
            reg.register(Attribute::new(n));
        }
        reg
    }

    /// Registers an attribute, returning its id. Idempotent.
    pub fn register(&mut self, attr: Attribute) -> AttributeId {
        if let Some(&id) = self.ids.get(&attr) {
            return id;
        }
        let id = AttributeId(self.names.len() as u16);
        self.names.push(attr.clone());
        self.ids.insert(attr, id);
        id
    }

    /// Registers an attribute by name.
    pub fn register_name(&mut self, name: &str) -> AttributeId {
        self.register(Attribute::new(name))
    }

    /// Looks up the id for an attribute name, if registered.
    pub fn id_of(&self, name: &str) -> Option<AttributeId> {
        self.ids.get(&Attribute::new(name)).copied()
    }

    /// Looks up the attribute for an id, if it is in range.
    pub fn attribute(&self, id: AttributeId) -> Option<&Attribute> {
        self.names.get(id.index())
    }

    /// The attribute name for an id, panicking-free; returns `"?"` for
    /// unknown ids (useful in display code).
    pub fn name_of(&self, id: AttributeId) -> &str {
        self.names.get(id.index()).map(|a| a.name()).unwrap_or("?")
    }

    /// Number of registered attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, attribute)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttributeId, &Attribute)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, a)| (AttributeId(i as u16), a))
    }

    /// All attribute names in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|a| a.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_trims_whitespace() {
        assert_eq!(Attribute::new("  temperature \n").name(), "temperature");
        assert_eq!(Attribute::new("PM2.5").name(), "PM2.5");
    }

    #[test]
    fn registry_assigns_dense_ids_in_order() {
        let mut reg = AttributeRegistry::new();
        let a = reg.register_name("temperature");
        let b = reg.register_name("light");
        let c = reg.register_name("traffic");
        assert_eq!(a, AttributeId(0));
        assert_eq!(b, AttributeId(1));
        assert_eq!(c, AttributeId(2));
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = AttributeRegistry::new();
        let a = reg.register_name("temperature");
        let b = reg.register_name("temperature");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn lookup_by_name_and_id() {
        let reg = AttributeRegistry::from_names(["temperature", "light"]);
        assert_eq!(reg.id_of("light"), Some(AttributeId(1)));
        assert_eq!(reg.id_of("sound"), None);
        assert_eq!(reg.attribute(AttributeId(0)).unwrap().name(), "temperature");
        assert_eq!(reg.name_of(AttributeId(1)), "light");
        assert_eq!(reg.name_of(AttributeId(42)), "?");
    }

    #[test]
    fn iter_preserves_order() {
        let reg = AttributeRegistry::from_names(["a", "b", "c"]);
        let names: Vec<&str> = reg.names().collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        let ids: Vec<u16> = reg.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(AttributeId(3).to_string(), "a3");
        assert_eq!(Attribute::new("humidity").to_string(), "humidity");
    }
}
