//! Rolling content fingerprints over raw series values.
//!
//! [`SeriesFingerprinter`] is a two-stream FNV-1a accumulator: values are
//! streamed left to right and [`SeriesFingerprinter::checkpoint`] yields the
//! fingerprint of everything pushed so far. The mining layer keys its
//! extraction cache on these fingerprints; the model layer uses the same
//! accumulator to keep a *front digest* on every [`crate::TimeSeries`] — the
//! fingerprint state of the values dropped by sliding-window trims — so a
//! trimmed window can still be keyed against its untrimmed origin stream
//! (resume the front digest over the retained values and the checkpoint is
//! the origin-stream fingerprint, as if no trim had happened).

const FNV_OFFSET_1: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_2: u64 = 0x9e37_79b9_7f4a_7c15;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Rolling two-stream FNV-1a fingerprinter over raw series values.
///
/// Values are streamed left to right and [`checkpoint`](Self::checkpoint)
/// yields the fingerprint of everything pushed so far (the stream state is
/// finalized with the current length, so prefixes of different lengths
/// never collide trivially). This is the prefix-fingerprint scheme of the
/// append-aware extraction cache: while fingerprinting an appended series,
/// the miner takes checkpoints at each recorded pre-append length and
/// probes the cache for a reusable prefix extraction — one pass over the
/// values serves every candidate prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesFingerprinter {
    h1: u64,
    h2: u64,
    len: usize,
}

impl SeriesFingerprinter {
    /// A fingerprinter over the empty prefix.
    pub fn new() -> Self {
        SeriesFingerprinter {
            h1: FNV_OFFSET_1,
            h2: FNV_OFFSET_2,
            len: 0,
        }
    }

    /// Streams one raw value (`NaN` missing markers included, so presence
    /// patterns are part of the fingerprint).
    #[inline]
    pub fn push(&mut self, raw: f64) {
        let bits = raw.to_bits();
        self.h1 ^= bits;
        self.h1 = self.h1.wrapping_mul(FNV_PRIME);
        self.h2 ^= bits.rotate_left(29);
        self.h2 = self.h2.wrapping_mul(FNV_PRIME);
        self.len += 1;
    }

    /// Number of values streamed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values have been streamed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fingerprint of everything pushed so far. Two independent FNV-1a
    /// streams — the second with a different offset basis and bit-rotated
    /// input — are finalized with the current length and packed into one
    /// `u128`. A single 64-bit FNV collision is constructible; colliding
    /// both streams simultaneously is not practically so, which is what
    /// lets the extraction cache trust a key hit and skip steps (1)+(2).
    pub fn checkpoint(&self) -> u128 {
        let h1 = (self.h1 ^ self.len as u64).wrapping_mul(FNV_PRIME);
        let h2 = (self.h2 ^ (self.len as u64).rotate_left(32)).wrapping_mul(FNV_PRIME);
        ((h1 as u128) << 64) | h2 as u128
    }
}

impl Default for SeriesFingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_depend_on_values_and_length() {
        let mut a = SeriesFingerprinter::new();
        assert!(a.is_empty());
        let empty = a.checkpoint();
        a.push(1.0);
        assert_eq!(a.len(), 1);
        assert_ne!(a.checkpoint(), empty);
        let one = a.checkpoint();
        a.push(1.0);
        // Same value again: length finalization still separates prefixes.
        assert_ne!(a.checkpoint(), one);
        // Streaming the same values reproduces the same checkpoint.
        let mut b = SeriesFingerprinter::new();
        b.push(1.0);
        b.push(1.0);
        assert_eq!(a.checkpoint(), b.checkpoint());
        assert_eq!(a, b);
    }

    #[test]
    fn nan_is_part_of_the_stream() {
        let mut a = SeriesFingerprinter::new();
        a.push(f64::NAN);
        let mut b = SeriesFingerprinter::new();
        b.push(0.0);
        assert_ne!(a.checkpoint(), b.checkpoint());
    }
}
