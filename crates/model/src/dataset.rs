//! Datasets: a named collection of sensors and their aligned series.
//!
//! A [`Dataset`] corresponds to one uploaded dataset in Miscela-V — the
//! combination of the paper's `data.csv`, `location.csv` and `attribute.csv`.
//! All sensors share one [`TimeGrid`]; each sensor owns one [`TimeSeries`]
//! aligned to that grid.

use crate::attribute::{Attribute, AttributeId, AttributeRegistry};
use crate::error::ModelError;
use crate::geo::{BoundingBox, GeoPoint};
use crate::retention::RetentionPolicy;
use crate::sensor::{Sensor, SensorId, SensorIndex};
use crate::series::{TimeSeries, SERIES_BLOCK_LEN};
use crate::stats::DatasetStats;
use crate::time::{TimeGrid, Timestamp};
use std::collections::HashMap;

/// A sensor together with its measurement series (borrowed view).
#[derive(Debug, Clone, Copy)]
pub struct SensorSeries<'a> {
    /// Dense index of the sensor within the dataset.
    pub index: SensorIndex,
    /// Sensor metadata.
    pub sensor: &'a Sensor,
    /// Measurement series aligned to the dataset grid.
    pub series: &'a TimeSeries,
}

/// One measurement row submitted to [`Dataset::append_rows`]: the model-level
/// equivalent of a `data.csv` line arriving after the dataset was built.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRow {
    /// External sensor id.
    pub sensor: SensorId,
    /// Attribute name (must already be registered).
    pub attribute: String,
    /// Measurement timestamp; must lie on the grid spacing and beyond the
    /// current grid end.
    pub time: Timestamp,
    /// Measurement value (`None` for an explicit `null`).
    pub value: Option<f64>,
}

/// A borrowed measurement row for [`Dataset::append_rows_borrowed`]: the
/// zero-copy view an ingestion front-end (e.g. the csv loader's parsed
/// `DataRow`s) adapts its rows into without cloning the sensor id or
/// attribute-name strings.
#[derive(Debug, Clone, Copy)]
pub struct AppendRowRef<'a> {
    /// External sensor id.
    pub sensor: &'a SensorId,
    /// Attribute name (must already be registered).
    pub attribute: &'a str,
    /// Measurement timestamp; must lie on the grid spacing and beyond the
    /// current grid end.
    pub time: Timestamp,
    /// Measurement value (`None` for an explicit `null`).
    pub value: Option<f64>,
}

/// The outcome of one [`Dataset::append_rows`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppendStats {
    /// How many grid points the append added.
    pub new_timestamps: usize,
    /// How many measurement rows were applied.
    pub measurements: usize,
    /// How many leading grid points the dataset's [`RetentionPolicy`]
    /// trimmed right after the append (0 for unbounded datasets).
    pub trimmed_timestamps: usize,
}

/// How many append-base lengths a dataset remembers (see
/// [`Dataset::append_bases`]). Old bases beyond this are forgotten; callers
/// resuming from them simply fall back to a full recompute.
pub const MAX_APPEND_BASES: usize = 8;

/// Upper bound on how many grid points one [`Dataset::append_rows`] batch
/// may add. The grid is extended (and every series NaN-filled) up to the
/// latest appended timestamp, so without a cap a single row with a far
/// future timestamp — a year-off typo, or milliseconds passed as seconds —
/// would allocate `points × sensors × 8` bytes before anything notices.
/// One million points is ~114 years of hourly data: far beyond any real
/// batch, far below an allocation that could hurt.
pub const MAX_APPEND_TIMESTAMPS: usize = 1 << 20;

/// An immutable, fully-built dataset.
///
/// The one sanctioned mutation is [`Dataset::append_rows`], which extends
/// the grid and every series in place — existing indices and values are
/// never changed, which is the invariant the incremental re-mining path
/// builds on.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    attributes: AttributeRegistry,
    sensors: Vec<Sensor>,
    series: Vec<TimeSeries>,
    grid: TimeGrid,
    id_index: HashMap<(SensorId, AttributeId), SensorIndex>,
    /// Grid lengths this dataset had before recent appends, oldest first.
    append_bases: Vec<usize>,
    /// Sliding-window retention applied after every append.
    retention: RetentionPolicy,
    /// Total grid points trimmed from the front since the dataset was built.
    trimmed: usize,
    /// Cumulative [`Dataset::trimmed`] totals recorded at recent trims,
    /// oldest first (the trim counterpart of `append_bases`).
    trim_bases: Vec<usize>,
}

impl Dataset {
    /// Dataset name (used as the cache / store key, per Section 3.2 of the
    /// paper: "we can use the dataset without re-uploading by specifying the
    /// dataset name").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared time grid.
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// The attribute registry.
    pub fn attributes(&self) -> &AttributeRegistry {
        &self.attributes
    }

    /// Number of sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Number of timestamps on the grid.
    pub fn timestamp_count(&self) -> usize {
        self.grid.len()
    }

    /// Number of grid points covered by *sealed* series blocks: the largest
    /// multiple of [`SERIES_BLOCK_LEN`] not exceeding the grid length.
    /// Sealed blocks are immutable (`Arc`-shared across revisions), which
    /// makes this the natural alignment boundary for durability snapshots —
    /// a snapshot taken when a block seals never has to be rewritten by
    /// later appends to the open tail block.
    pub fn sealed_timestamps(&self) -> usize {
        self.grid.len() - self.grid.len() % SERIES_BLOCK_LEN
    }

    /// Total number of records (sensor, timestamp) pairs, counting missing
    /// values — this is how the paper's Section-4 record counts are defined
    /// (all timestamps × all sensors, with nulls where a sensor is silent).
    pub fn record_count(&self) -> usize {
        self.sensor_count() * self.timestamp_count()
    }

    /// Number of present (non-null) measurements.
    pub fn present_count(&self) -> usize {
        self.series.iter().map(|s| s.present_count()).sum()
    }

    /// Sensor metadata by dense index.
    pub fn sensor(&self, idx: SensorIndex) -> &Sensor {
        &self.sensors[idx.index()]
    }

    /// Series by dense index.
    pub fn series(&self, idx: SensorIndex) -> &TimeSeries {
        &self.series[idx.index()]
    }

    /// Sensor + series view by dense index.
    pub fn sensor_series(&self, idx: SensorIndex) -> SensorSeries<'_> {
        SensorSeries {
            index: idx,
            sensor: self.sensor(idx),
            series: self.series(idx),
        }
    }

    /// Looks up a sensor by its external id and attribute.
    pub fn index_of(&self, id: &SensorId, attribute: AttributeId) -> Option<SensorIndex> {
        self.id_index.get(&(id.clone(), attribute)).copied()
    }

    /// Looks up a sensor by external id, returning the first match of any
    /// attribute (convenient when ids are globally unique).
    pub fn index_of_id(&self, id: &SensorId) -> Option<SensorIndex> {
        self.sensors
            .iter()
            .position(|s| &s.id == id)
            .map(|i| SensorIndex(i as u32))
    }

    /// Iterates over all sensors with their series.
    pub fn iter(&self) -> impl Iterator<Item = SensorSeries<'_>> {
        self.sensors
            .iter()
            .enumerate()
            .map(|(i, sensor)| SensorSeries {
                index: SensorIndex(i as u32),
                sensor,
                series: &self.series[i],
            })
    }

    /// All dense sensor indices.
    pub fn indices(&self) -> impl Iterator<Item = SensorIndex> {
        (0..self.sensors.len() as u32).map(SensorIndex)
    }

    /// Sensors measuring a given attribute.
    pub fn sensors_with_attribute(
        &self,
        attribute: AttributeId,
    ) -> impl Iterator<Item = SensorSeries<'_>> {
        self.iter().filter(move |s| s.sensor.attribute == attribute)
    }

    /// Bounding box of all sensor locations (`None` when there are no
    /// sensors).
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::of(self.sensors.iter().map(|s| &s.location))
    }

    /// Summary statistics (Section-4 dataset table).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::of(self)
    }

    /// Restricts the dataset to the grid points falling inside
    /// `[start, end)`, producing a new dataset that shares sensor metadata.
    ///
    /// The COVID-19 demonstration scenario compares CAPs mined on the
    /// before/after windows of one dataset; this is the operation it uses.
    pub fn slice_time(&self, start: Timestamp, end: Timestamp) -> Result<Dataset, ModelError> {
        let range = crate::time::TimeRange::new(start, end)?;
        let (first, len) = self.grid.window(range);
        let grid = TimeGrid::new(
            self.grid.at(first).unwrap_or(start),
            self.grid.interval(),
            len,
        )?;
        let series = self
            .series
            .iter()
            .map(|s| s.window(first, len))
            .collect::<Vec<_>>();
        Ok(Dataset {
            name: format!("{}[{}..{})", self.name, start, end),
            attributes: self.attributes.clone(),
            sensors: self.sensors.clone(),
            series,
            grid,
            id_index: self.id_index.clone(),
            append_bases: Vec::new(),
            retention: self.retention,
            trimmed: 0,
            trim_bases: Vec::new(),
        })
    }

    /// Grid lengths this dataset had just before recent appends, oldest
    /// first (empty for a cold-built dataset). Incremental re-mining probes
    /// these, newest first, as candidate prefix lengths whose extraction
    /// state may still be cached; at most [`MAX_APPEND_BASES`] are kept.
    /// Bases are expressed in the *current* (post-trim) indexing: a trim
    /// rebases them and drops bases that fell out of the window entirely.
    pub fn append_bases(&self) -> &[usize] {
        &self.append_bases
    }

    /// The dataset's sliding-window retention policy.
    pub fn retention(&self) -> &RetentionPolicy {
        &self.retention
    }

    /// Installs a retention policy. The policy is applied on every
    /// subsequent [`Dataset::append_rows`]; call
    /// [`Dataset::trim_expired`] to apply it immediately.
    pub fn set_retention(&mut self, policy: RetentionPolicy) {
        self.retention = policy;
    }

    /// Total grid points trimmed from the front since the dataset was
    /// built. The grid start has advanced by this many intervals.
    pub fn trimmed(&self) -> usize {
        self.trimmed
    }

    /// Cumulative trimmed-point totals recorded at recent trims, oldest
    /// first (empty while nothing was ever trimmed; at most
    /// [`MAX_APPEND_BASES`] are kept). This is the trim counterpart of
    /// [`Dataset::append_bases`] — a diagnostic record of recent window
    /// slides for observability and tests. The incremental extraction
    /// layer does not need to consult it: trim safety comes from
    /// [`Dataset::append_bases`] being rebased (or dropped) on trim plus
    /// the content-fingerprint keying of extraction states — a slid
    /// window's shifted content simply misses every pre-trim prefix key,
    /// so the first post-trim extraction runs cold over the bounded
    /// window, re-caches it, and subsequent appends resume incrementally
    /// again.
    pub fn trim_bases(&self) -> &[usize] {
        &self.trim_bases
    }

    /// Applies the retention policy now: drops expired leading points from
    /// the window, rounded *down* to whole storage blocks
    /// ([`SERIES_BLOCK_LEN`]), so a trim is one `Arc` drop per block per
    /// series and retained data is never rewritten. Returns how many grid
    /// points were trimmed (0 when nothing has expired a full block yet).
    ///
    /// After a trim the grid start has advanced, every series index has
    /// shifted down by the returned amount, and
    /// [`Dataset::append_bases`] are rebased to the new indexing.
    pub fn trim_expired(&mut self) -> usize {
        let expired = self.retention.expired_points(&self.grid);
        let trim = expired - expired % SERIES_BLOCK_LEN;
        if trim == 0 {
            return 0;
        }
        debug_assert!(trim <= self.grid.len().saturating_sub(1));
        for s in &mut self.series {
            s.drop_front_blocks(trim / SERIES_BLOCK_LEN);
        }
        self.grid.advance(trim);
        self.append_bases = self
            .append_bases
            .iter()
            .filter(|&&b| b > trim)
            .map(|&b| b - trim)
            .collect();
        self.trimmed += trim;
        self.trim_bases.push(self.trimmed);
        if self.trim_bases.len() > MAX_APPEND_BASES {
            self.trim_bases.remove(0);
        }
        trim
    }

    /// Appends measurement rows beyond the current grid end, extending the
    /// grid and **all** series in place with missing-value fill.
    ///
    /// Every row is validated first — unknown sensors/attributes,
    /// timestamps that are off the grid spacing or not strictly beyond the
    /// existing grid, and batches that would grow the grid by more than
    /// [`MAX_APPEND_TIMESTAMPS`] points are rejected before anything is
    /// modified, so a failed append leaves the dataset untouched. The grid
    /// grows to cover the latest appended timestamp; grid points no row
    /// mentions stay missing for every sensor (the paper's `null`).
    ///
    /// Only the mutable series tails (and freshly sealed blocks) are
    /// written: the sealed prefix blocks stay `Arc`-shared with any clone
    /// taken before the append, so appending costs O(tail), not
    /// O(dataset). After a successful append the dataset's
    /// [`RetentionPolicy`] is applied ([`Dataset::trim_expired`]); the
    /// returned [`AppendStats::trimmed_timestamps`] reports what it
    /// trimmed.
    pub fn append_rows(&mut self, rows: &[AppendRow]) -> Result<AppendStats, ModelError> {
        let refs: Vec<AppendRowRef<'_>> = rows
            .iter()
            .map(|r| AppendRowRef {
                sensor: &r.sensor,
                attribute: &r.attribute,
                time: r.time,
                value: r.value,
            })
            .collect();
        self.append_rows_borrowed(&refs)
    }

    /// [`Dataset::append_rows`] over borrowed rows: the zero-copy entry
    /// point for ingestion front-ends that already own parsed rows (the
    /// csv loader routes through this, saving two `String` clones per
    /// ingested line).
    pub fn append_rows_borrowed(
        &mut self,
        rows: &[AppendRowRef<'_>],
    ) -> Result<AppendStats, ModelError> {
        if rows.is_empty() {
            return Ok(AppendStats::default());
        }
        let old_len = self.grid.len();
        let start = self.grid.start().epoch_seconds();
        let interval = self.grid.interval().as_secs();
        let mut resolved = Vec::with_capacity(rows.len());
        let mut new_len = old_len;
        // Append batches arrive overwhelmingly grouped by sensor (that is
        // how `data.csv` is written), so memoizing the previous row's
        // lookups turns the per-row hash-and-clone of the sensor/attribute
        // resolution into a string compare on the hot path.
        let mut last: Option<(&SensorId, &str, SensorIndex)> = None;
        for row in rows {
            let idx = match last {
                Some((id, attr, idx)) if id == row.sensor && attr == row.attribute => idx,
                _ => {
                    let attribute = self
                        .attributes
                        .id_of(row.attribute)
                        .ok_or_else(|| ModelError::UnknownAttribute(row.attribute.to_string()))?;
                    let idx = self
                        .id_index
                        .get(&(row.sensor.clone(), attribute))
                        .copied()
                        .ok_or_else(|| {
                            ModelError::UnknownSensor(format!("{}:{}", row.sensor, row.attribute))
                        })?;
                    last = Some((row.sensor, row.attribute, idx));
                    idx
                }
            };
            let off = row.time.epoch_seconds() - start;
            if off < 0 || off % interval != 0 {
                return Err(ModelError::TimestampOffGrid(row.time.format()));
            }
            let ti = (off / interval) as usize;
            if ti < old_len {
                return Err(ModelError::TimestampOffGrid(format!(
                    "{} does not extend the grid (append-only)",
                    row.time.format()
                )));
            }
            if ti - old_len >= MAX_APPEND_TIMESTAMPS {
                return Err(ModelError::TimestampOffGrid(format!(
                    "{} would grow the grid by {} points (max {MAX_APPEND_TIMESTAMPS} per append)",
                    row.time.format(),
                    ti + 1 - old_len
                )));
            }
            new_len = new_len.max(ti + 1);
            resolved.push((idx, ti, row.value));
        }
        let added = new_len - old_len;
        self.grid.extend(added);
        for s in &mut self.series {
            s.extend_missing(added);
        }
        for (idx, ti, value) in &resolved {
            match value {
                Some(v) => self.series[idx.index()].set(*ti, *v),
                None => self.series[idx.index()].clear(*ti),
            }
        }
        if self.append_bases.last() != Some(&old_len) {
            self.append_bases.push(old_len);
            if self.append_bases.len() > MAX_APPEND_BASES {
                self.append_bases.remove(0);
            }
        }
        let trimmed = if self.retention.is_unbounded() {
            0
        } else {
            self.trim_expired()
        };
        Ok(AppendStats {
            new_timestamps: added,
            measurements: resolved.len(),
            trimmed_timestamps: trimmed,
        })
    }
}

/// Incrementally builds a [`Dataset`].
///
/// The builder mirrors the paper's upload order: declare attributes
/// (`attribute.csv`), declare sensors (`location.csv`), then add measurements
/// (`data.csv`). Measurements for undeclared sensors are rejected, matching
/// the validation Miscela-V performs at upload time.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    name: String,
    attributes: AttributeRegistry,
    sensors: Vec<Sensor>,
    id_index: HashMap<(SensorId, AttributeId), SensorIndex>,
    grid: Option<TimeGrid>,
    series: Vec<TimeSeries>,
    retention: RetentionPolicy,
}

impl DatasetBuilder {
    /// Creates a builder for a dataset with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DatasetBuilder {
            name: name.into(),
            attributes: AttributeRegistry::new(),
            sensors: Vec::new(),
            id_index: HashMap::new(),
            grid: None,
            series: Vec::new(),
            retention: RetentionPolicy::unbounded(),
        }
    }

    /// Declares the sliding-window retention policy the built dataset will
    /// apply on appends. The policy is *not* applied to the initial build.
    pub fn set_retention(&mut self, policy: RetentionPolicy) -> &mut Self {
        self.retention = policy;
        self
    }

    /// Declares an attribute (idempotent) and returns its id.
    pub fn add_attribute(&mut self, name: &str) -> AttributeId {
        self.attributes.register(Attribute::new(name))
    }

    /// Attribute registry built so far.
    pub fn attributes(&self) -> &AttributeRegistry {
        &self.attributes
    }

    /// Declares the time grid shared by every series. Must be called before
    /// measurements are added.
    pub fn set_grid(&mut self, grid: TimeGrid) -> &mut Self {
        let len = grid.len();
        self.grid = Some(grid);
        for s in &mut self.series {
            if s.len() != len {
                *s = TimeSeries::missing(len);
            }
        }
        self
    }

    /// Declares a sensor; errors when the same `(id, attribute)` pair is
    /// declared twice.
    pub fn add_sensor(
        &mut self,
        id: impl Into<SensorId>,
        attribute_name: &str,
        location: GeoPoint,
    ) -> Result<SensorIndex, ModelError> {
        let id = id.into();
        let attribute = self.add_attribute(attribute_name);
        let key = (id.clone(), attribute);
        if self.id_index.contains_key(&key) {
            return Err(ModelError::DuplicateSensor(format!(
                "{id}:{attribute_name}"
            )));
        }
        let idx = SensorIndex(self.sensors.len() as u32);
        self.sensors.push(Sensor::new(id, attribute, location));
        let len = self.grid.as_ref().map(|g| g.len()).unwrap_or(0);
        self.series.push(TimeSeries::missing(len));
        self.id_index.insert(key, idx);
        Ok(idx)
    }

    /// Number of sensors declared so far.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Adds one measurement for the sensor with external id `id` and
    /// attribute `attribute_name` at timestamp `t`.
    ///
    /// Errors when the sensor is unknown, the grid has not been declared, or
    /// `t` does not lie on the grid.
    pub fn add_measurement(
        &mut self,
        id: &SensorId,
        attribute_name: &str,
        t: Timestamp,
        value: Option<f64>,
    ) -> Result<(), ModelError> {
        let attribute = self
            .attributes
            .id_of(attribute_name)
            .ok_or_else(|| ModelError::UnknownAttribute(attribute_name.to_string()))?;
        let idx = self
            .id_index
            .get(&(id.clone(), attribute))
            .copied()
            .ok_or_else(|| ModelError::UnknownSensor(format!("{id}:{attribute_name}")))?;
        let grid = self
            .grid
            .as_ref()
            .ok_or_else(|| ModelError::EmptyDataset("grid not set".to_string()))?;
        let ti = grid
            .index_of(t)
            .ok_or_else(|| ModelError::TimestampOffGrid(t.format()))?;
        if let Some(v) = value {
            self.series[idx.index()].set(ti, v);
        } else {
            self.series[idx.index()].clear(ti);
        }
        Ok(())
    }

    /// Directly installs a full series for a sensor (used by the synthetic
    /// generators, which produce whole series at once).
    pub fn set_series(&mut self, idx: SensorIndex, series: TimeSeries) -> Result<(), ModelError> {
        let expected = self.grid.as_ref().map(|g| g.len()).unwrap_or(0);
        if series.len() != expected {
            return Err(ModelError::LengthMismatch {
                expected,
                actual: series.len(),
            });
        }
        self.series[idx.index()] = series;
        Ok(())
    }

    /// Finalizes the dataset. Errors when no grid was declared or there are
    /// no sensors.
    pub fn build(self) -> Result<Dataset, ModelError> {
        let grid = self
            .grid
            .ok_or_else(|| ModelError::EmptyDataset(format!("{}: grid not set", self.name)))?;
        if self.sensors.is_empty() {
            return Err(ModelError::EmptyDataset(format!(
                "{}: no sensors declared",
                self.name
            )));
        }
        for s in &self.series {
            if s.len() != grid.len() {
                return Err(ModelError::LengthMismatch {
                    expected: grid.len(),
                    actual: s.len(),
                });
            }
        }
        Ok(Dataset {
            name: self.name,
            attributes: self.attributes,
            sensors: self.sensors,
            series: self.series,
            grid,
            id_index: self.id_index,
            append_bases: Vec::new(),
            retention: self.retention,
            trimmed: 0,
            trim_bases: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn small_dataset() -> Dataset {
        let mut b = DatasetBuilder::new("test");
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        b.set_grid(TimeGrid::new(start, Duration::hours(1), 4).unwrap());
        b.add_sensor("s1", "temperature", GeoPoint::new_unchecked(43.0, -3.0))
            .unwrap();
        b.add_sensor("s2", "traffic", GeoPoint::new_unchecked(43.001, -3.001))
            .unwrap();
        for (i, v) in [9.0, 10.0, 11.0, 12.0].iter().enumerate() {
            b.add_measurement(
                &SensorId::new("s1"),
                "temperature",
                start + Duration::hours(i as i64),
                Some(*v),
            )
            .unwrap();
        }
        b.add_measurement(
            &SensorId::new("s2"),
            "traffic",
            start + Duration::hours(1),
            Some(100.0),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_and_access() {
        let ds = small_dataset();
        assert_eq!(ds.name(), "test");
        assert_eq!(ds.sensor_count(), 2);
        assert_eq!(ds.timestamp_count(), 4);
        assert_eq!(ds.record_count(), 8);
        assert_eq!(ds.present_count(), 5);
        assert_eq!(ds.attributes().len(), 2);
        let i1 = ds
            .index_of(
                &SensorId::new("s1"),
                ds.attributes().id_of("temperature").unwrap(),
            )
            .unwrap();
        assert_eq!(ds.series(i1).get(2), Some(11.0));
        assert_eq!(ds.sensor(i1).id.as_str(), "s1");
        assert!(ds.index_of_id(&SensorId::new("s2")).is_some());
        assert!(ds.index_of_id(&SensorId::new("nope")).is_none());
    }

    #[test]
    fn sealed_timestamps_align_to_block_boundaries() {
        // 4 points: no block sealed yet.
        assert_eq!(small_dataset().sealed_timestamps(), 0);
        let mut b = DatasetBuilder::new("sealed");
        b.set_grid(
            TimeGrid::new(
                Timestamp::EPOCH,
                Duration::hours(1),
                SERIES_BLOCK_LEN * 2 + 7,
            )
            .unwrap(),
        );
        b.add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.sealed_timestamps(), SERIES_BLOCK_LEN * 2);
        assert!(ds.sealed_timestamps() <= ds.timestamp_count());
    }

    #[test]
    fn duplicate_sensor_rejected() {
        let mut b = DatasetBuilder::new("dup");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), 2).unwrap());
        b.add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        let err = b
            .add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateSensor(_)));
        // Same id with a different attribute is fine (paper footnote 2).
        assert!(b
            .add_sensor("s1", "humidity", GeoPoint::new_unchecked(0.0, 0.0))
            .is_ok());
    }

    #[test]
    fn measurement_validation() {
        let mut b = DatasetBuilder::new("val");
        let start = Timestamp::EPOCH;
        b.set_grid(TimeGrid::new(start, Duration::hours(1), 2).unwrap());
        b.add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        // Unknown attribute.
        assert!(matches!(
            b.add_measurement(&SensorId::new("s1"), "light", start, Some(1.0)),
            Err(ModelError::UnknownAttribute(_))
        ));
        // Unknown sensor.
        b.add_attribute("light");
        assert!(matches!(
            b.add_measurement(&SensorId::new("sX"), "light", start, Some(1.0)),
            Err(ModelError::UnknownSensor(_))
        ));
        // Off-grid timestamp.
        assert!(matches!(
            b.add_measurement(
                &SensorId::new("s1"),
                "temperature",
                start + Duration::minutes(30),
                Some(1.0)
            ),
            Err(ModelError::TimestampOffGrid(_))
        ));
        // Null measurement clears.
        b.add_measurement(&SensorId::new("s1"), "temperature", start, Some(5.0))
            .unwrap();
        b.add_measurement(&SensorId::new("s1"), "temperature", start, None)
            .unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.series(SensorIndex(0)).get(0), None);
    }

    #[test]
    fn build_requires_grid_and_sensors() {
        let b = DatasetBuilder::new("no-grid");
        assert!(matches!(b.build(), Err(ModelError::EmptyDataset(_))));

        let mut b = DatasetBuilder::new("no-sensors");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), 2).unwrap());
        assert!(matches!(b.build(), Err(ModelError::EmptyDataset(_))));
    }

    #[test]
    fn sensors_with_attribute_filter() {
        let ds = small_dataset();
        let temp = ds.attributes().id_of("temperature").unwrap();
        let v: Vec<_> = ds.sensors_with_attribute(temp).collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].sensor.id.as_str(), "s1");
    }

    #[test]
    fn bounding_box_covers_sensors() {
        let ds = small_dataset();
        let bb = ds.bounding_box().unwrap();
        assert!(bb.contains(&GeoPoint::new_unchecked(43.0005, -3.0005)));
    }

    #[test]
    fn slice_time_window() {
        let ds = small_dataset();
        let start = Timestamp::parse("2016-03-01 01:00:00").unwrap();
        let end = Timestamp::parse("2016-03-01 03:00:00").unwrap();
        let sliced = ds.slice_time(start, end).unwrap();
        assert_eq!(sliced.timestamp_count(), 2);
        assert_eq!(sliced.sensor_count(), 2);
        let i1 = sliced.index_of_id(&SensorId::new("s1")).unwrap();
        assert_eq!(sliced.series(i1).get(0), Some(10.0));
        assert_eq!(sliced.series(i1).get(1), Some(11.0));
        assert!(sliced.name().contains("test"));
    }

    fn append_row(id: &str, attr: &str, t: Timestamp, value: Option<f64>) -> AppendRow {
        AppendRow {
            sensor: SensorId::new(id),
            attribute: attr.to_string(),
            time: t,
            value,
        }
    }

    #[test]
    fn append_rows_extends_grid_and_fills_missing() {
        let mut ds = small_dataset();
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        assert!(ds.append_bases().is_empty());
        // Append hours 5 and 6 for s1 only; hour 4 is mentioned by nobody.
        let stats = ds
            .append_rows(&[
                append_row("s1", "temperature", start + Duration::hours(5), Some(14.0)),
                append_row("s1", "temperature", start + Duration::hours(6), Some(15.0)),
            ])
            .unwrap();
        assert_eq!(stats.new_timestamps, 3);
        assert_eq!(stats.measurements, 2);
        assert_eq!(ds.timestamp_count(), 7);
        assert_eq!(ds.append_bases(), &[4]);
        let i1 = ds.index_of_id(&SensorId::new("s1")).unwrap();
        let i2 = ds.index_of_id(&SensorId::new("s2")).unwrap();
        // Existing prefix untouched.
        assert_eq!(ds.series(i1).get(2), Some(11.0));
        // The gap hour and the silent sensor are missing-filled.
        assert_eq!(ds.series(i1).get(4), None);
        assert_eq!(ds.series(i1).get(5), Some(14.0));
        assert_eq!(ds.series(i1).get(6), Some(15.0));
        assert_eq!(ds.series(i2).get(5), None);
        // A second append records a second base.
        ds.append_rows(&[append_row(
            "s2",
            "traffic",
            start + Duration::hours(7),
            Some(120.0),
        )])
        .unwrap();
        assert_eq!(ds.append_bases(), &[4, 7]);
        assert_eq!(ds.timestamp_count(), 8);
    }

    #[test]
    fn append_rows_validation_leaves_dataset_untouched() {
        let mut ds = small_dataset();
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        let bad_batches: Vec<Vec<AppendRow>> = vec![
            // Unknown attribute.
            vec![append_row("s1", "light", start + Duration::hours(5), None)],
            // Unknown sensor.
            vec![append_row(
                "sX",
                "temperature",
                start + Duration::hours(5),
                None,
            )],
            // Off the grid spacing.
            vec![append_row(
                "s1",
                "temperature",
                start + Duration::minutes(90 + 4 * 60),
                Some(1.0),
            )],
            // Inside the existing grid (append-only).
            vec![append_row("s1", "temperature", start, Some(1.0))],
            // Runaway future timestamp (would NaN-fill gigabytes).
            vec![append_row(
                "s1",
                "temperature",
                start + Duration::hours(4 + MAX_APPEND_TIMESTAMPS as i64),
                Some(1.0),
            )],
            // One good row, one bad: nothing may be applied.
            vec![
                append_row("s1", "temperature", start + Duration::hours(9), Some(1.0)),
                append_row("sX", "temperature", start + Duration::hours(9), Some(1.0)),
            ],
        ];
        for batch in &bad_batches {
            assert!(ds.append_rows(batch).is_err(), "batch {batch:?}");
            assert_eq!(ds.timestamp_count(), 4);
            assert!(ds.append_bases().is_empty());
        }
        // Null values clear, and empty appends are no-ops.
        assert_eq!(ds.append_rows(&[]).unwrap(), AppendStats::default());
        ds.append_rows(&[append_row(
            "s1",
            "temperature",
            start + Duration::hours(4),
            None,
        )])
        .unwrap();
        assert_eq!(ds.timestamp_count(), 5);
        assert_eq!(ds.series(SensorIndex(0)).get(4), None);
    }

    #[test]
    fn append_bases_are_bounded_and_deduped() {
        let mut ds = small_dataset();
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        for i in 0..(MAX_APPEND_BASES + 3) {
            ds.append_rows(&[append_row(
                "s1",
                "temperature",
                start + Duration::hours(4 + i as i64),
                Some(i as f64),
            )])
            .unwrap();
        }
        assert_eq!(ds.append_bases().len(), MAX_APPEND_BASES);
        // Oldest bases were dropped; the newest base is the length before
        // the final append.
        assert_eq!(*ds.append_bases().last().unwrap(), ds.timestamp_count() - 1);
        // Slicing resets lineage.
        let sliced = ds.slice_time(start, start + Duration::hours(3)).unwrap();
        assert!(sliced.append_bases().is_empty());
    }

    /// A 2-sensor dataset over `len` hourly points whose values are pure
    /// functions of the *absolute* grid step, so appended tails and trimmed
    /// windows can be recomputed exactly.
    fn streaming_dataset(len: usize) -> Dataset {
        let mut b = DatasetBuilder::new("stream");
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        b.set_grid(TimeGrid::new(start, Duration::hours(1), len).unwrap());
        let s0 = b
            .add_sensor("s0", "temperature", GeoPoint::new_unchecked(43.0, -3.0))
            .unwrap();
        let s1 = b
            .add_sensor("s1", "humidity", GeoPoint::new_unchecked(43.001, -3.001))
            .unwrap();
        for (idx, s) in [(s0, 0usize), (s1, 1usize)] {
            let options: Vec<Option<f64>> = (0..len).map(|t| value_at(s, t)).collect();
            b.set_series(idx, TimeSeries::from_options(&options))
                .unwrap();
        }
        b.build().unwrap()
    }

    /// Sensor `s`'s value at absolute grid step `t` (`None` = missing).
    fn value_at(s: usize, t: usize) -> Option<f64> {
        match s {
            0 => Some((t as f64 * 0.17).sin() * 4.0),
            _ => (t % 5 != 2).then(|| (t as f64 * 0.05).cos() * 2.0 + 1.0),
        }
    }

    /// Append rows reproducing absolute steps `[from, to)` of the
    /// streaming fixture (every point mentioned, missing ones as explicit
    /// nulls, so the grid always grows through `to - 1`).
    fn streaming_rows(from: usize, to: usize) -> Vec<AppendRow> {
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        let mut rows = Vec::new();
        for (s, (id, attr)) in [("s0", "temperature"), ("s1", "humidity")]
            .iter()
            .enumerate()
        {
            for t in from..to {
                rows.push(AppendRow {
                    sensor: SensorId::new(*id),
                    attribute: attr.to_string(),
                    time: start + Duration::hours(t as i64),
                    value: value_at(s, t),
                });
            }
        }
        rows
    }

    #[test]
    fn retention_trims_whole_blocks_on_append() {
        let mut ds = streaming_dataset(3 * SERIES_BLOCK_LEN);
        ds.set_retention(RetentionPolicy::keep_last(SERIES_BLOCK_LEN));
        assert_eq!(ds.trimmed(), 0);
        let n = ds.timestamp_count();
        let stats = ds.append_rows(&streaming_rows(n, n + 4)).unwrap();
        assert_eq!(stats.new_timestamps, 4);
        // 3*B + 4 points, window B => expired = 2*B + 4, block-rounded to 2*B.
        assert_eq!(stats.trimmed_timestamps, 2 * SERIES_BLOCK_LEN);
        assert_eq!(ds.timestamp_count(), SERIES_BLOCK_LEN + 4);
        assert_eq!(ds.trimmed(), 2 * SERIES_BLOCK_LEN);
        assert_eq!(ds.trim_bases(), &[2 * SERIES_BLOCK_LEN]);
        // The grid start advanced and absolute timestamps are preserved.
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        assert_eq!(
            ds.grid().start(),
            start + Duration::hours(2 * SERIES_BLOCK_LEN as i64)
        );
        // Retained values match the absolute waveform at shifted indices.
        for s in 0..2 {
            let series = ds.series(SensorIndex(s as u32));
            for i in 0..ds.timestamp_count() {
                assert_eq!(
                    series.get(i),
                    value_at(s, i + 2 * SERIES_BLOCK_LEN),
                    "sensor {s} index {i}"
                );
            }
        }
        // append_bases were rebased: the pre-append length 3*B becomes B.
        assert_eq!(ds.append_bases(), &[SERIES_BLOCK_LEN]);
    }

    #[test]
    fn trim_expired_is_block_granular_and_never_empties() {
        let mut ds = streaming_dataset(SERIES_BLOCK_LEN + 10);
        // Sub-block expiry: nothing to trim yet.
        ds.set_retention(RetentionPolicy::keep_last(SERIES_BLOCK_LEN));
        assert_eq!(ds.trim_expired(), 0);
        assert!(ds.trim_bases().is_empty());
        // A window of 1 can trim at most the sealed blocks.
        ds.set_retention(RetentionPolicy::keep_last(1));
        assert_eq!(ds.trim_expired(), SERIES_BLOCK_LEN);
        assert_eq!(ds.timestamp_count(), 10);
        // Trimming again with everything expired leaves the tail: a trim
        // can never empty the dataset.
        assert_eq!(ds.trim_expired(), 0);
        assert_eq!(ds.timestamp_count(), 10);
        assert_eq!(ds.trimmed(), SERIES_BLOCK_LEN);
    }

    #[test]
    fn append_clone_shares_prefix_blocks() {
        // The finish_append regression shape: clone, append to the clone —
        // the stable prefix must stay pointer-shared (no deep copy).
        let ds = streaming_dataset(2 * SERIES_BLOCK_LEN + 20);
        let mut appended = ds.clone();
        let n = ds.timestamp_count();
        appended.append_rows(&streaming_rows(n, n + 8)).unwrap();
        for idx in ds.indices() {
            let before = ds.series(idx);
            let after = appended.series(idx);
            assert_eq!(
                after.shares_blocks_with(before),
                before.block_count(),
                "append copied the stable prefix of sensor {idx:?}"
            );
        }
        // The original is untouched.
        assert_eq!(ds.timestamp_count(), n);
    }

    #[test]
    fn slice_resets_trim_lineage() {
        let mut ds = streaming_dataset(2 * SERIES_BLOCK_LEN);
        ds.set_retention(RetentionPolicy::keep_last(SERIES_BLOCK_LEN));
        ds.trim_expired();
        assert_eq!(ds.trimmed(), SERIES_BLOCK_LEN);
        let sliced = ds
            .slice_time(ds.grid().start(), ds.grid().range().end)
            .unwrap();
        assert_eq!(sliced.trimmed(), 0);
        assert!(sliced.trim_bases().is_empty());
        // The policy itself is carried over.
        assert_eq!(*sliced.retention(), *ds.retention());
    }

    mod append_trim_proptest {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Random interleavings of appends and trims leave the dataset
            /// holding exactly the absolute-waveform window a naive mirror
            /// predicts — values, grid start, trim totals and base
            /// rebasing all agree.
            #[test]
            fn interleavings_match_naive_mirror(
                initial in 2usize..700,
                ops in proptest::collection::vec((any::<bool>(), 1usize..600), 1..8),
            ) {
                let mut ds = streaming_dataset(initial);
                // Mirror: absolute index of the window start + its length.
                let mut mirror_start = 0usize;
                let mut mirror_len = initial;
                for &(is_append, k) in &ops {
                    if is_append {
                        let k = k.min(200);
                        let abs_end = mirror_start + mirror_len;
                        let rows = streaming_rows(abs_end, abs_end + k);
                        let stats = ds.append_rows(&rows).unwrap();
                        prop_assert_eq!(stats.new_timestamps, k);
                        mirror_len += k;
                    } else {
                        let window = k;
                        ds.set_retention(RetentionPolicy::keep_last(window));
                        let trimmed = ds.trim_expired();
                        // Disarm the policy again so the mirror only has to
                        // model *explicit* trims, not append-time re-trims.
                        ds.set_retention(RetentionPolicy::unbounded());
                        let expired =
                            mirror_len.saturating_sub(window.max(1)).min(mirror_len - 1);
                        let expect = expired - expired % SERIES_BLOCK_LEN;
                        prop_assert_eq!(trimmed, expect);
                        mirror_start += expect;
                        mirror_len -= expect;
                    }
                    prop_assert_eq!(ds.timestamp_count(), mirror_len);
                    prop_assert_eq!(ds.trimmed(), mirror_start);
                    // Every retained value equals the absolute waveform.
                    for s in 0..2usize {
                        let series = ds.series(SensorIndex(s as u32));
                        for i in 0..mirror_len {
                            prop_assert_eq!(series.get(i), value_at(s, mirror_start + i));
                        }
                    }
                    // Grid start tracks the trim offset.
                    let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
                    prop_assert_eq!(
                        ds.grid().start(),
                        start + Duration::hours(mirror_start as i64)
                    );
                    // Bases stay within the window and below the length.
                    for &b in ds.append_bases() {
                        prop_assert!(b > 0 && b <= mirror_len);
                    }
                }
            }
        }
    }

    #[test]
    fn set_series_length_checked() {
        let mut b = DatasetBuilder::new("gen");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), 3).unwrap());
        let idx = b
            .add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        assert!(b
            .set_series(idx, TimeSeries::from_values(vec![1.0, 2.0]))
            .is_err());
        assert!(b
            .set_series(idx, TimeSeries::from_values(vec![1.0, 2.0, 3.0]))
            .is_ok());
    }
}
