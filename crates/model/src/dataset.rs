//! Datasets: a named collection of sensors and their aligned series.
//!
//! A [`Dataset`] corresponds to one uploaded dataset in Miscela-V — the
//! combination of the paper's `data.csv`, `location.csv` and `attribute.csv`.
//! All sensors share one [`TimeGrid`]; each sensor owns one [`TimeSeries`]
//! aligned to that grid.

use crate::attribute::{Attribute, AttributeId, AttributeRegistry};
use crate::error::ModelError;
use crate::geo::{BoundingBox, GeoPoint};
use crate::sensor::{Sensor, SensorId, SensorIndex};
use crate::series::TimeSeries;
use crate::stats::DatasetStats;
use crate::time::{TimeGrid, Timestamp};
use std::collections::HashMap;

/// A sensor together with its measurement series (borrowed view).
#[derive(Debug, Clone, Copy)]
pub struct SensorSeries<'a> {
    /// Dense index of the sensor within the dataset.
    pub index: SensorIndex,
    /// Sensor metadata.
    pub sensor: &'a Sensor,
    /// Measurement series aligned to the dataset grid.
    pub series: &'a TimeSeries,
}

/// An immutable, fully-built dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    attributes: AttributeRegistry,
    sensors: Vec<Sensor>,
    series: Vec<TimeSeries>,
    grid: TimeGrid,
    id_index: HashMap<(SensorId, AttributeId), SensorIndex>,
}

impl Dataset {
    /// Dataset name (used as the cache / store key, per Section 3.2 of the
    /// paper: "we can use the dataset without re-uploading by specifying the
    /// dataset name").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared time grid.
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// The attribute registry.
    pub fn attributes(&self) -> &AttributeRegistry {
        &self.attributes
    }

    /// Number of sensors.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Number of timestamps on the grid.
    pub fn timestamp_count(&self) -> usize {
        self.grid.len()
    }

    /// Total number of records (sensor, timestamp) pairs, counting missing
    /// values — this is how the paper's Section-4 record counts are defined
    /// (all timestamps × all sensors, with nulls where a sensor is silent).
    pub fn record_count(&self) -> usize {
        self.sensor_count() * self.timestamp_count()
    }

    /// Number of present (non-null) measurements.
    pub fn present_count(&self) -> usize {
        self.series.iter().map(|s| s.present_count()).sum()
    }

    /// Sensor metadata by dense index.
    pub fn sensor(&self, idx: SensorIndex) -> &Sensor {
        &self.sensors[idx.index()]
    }

    /// Series by dense index.
    pub fn series(&self, idx: SensorIndex) -> &TimeSeries {
        &self.series[idx.index()]
    }

    /// Sensor + series view by dense index.
    pub fn sensor_series(&self, idx: SensorIndex) -> SensorSeries<'_> {
        SensorSeries {
            index: idx,
            sensor: self.sensor(idx),
            series: self.series(idx),
        }
    }

    /// Looks up a sensor by its external id and attribute.
    pub fn index_of(&self, id: &SensorId, attribute: AttributeId) -> Option<SensorIndex> {
        self.id_index.get(&(id.clone(), attribute)).copied()
    }

    /// Looks up a sensor by external id, returning the first match of any
    /// attribute (convenient when ids are globally unique).
    pub fn index_of_id(&self, id: &SensorId) -> Option<SensorIndex> {
        self.sensors
            .iter()
            .position(|s| &s.id == id)
            .map(|i| SensorIndex(i as u32))
    }

    /// Iterates over all sensors with their series.
    pub fn iter(&self) -> impl Iterator<Item = SensorSeries<'_>> {
        self.sensors
            .iter()
            .enumerate()
            .map(|(i, sensor)| SensorSeries {
                index: SensorIndex(i as u32),
                sensor,
                series: &self.series[i],
            })
    }

    /// All dense sensor indices.
    pub fn indices(&self) -> impl Iterator<Item = SensorIndex> {
        (0..self.sensors.len() as u32).map(SensorIndex)
    }

    /// Sensors measuring a given attribute.
    pub fn sensors_with_attribute(
        &self,
        attribute: AttributeId,
    ) -> impl Iterator<Item = SensorSeries<'_>> {
        self.iter().filter(move |s| s.sensor.attribute == attribute)
    }

    /// Bounding box of all sensor locations (`None` when there are no
    /// sensors).
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::of(self.sensors.iter().map(|s| &s.location))
    }

    /// Summary statistics (Section-4 dataset table).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::of(self)
    }

    /// Restricts the dataset to the grid points falling inside
    /// `[start, end)`, producing a new dataset that shares sensor metadata.
    ///
    /// The COVID-19 demonstration scenario compares CAPs mined on the
    /// before/after windows of one dataset; this is the operation it uses.
    pub fn slice_time(&self, start: Timestamp, end: Timestamp) -> Result<Dataset, ModelError> {
        let range = crate::time::TimeRange::new(start, end)?;
        let (first, len) = self.grid.window(range);
        let grid = TimeGrid::new(
            self.grid.at(first).unwrap_or(start),
            self.grid.interval(),
            len,
        )?;
        let series = self
            .series
            .iter()
            .map(|s| s.window(first, len))
            .collect::<Vec<_>>();
        Ok(Dataset {
            name: format!("{}[{}..{})", self.name, start, end),
            attributes: self.attributes.clone(),
            sensors: self.sensors.clone(),
            series,
            grid,
            id_index: self.id_index.clone(),
        })
    }
}

/// Incrementally builds a [`Dataset`].
///
/// The builder mirrors the paper's upload order: declare attributes
/// (`attribute.csv`), declare sensors (`location.csv`), then add measurements
/// (`data.csv`). Measurements for undeclared sensors are rejected, matching
/// the validation Miscela-V performs at upload time.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    name: String,
    attributes: AttributeRegistry,
    sensors: Vec<Sensor>,
    id_index: HashMap<(SensorId, AttributeId), SensorIndex>,
    grid: Option<TimeGrid>,
    series: Vec<TimeSeries>,
}

impl DatasetBuilder {
    /// Creates a builder for a dataset with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DatasetBuilder {
            name: name.into(),
            attributes: AttributeRegistry::new(),
            sensors: Vec::new(),
            id_index: HashMap::new(),
            grid: None,
            series: Vec::new(),
        }
    }

    /// Declares an attribute (idempotent) and returns its id.
    pub fn add_attribute(&mut self, name: &str) -> AttributeId {
        self.attributes.register(Attribute::new(name))
    }

    /// Attribute registry built so far.
    pub fn attributes(&self) -> &AttributeRegistry {
        &self.attributes
    }

    /// Declares the time grid shared by every series. Must be called before
    /// measurements are added.
    pub fn set_grid(&mut self, grid: TimeGrid) -> &mut Self {
        let len = grid.len();
        self.grid = Some(grid);
        for s in &mut self.series {
            if s.len() != len {
                *s = TimeSeries::missing(len);
            }
        }
        self
    }

    /// Declares a sensor; errors when the same `(id, attribute)` pair is
    /// declared twice.
    pub fn add_sensor(
        &mut self,
        id: impl Into<SensorId>,
        attribute_name: &str,
        location: GeoPoint,
    ) -> Result<SensorIndex, ModelError> {
        let id = id.into();
        let attribute = self.add_attribute(attribute_name);
        let key = (id.clone(), attribute);
        if self.id_index.contains_key(&key) {
            return Err(ModelError::DuplicateSensor(format!(
                "{id}:{attribute_name}"
            )));
        }
        let idx = SensorIndex(self.sensors.len() as u32);
        self.sensors.push(Sensor::new(id, attribute, location));
        let len = self.grid.as_ref().map(|g| g.len()).unwrap_or(0);
        self.series.push(TimeSeries::missing(len));
        self.id_index.insert(key, idx);
        Ok(idx)
    }

    /// Number of sensors declared so far.
    pub fn sensor_count(&self) -> usize {
        self.sensors.len()
    }

    /// Adds one measurement for the sensor with external id `id` and
    /// attribute `attribute_name` at timestamp `t`.
    ///
    /// Errors when the sensor is unknown, the grid has not been declared, or
    /// `t` does not lie on the grid.
    pub fn add_measurement(
        &mut self,
        id: &SensorId,
        attribute_name: &str,
        t: Timestamp,
        value: Option<f64>,
    ) -> Result<(), ModelError> {
        let attribute = self
            .attributes
            .id_of(attribute_name)
            .ok_or_else(|| ModelError::UnknownAttribute(attribute_name.to_string()))?;
        let idx = self
            .id_index
            .get(&(id.clone(), attribute))
            .copied()
            .ok_or_else(|| ModelError::UnknownSensor(format!("{id}:{attribute_name}")))?;
        let grid = self
            .grid
            .as_ref()
            .ok_or_else(|| ModelError::EmptyDataset("grid not set".to_string()))?;
        let ti = grid
            .index_of(t)
            .ok_or_else(|| ModelError::TimestampOffGrid(t.format()))?;
        if let Some(v) = value {
            self.series[idx.index()].set(ti, v);
        } else {
            self.series[idx.index()].clear(ti);
        }
        Ok(())
    }

    /// Directly installs a full series for a sensor (used by the synthetic
    /// generators, which produce whole series at once).
    pub fn set_series(&mut self, idx: SensorIndex, series: TimeSeries) -> Result<(), ModelError> {
        let expected = self.grid.as_ref().map(|g| g.len()).unwrap_or(0);
        if series.len() != expected {
            return Err(ModelError::LengthMismatch {
                expected,
                actual: series.len(),
            });
        }
        self.series[idx.index()] = series;
        Ok(())
    }

    /// Finalizes the dataset. Errors when no grid was declared or there are
    /// no sensors.
    pub fn build(self) -> Result<Dataset, ModelError> {
        let grid = self
            .grid
            .ok_or_else(|| ModelError::EmptyDataset(format!("{}: grid not set", self.name)))?;
        if self.sensors.is_empty() {
            return Err(ModelError::EmptyDataset(format!(
                "{}: no sensors declared",
                self.name
            )));
        }
        for s in &self.series {
            if s.len() != grid.len() {
                return Err(ModelError::LengthMismatch {
                    expected: grid.len(),
                    actual: s.len(),
                });
            }
        }
        Ok(Dataset {
            name: self.name,
            attributes: self.attributes,
            sensors: self.sensors,
            series: self.series,
            grid,
            id_index: self.id_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn small_dataset() -> Dataset {
        let mut b = DatasetBuilder::new("test");
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        b.set_grid(TimeGrid::new(start, Duration::hours(1), 4).unwrap());
        b.add_sensor("s1", "temperature", GeoPoint::new_unchecked(43.0, -3.0))
            .unwrap();
        b.add_sensor("s2", "traffic", GeoPoint::new_unchecked(43.001, -3.001))
            .unwrap();
        for (i, v) in [9.0, 10.0, 11.0, 12.0].iter().enumerate() {
            b.add_measurement(
                &SensorId::new("s1"),
                "temperature",
                start + Duration::hours(i as i64),
                Some(*v),
            )
            .unwrap();
        }
        b.add_measurement(
            &SensorId::new("s2"),
            "traffic",
            start + Duration::hours(1),
            Some(100.0),
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_and_access() {
        let ds = small_dataset();
        assert_eq!(ds.name(), "test");
        assert_eq!(ds.sensor_count(), 2);
        assert_eq!(ds.timestamp_count(), 4);
        assert_eq!(ds.record_count(), 8);
        assert_eq!(ds.present_count(), 5);
        assert_eq!(ds.attributes().len(), 2);
        let i1 = ds
            .index_of(
                &SensorId::new("s1"),
                ds.attributes().id_of("temperature").unwrap(),
            )
            .unwrap();
        assert_eq!(ds.series(i1).get(2), Some(11.0));
        assert_eq!(ds.sensor(i1).id.as_str(), "s1");
        assert!(ds.index_of_id(&SensorId::new("s2")).is_some());
        assert!(ds.index_of_id(&SensorId::new("nope")).is_none());
    }

    #[test]
    fn duplicate_sensor_rejected() {
        let mut b = DatasetBuilder::new("dup");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), 2).unwrap());
        b.add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        let err = b
            .add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateSensor(_)));
        // Same id with a different attribute is fine (paper footnote 2).
        assert!(b
            .add_sensor("s1", "humidity", GeoPoint::new_unchecked(0.0, 0.0))
            .is_ok());
    }

    #[test]
    fn measurement_validation() {
        let mut b = DatasetBuilder::new("val");
        let start = Timestamp::EPOCH;
        b.set_grid(TimeGrid::new(start, Duration::hours(1), 2).unwrap());
        b.add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        // Unknown attribute.
        assert!(matches!(
            b.add_measurement(&SensorId::new("s1"), "light", start, Some(1.0)),
            Err(ModelError::UnknownAttribute(_))
        ));
        // Unknown sensor.
        b.add_attribute("light");
        assert!(matches!(
            b.add_measurement(&SensorId::new("sX"), "light", start, Some(1.0)),
            Err(ModelError::UnknownSensor(_))
        ));
        // Off-grid timestamp.
        assert!(matches!(
            b.add_measurement(
                &SensorId::new("s1"),
                "temperature",
                start + Duration::minutes(30),
                Some(1.0)
            ),
            Err(ModelError::TimestampOffGrid(_))
        ));
        // Null measurement clears.
        b.add_measurement(&SensorId::new("s1"), "temperature", start, Some(5.0))
            .unwrap();
        b.add_measurement(&SensorId::new("s1"), "temperature", start, None)
            .unwrap();
        let ds = b.build().unwrap();
        assert_eq!(ds.series(SensorIndex(0)).get(0), None);
    }

    #[test]
    fn build_requires_grid_and_sensors() {
        let b = DatasetBuilder::new("no-grid");
        assert!(matches!(b.build(), Err(ModelError::EmptyDataset(_))));

        let mut b = DatasetBuilder::new("no-sensors");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), 2).unwrap());
        assert!(matches!(b.build(), Err(ModelError::EmptyDataset(_))));
    }

    #[test]
    fn sensors_with_attribute_filter() {
        let ds = small_dataset();
        let temp = ds.attributes().id_of("temperature").unwrap();
        let v: Vec<_> = ds.sensors_with_attribute(temp).collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].sensor.id.as_str(), "s1");
    }

    #[test]
    fn bounding_box_covers_sensors() {
        let ds = small_dataset();
        let bb = ds.bounding_box().unwrap();
        assert!(bb.contains(&GeoPoint::new_unchecked(43.0005, -3.0005)));
    }

    #[test]
    fn slice_time_window() {
        let ds = small_dataset();
        let start = Timestamp::parse("2016-03-01 01:00:00").unwrap();
        let end = Timestamp::parse("2016-03-01 03:00:00").unwrap();
        let sliced = ds.slice_time(start, end).unwrap();
        assert_eq!(sliced.timestamp_count(), 2);
        assert_eq!(sliced.sensor_count(), 2);
        let i1 = sliced.index_of_id(&SensorId::new("s1")).unwrap();
        assert_eq!(sliced.series(i1).get(0), Some(10.0));
        assert_eq!(sliced.series(i1).get(1), Some(11.0));
        assert!(sliced.name().contains("test"));
    }

    #[test]
    fn set_series_length_checked() {
        let mut b = DatasetBuilder::new("gen");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), 3).unwrap());
        let idx = b
            .add_sensor("s1", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        assert!(b
            .set_series(idx, TimeSeries::from_values(vec![1.0, 2.0]))
            .is_err());
        assert!(b
            .set_series(idx, TimeSeries::from_values(vec![1.0, 2.0, 3.0]))
            .is_ok());
    }
}
