//! Error type shared by the data-model layer.

use std::fmt;

/// Errors raised while constructing or manipulating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A latitude or longitude was outside its valid range.
    InvalidCoordinate {
        /// Offending latitude value.
        lat: f64,
        /// Offending longitude value.
        lon: f64,
    },
    /// A timestamp string could not be parsed.
    InvalidTimestamp(String),
    /// A time grid was constructed with a non-positive interval.
    InvalidInterval(i64),
    /// A time range had `end < start`.
    InvalidRange {
        /// Range start (epoch seconds).
        start: i64,
        /// Range end (epoch seconds).
        end: i64,
    },
    /// A series value was supplied for a timestamp that is not on the grid.
    TimestampOffGrid(String),
    /// A sensor id was referenced but never declared.
    UnknownSensor(String),
    /// An attribute was referenced but never declared.
    UnknownAttribute(String),
    /// A sensor id was declared twice with conflicting metadata.
    DuplicateSensor(String),
    /// A dataset was built with no sensors or no timestamps.
    EmptyDataset(String),
    /// Series lengths within one dataset did not agree.
    LengthMismatch {
        /// Expected number of grid points.
        expected: usize,
        /// Number of values actually supplied.
        actual: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidCoordinate { lat, lon } => {
                write!(f, "invalid coordinate: lat={lat}, lon={lon}")
            }
            ModelError::InvalidTimestamp(s) => write!(f, "invalid timestamp: {s:?}"),
            ModelError::InvalidInterval(i) => write!(f, "invalid grid interval: {i} seconds"),
            ModelError::InvalidRange { start, end } => {
                write!(f, "invalid time range: start={start}, end={end}")
            }
            ModelError::TimestampOffGrid(s) => write!(f, "timestamp not on grid: {s}"),
            ModelError::UnknownSensor(s) => write!(f, "unknown sensor: {s}"),
            ModelError::UnknownAttribute(s) => write!(f, "unknown attribute: {s}"),
            ModelError::DuplicateSensor(s) => write!(f, "duplicate sensor: {s}"),
            ModelError::EmptyDataset(s) => write!(f, "empty dataset: {s}"),
            ModelError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "series length mismatch: expected {expected}, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = ModelError::InvalidCoordinate {
            lat: 99.0,
            lon: 200.0,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("200"));

        let e = ModelError::InvalidTimestamp("abc".to_string());
        assert!(e.to_string().contains("abc"));

        let e = ModelError::LengthMismatch {
            expected: 10,
            actual: 7,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::UnknownSensor("s1".into()));
    }
}
