//! # miscela-model
//!
//! Core data model for Miscela-RS, the Rust reproduction of the Miscela-V
//! smart-city analysis system (EDBT 2021).
//!
//! Smart-city data, as described in the paper, is produced by a set of
//! *sensors*. Each sensor:
//!
//! * measures exactly one *attribute* (temperature, traffic volume, PM2.5, ...),
//! * is located at a fixed geographic position (latitude / longitude),
//! * is synchronized with every other sensor: all sensors report at the same
//!   regular interval, and a sensor's value at a timestamp may be missing
//!   (`null` in the paper's `data.csv` format).
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace:
//!
//! * [`attribute`] — interned attribute names ([`Attribute`], [`AttributeId`],
//!   [`AttributeRegistry`]).
//! * [`sensor`] — sensor identity and metadata ([`SensorId`], [`Sensor`]).
//! * [`geo`] — geographic points, haversine distances, bounding boxes.
//! * [`time`] — timestamps, durations, and the regular [`time::TimeGrid`] that
//!   every series in a dataset shares.
//! * [`series`] — regular-interval time series with missing values, stored
//!   as structurally shared blocks (`Arc`'d immutable prefix blocks plus a
//!   mutable tail) so cloning and appending cost O(tail).
//! * [`retention`] — sliding-window [`RetentionPolicy`] bounding streaming
//!   datasets to a trailing window.
//! * [`dataset`] — a named collection of sensors and their series, mirroring
//!   the paper's uploaded dataset (`data.csv` + `location.csv` +
//!   `attribute.csv`).
//! * [`stats`] — summary statistics used by the Section-4 dataset table and
//!   the visualization layer.
//!
//! The crate is dependency-free so that every substrate (store, server,
//! mining engine, visualization) can share it cheaply.
//!
//! # Example
//!
//! ```
//! use miscela_model::{DatasetBuilder, Duration, GeoPoint, TimeGrid, TimeSeries, Timestamp};
//!
//! let mut builder = DatasetBuilder::new("demo");
//! let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
//! builder.set_grid(TimeGrid::new(start, Duration::hours(1), 4).unwrap());
//! let temp = builder
//!     .add_sensor("s0", "temperature", GeoPoint::new(43.46, -3.80).unwrap())
//!     .unwrap();
//! builder
//!     .set_series(temp, TimeSeries::from_values(vec![9.5, 10.1, 11.0, 11.6]))
//!     .unwrap();
//! let dataset = builder.build().unwrap();
//!
//! assert_eq!((dataset.sensor_count(), dataset.timestamp_count()), (1, 4));
//! assert_eq!(dataset.series(temp).get(2), Some(11.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod dataset;
pub mod error;
pub mod fingerprint;
pub mod geo;
pub mod retention;
pub mod sensor;
pub mod series;
pub mod stats;
pub mod time;

pub use attribute::{Attribute, AttributeId, AttributeRegistry};
pub use dataset::{
    AppendRow, AppendRowRef, AppendStats, Dataset, DatasetBuilder, SensorSeries, MAX_APPEND_BASES,
    MAX_APPEND_TIMESTAMPS,
};
pub use error::ModelError;
pub use fingerprint::SeriesFingerprinter;
pub use geo::{BoundingBox, GeoPoint};
pub use retention::RetentionPolicy;
pub use sensor::{Sensor, SensorId, SensorIndex};
pub use series::{interpolate_in_place, TimeSeries, SERIES_BLOCK_LEN};
pub use stats::{DatasetStats, SeriesSummary};
pub use time::{Duration, TimeGrid, TimeRange, Timestamp};
