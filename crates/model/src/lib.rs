//! # miscela-model
//!
//! Core data model for Miscela-RS, the Rust reproduction of the Miscela-V
//! smart-city analysis system (EDBT 2021).
//!
//! Smart-city data, as described in the paper, is produced by a set of
//! *sensors*. Each sensor:
//!
//! * measures exactly one *attribute* (temperature, traffic volume, PM2.5, ...),
//! * is located at a fixed geographic position (latitude / longitude),
//! * is synchronized with every other sensor: all sensors report at the same
//!   regular interval, and a sensor's value at a timestamp may be missing
//!   (`null` in the paper's `data.csv` format).
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace:
//!
//! * [`attribute`] — interned attribute names ([`Attribute`], [`AttributeId`],
//!   [`AttributeRegistry`]).
//! * [`sensor`] — sensor identity and metadata ([`SensorId`], [`Sensor`]).
//! * [`geo`] — geographic points, haversine distances, bounding boxes.
//! * [`time`] — timestamps, durations, and the regular [`time::TimeGrid`] that
//!   every series in a dataset shares.
//! * [`series`] — regular-interval time series with missing values.
//! * [`dataset`] — a named collection of sensors and their series, mirroring
//!   the paper's uploaded dataset (`data.csv` + `location.csv` +
//!   `attribute.csv`).
//! * [`stats`] — summary statistics used by the Section-4 dataset table and
//!   the visualization layer.
//!
//! The crate is dependency-free so that every substrate (store, server,
//! mining engine, visualization) can share it cheaply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod dataset;
pub mod error;
pub mod geo;
pub mod sensor;
pub mod series;
pub mod stats;
pub mod time;

pub use attribute::{Attribute, AttributeId, AttributeRegistry};
pub use dataset::{Dataset, DatasetBuilder, SensorSeries};
pub use error::ModelError;
pub use geo::{BoundingBox, GeoPoint};
pub use sensor::{Sensor, SensorId, SensorIndex};
pub use series::TimeSeries;
pub use stats::{DatasetStats, SeriesSummary};
pub use time::{Duration, TimeGrid, TimeRange, Timestamp};
