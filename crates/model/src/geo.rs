//! Geographic points, distances and bounding boxes.
//!
//! CAP mining's distance threshold η is defined over the great-circle
//! distance between sensor locations; the visualization layer needs bounding
//! boxes and simple projections. Everything here works in degrees of
//! latitude/longitude and kilometres.

use crate::error::ModelError;

/// Mean Earth radius in kilometres, used by the haversine formula.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A point on the Earth's surface (WGS-84 latitude / longitude, degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating the coordinate ranges.
    pub fn new(lat: f64, lon: f64) -> Result<Self, ModelError> {
        if !(-90.0..=90.0).contains(&lat)
            || !(-180.0..=180.0).contains(&lon)
            || lat.is_nan()
            || lon.is_nan()
        {
            return Err(ModelError::InvalidCoordinate { lat, lon });
        }
        Ok(GeoPoint { lat, lon })
    }

    /// Creates a point without validation. Intended for generated data whose
    /// ranges are known by construction.
    pub fn new_unchecked(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to another point, in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(self.lat, self.lon, other.lat, other.lon)
    }

    /// Initial bearing from this point towards `other`, in degrees clockwise
    /// from north, in `[0, 360)`. Used by the China wind-direction analysis
    /// (east–west vs north–south neighbour classification).
    pub fn bearing_to(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let brng = y.atan2(x).to_degrees();
        (brng + 360.0) % 360.0
    }

    /// Whether the segment between this point and `other` is oriented more
    /// east–west (horizontal) than north–south (vertical).
    ///
    /// The China demonstration scenario in the paper observes that
    /// horizontally close sensors correlate (wind advection) while vertically
    /// close sensors do not; this classifier is what the E10 experiment uses.
    pub fn is_horizontal_pair(&self, other: &GeoPoint) -> bool {
        let dlat = (self.lat - other.lat).abs();
        // Longitude degrees shrink with latitude; scale to compare distances.
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let dlon = (self.lon - other.lon).abs() * mean_lat.cos();
        dlon >= dlat
    }
}

/// Haversine distance between two lat/lon pairs, in kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    let a = a.clamp(0.0, 1.0);
    2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
}

/// An axis-aligned bounding box over latitude/longitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum latitude.
    pub min_lat: f64,
    /// Maximum latitude.
    pub max_lat: f64,
    /// Minimum longitude.
    pub min_lon: f64,
    /// Maximum longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// An "empty" box that any point will expand.
    pub fn empty() -> Self {
        BoundingBox {
            min_lat: f64::INFINITY,
            max_lat: f64::NEG_INFINITY,
            min_lon: f64::INFINITY,
            max_lon: f64::NEG_INFINITY,
        }
    }

    /// Builds the bounding box of an iterator of points. Returns `None` when
    /// the iterator is empty.
    pub fn of<'a, I: IntoIterator<Item = &'a GeoPoint>>(points: I) -> Option<Self> {
        let mut bb = BoundingBox::empty();
        let mut any = false;
        for p in points {
            bb.expand(p);
            any = true;
        }
        any.then_some(bb)
    }

    /// Expands the box to include `p`.
    pub fn expand(&mut self, p: &GeoPoint) {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// Expands the box outward by `margin_frac` of its width/height on every
    /// side (used by map rendering so markers do not touch the border).
    pub fn with_margin(&self, margin_frac: f64) -> Self {
        let dlat = (self.max_lat - self.min_lat).max(1e-6) * margin_frac;
        let dlon = (self.max_lon - self.min_lon).max(1e-6) * margin_frac;
        BoundingBox {
            min_lat: self.min_lat - dlat,
            max_lat: self.max_lat + dlat,
            min_lon: self.min_lon - dlon,
            max_lon: self.max_lon + dlon,
        }
    }

    /// Whether the box contains the point (inclusive).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new_unchecked(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Width (degrees of longitude) and height (degrees of latitude).
    pub fn extent(&self) -> (f64, f64) {
        (self.max_lon - self.min_lon, self.max_lat - self.min_lat)
    }

    /// Diagonal length of the box in kilometres.
    pub fn diagonal_km(&self) -> f64 {
        haversine_km(self.min_lat, self.min_lon, self.max_lat, self.max_lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_point_validation() {
        assert!(GeoPoint::new(43.46, -3.80).is_ok());
        assert!(GeoPoint::new(91.0, 0.0).is_err());
        assert!(GeoPoint::new(0.0, 181.0).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn haversine_zero_for_identical_points() {
        assert!(haversine_km(43.0, -3.0, 43.0, -3.0).abs() < 1e-9);
    }

    #[test]
    fn haversine_known_distance() {
        // Santander (43.4623, -3.8099) to Madrid (40.4168, -3.7038): ~339 km.
        let d = haversine_km(43.4623, -3.8099, 40.4168, -3.7038);
        assert!((d - 339.0).abs() < 5.0, "distance was {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let d1 = haversine_km(31.23, 121.47, 23.13, 113.26); // Shanghai <-> Guangzhou
        let d2 = haversine_km(23.13, 113.26, 31.23, 121.47);
        assert!((d1 - d2).abs() < 1e-9);
        assert!((d1 - 1213.0).abs() < 25.0, "Shanghai-Guangzhou was {d1}");
    }

    #[test]
    fn small_distances_are_accurate() {
        // Two Santander sensors ~170 m apart (from the paper's location.csv sample).
        let d = haversine_km(43.46192, -3.80176, 43.46212, -3.79979);
        assert!(d > 0.1 && d < 0.3, "distance was {d}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = GeoPoint::new_unchecked(30.0, 120.0);
        let north = GeoPoint::new_unchecked(31.0, 120.0);
        let east = GeoPoint::new_unchecked(30.0, 121.0);
        assert!(origin.bearing_to(&north).abs() < 1.0);
        assert!((origin.bearing_to(&east) - 90.0).abs() < 1.5);
    }

    #[test]
    fn horizontal_pair_classification() {
        let a = GeoPoint::new_unchecked(30.0, 120.0);
        let east = GeoPoint::new_unchecked(30.005, 120.5);
        let north = GeoPoint::new_unchecked(30.5, 120.005);
        assert!(a.is_horizontal_pair(&east));
        assert!(!a.is_horizontal_pair(&north));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [
            GeoPoint::new_unchecked(43.0, -3.0),
            GeoPoint::new_unchecked(44.0, -2.0),
            GeoPoint::new_unchecked(43.5, -2.5),
        ];
        let bb = BoundingBox::of(pts.iter()).unwrap();
        assert_eq!(bb.min_lat, 43.0);
        assert_eq!(bb.max_lat, 44.0);
        assert_eq!(bb.min_lon, -3.0);
        assert_eq!(bb.max_lon, -2.0);
        assert!(bb.contains(&GeoPoint::new_unchecked(43.5, -2.5)));
        assert!(!bb.contains(&GeoPoint::new_unchecked(45.0, -2.5)));
        let c = bb.center();
        assert!((c.lat - 43.5).abs() < 1e-9);
        assert!((c.lon + 2.5).abs() < 1e-9);
    }

    #[test]
    fn bounding_box_empty_iterator() {
        assert!(BoundingBox::of(std::iter::empty()).is_none());
    }

    #[test]
    fn bounding_box_margin_expands() {
        let bb = BoundingBox {
            min_lat: 43.0,
            max_lat: 44.0,
            min_lon: -3.0,
            max_lon: -2.0,
        };
        let m = bb.with_margin(0.1);
        assert!(m.min_lat < bb.min_lat);
        assert!(m.max_lat > bb.max_lat);
        assert!(m.min_lon < bb.min_lon);
        assert!(m.max_lon > bb.max_lon);
        let (w, h) = m.extent();
        assert!(w > 1.0 && h > 1.0);
    }
}
