//! Timestamps, durations, time ranges and regular time grids.
//!
//! The paper's `data.csv` uses `YYYY-MM-DD HH:MM:SS` timestamps and requires
//! that "timestamps must be the same time intervals" — i.e. every sensor in a
//! dataset reports on the same regular grid. This module implements a small
//! proleptic-Gregorian calendar (no external date/time crate), a [`Timestamp`]
//! stored as seconds since the Unix epoch, and the [`TimeGrid`] that datasets
//! and series share.

use crate::error::ModelError;
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds in one minute/hour/day, as `i64`.
pub const SECS_PER_MINUTE: i64 = 60;
/// Seconds in one hour.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A signed length of time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub i64);

impl Duration {
    /// A duration of `n` seconds.
    pub const fn seconds(n: i64) -> Self {
        Duration(n)
    }
    /// A duration of `n` minutes.
    pub const fn minutes(n: i64) -> Self {
        Duration(n * SECS_PER_MINUTE)
    }
    /// A duration of `n` hours.
    pub const fn hours(n: i64) -> Self {
        Duration(n * SECS_PER_HOUR)
    }
    /// A duration of `n` days.
    pub const fn days(n: i64) -> Self {
        Duration(n * SECS_PER_DAY)
    }
    /// The duration in whole seconds.
    pub const fn as_secs(self) -> i64 {
        self.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s % SECS_PER_DAY == 0 {
            write!(f, "{}d", s / SECS_PER_DAY)
        } else if s % SECS_PER_HOUR == 0 {
            write!(f, "{}h", s / SECS_PER_HOUR)
        } else if s % SECS_PER_MINUTE == 0 {
            write!(f, "{}m", s / SECS_PER_MINUTE)
        } else {
            write!(f, "{s}s")
        }
    }
}

/// An absolute point in time: seconds since `1970-01-01 00:00:00` (UTC,
/// proleptic Gregorian, no leap seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// Days from civil date algorithm (Howard Hinnant). Returns days since
/// 1970-01-01 for a (year, month, day) civil date.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: civil date for days since 1970-01-01.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Number of days in a month of a given year.
fn days_in_month(year: i64, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Timestamp {
    /// The Unix epoch.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw epoch seconds.
    pub const fn from_epoch_seconds(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Epoch seconds.
    pub const fn epoch_seconds(self) -> i64 {
        self.0
    }

    /// Builds a timestamp from a civil date and time of day.
    ///
    /// Returns an error when any component is out of range (e.g. month 13,
    /// Feb 30, hour 24).
    pub fn from_ymd_hms(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Result<Self, ModelError> {
        let valid = (1..=12).contains(&month)
            && day >= 1
            && day <= days_in_month(year, month)
            && hour < 24
            && minute < 60
            && second < 60;
        if !valid {
            return Err(ModelError::InvalidTimestamp(format!(
                "{year:04}-{month:02}-{day:02} {hour:02}:{minute:02}:{second:02}"
            )));
        }
        let days = days_from_civil(year, month, day);
        Ok(Timestamp(
            days * SECS_PER_DAY
                + hour as i64 * SECS_PER_HOUR
                + minute as i64 * SECS_PER_MINUTE
                + second as i64,
        ))
    }

    /// Parses the paper's `YYYY-MM-DD HH:MM:SS` format. A bare `YYYY-MM-DD`
    /// is accepted as midnight. A `T` separator is also tolerated.
    pub fn parse(s: &str) -> Result<Self, ModelError> {
        let s = s.trim();
        let err = || ModelError::InvalidTimestamp(s.to_string());
        let (date_part, time_part) = match s.split_once(' ').or_else(|| s.split_once('T')) {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dit = date_part.split('-');
        let year: i64 = dit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u32 = dit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u32 = dit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if dit.next().is_some() {
            return Err(err());
        }
        let (hour, minute, second) = match time_part {
            None => (0, 0, 0),
            Some(t) => {
                let mut tit = t.split(':');
                let h: u32 = tit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
                let m: u32 = tit.next().ok_or_else(err)?.parse().map_err(|_| err())?;
                let sec: u32 = match tit.next() {
                    Some(x) => x.parse().map_err(|_| err())?,
                    None => 0,
                };
                if tit.next().is_some() {
                    return Err(err());
                }
                (h, m, sec)
            }
        };
        Timestamp::from_ymd_hms(year, month, day, hour, minute, second).map_err(|_| err())
    }

    /// The civil date `(year, month, day)` of this timestamp.
    pub fn ymd(self) -> (i64, u32, u32) {
        civil_from_days(self.0.div_euclid(SECS_PER_DAY))
    }

    /// The time of day `(hour, minute, second)`.
    pub fn hms(self) -> (u32, u32, u32) {
        let sod = self.0.rem_euclid(SECS_PER_DAY);
        (
            (sod / SECS_PER_HOUR) as u32,
            ((sod % SECS_PER_HOUR) / SECS_PER_MINUTE) as u32,
            (sod % SECS_PER_MINUTE) as u32,
        )
    }

    /// Hour of day in `[0, 24)` as a float, including fractional minutes.
    /// Used by the diurnal-cycle data generators.
    pub fn hour_of_day(self) -> f64 {
        self.0.rem_euclid(SECS_PER_DAY) as f64 / SECS_PER_HOUR as f64
    }

    /// Day-of-week: 0 = Monday .. 6 = Sunday (1970-01-01 was a Thursday).
    pub fn weekday(self) -> u32 {
        let days = self.0.div_euclid(SECS_PER_DAY);
        ((days + 3).rem_euclid(7)) as u32
    }

    /// Whether the timestamp falls on a Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        self.weekday() >= 5
    }

    /// Formats as the paper's `YYYY-MM-DD HH:MM:SS`.
    pub fn format(self) -> String {
        let (y, mo, d) = self.ymd();
        let (h, mi, s) = self.hms();
        format!("{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format())
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A half-open time range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeRange {
    /// Creates a range; errors when `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Result<Self, ModelError> {
        if end < start {
            return Err(ModelError::InvalidRange {
                start: start.0,
                end: end.0,
            });
        }
        Ok(TimeRange { start, end })
    }

    /// Length of the range.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Whether `t` lies in `[start, end)`.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Intersection with another range, or `None` when disjoint.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(TimeRange { start, end })
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A regular grid of timestamps: `start`, `start + interval`, ...,
/// `start + (len-1) * interval`.
///
/// Every series in a dataset shares the dataset's grid, which is what makes
/// the paper's definition of co-evolution ("change values simultaneously",
/// i.e. at the same grid index) well-defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TimeGrid {
    start: Timestamp,
    interval: Duration,
    len: usize,
}

impl TimeGrid {
    /// Creates a grid; the interval must be strictly positive and `len` may
    /// be zero (an empty grid).
    pub fn new(start: Timestamp, interval: Duration, len: usize) -> Result<Self, ModelError> {
        if interval.0 <= 0 {
            return Err(ModelError::InvalidInterval(interval.0));
        }
        Ok(TimeGrid {
            start,
            interval,
            len,
        })
    }

    /// Builds the grid covering `[start, end)` at the given interval.
    pub fn covering(range: TimeRange, interval: Duration) -> Result<Self, ModelError> {
        if interval.0 <= 0 {
            return Err(ModelError::InvalidInterval(interval.0));
        }
        let span = range.duration().0;
        let len = (span + interval.0 - 1) / interval.0;
        TimeGrid::new(range.start, interval, len.max(0) as usize)
    }

    /// First timestamp of the grid.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Grid interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Timestamp at index `i`, if in range.
    pub fn at(&self, i: usize) -> Option<Timestamp> {
        (i < self.len).then(|| Timestamp(self.start.0 + i as i64 * self.interval.0))
    }

    /// Index of timestamp `t` if it lies exactly on the grid and in range.
    pub fn index_of(&self, t: Timestamp) -> Option<usize> {
        let off = t.0 - self.start.0;
        if off < 0 || self.interval.0 <= 0 {
            return None;
        }
        if off % self.interval.0 != 0 {
            return None;
        }
        let idx = (off / self.interval.0) as usize;
        (idx < self.len).then_some(idx)
    }

    /// Index of the grid point at or immediately before `t`, clamped to the
    /// grid. Returns `None` for an empty grid or `t` before the start.
    pub fn floor_index(&self, t: Timestamp) -> Option<usize> {
        if self.len == 0 || t < self.start {
            return None;
        }
        let idx = ((t.0 - self.start.0) / self.interval.0) as usize;
        Some(idx.min(self.len - 1))
    }

    /// The last timestamp on the grid (`None` for an empty grid).
    pub fn end(&self) -> Option<Timestamp> {
        if self.len == 0 {
            None
        } else {
            self.at(self.len - 1)
        }
    }

    /// The covered range `[start, last + interval)`.
    pub fn range(&self) -> TimeRange {
        TimeRange {
            start: self.start,
            end: Timestamp(self.start.0 + self.len as i64 * self.interval.0),
        }
    }

    /// Iterates over all grid timestamps.
    pub fn iter(&self) -> impl Iterator<Item = Timestamp> + '_ {
        (0..self.len).map(move |i| Timestamp(self.start.0 + i as i64 * self.interval.0))
    }

    /// Extends the grid by `additional` points in place, keeping the start
    /// and interval. This is the grid half of the dataset append path: new
    /// sensor readings beyond the current end lengthen the grid without
    /// rebuilding it (existing indices, and therefore every index-keyed
    /// structure downstream, stay valid).
    pub fn extend(&mut self, additional: usize) {
        self.len += additional;
    }

    /// Advances the grid start by `points` intervals in place, shortening
    /// the grid accordingly (clamped to the grid length). This is the grid
    /// half of sliding-window retention: trimming the oldest points moves
    /// the window's left edge forward without touching the interval or the
    /// (index-shifted) remainder.
    pub fn advance(&mut self, points: usize) {
        let points = points.min(self.len);
        self.start = Timestamp(self.start.0 + points as i64 * self.interval.0);
        self.len -= points;
    }

    /// The sub-grid of indices whose timestamps fall in `range`.
    /// Returns `(first_index, len)`.
    pub fn window(&self, range: TimeRange) -> (usize, usize) {
        if self.len == 0 {
            return (0, 0);
        }
        let first = if range.start <= self.start {
            0
        } else {
            let off = range.start.0 - self.start.0;
            ((off + self.interval.0 - 1) / self.interval.0) as usize
        };
        if first >= self.len {
            return (self.len, 0);
        }
        let mut last = self.len;
        if range.end < self.range().end {
            let off = range.end.0 - self.start.0;
            if off <= 0 {
                return (first, 0);
            }
            last = ((off + self.interval.0 - 1) / self.interval.0) as usize;
            last = last.min(self.len);
        }
        (first, last.saturating_sub(first))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2016, 3, 1),
            (2016, 2, 29),
            (2000, 2, 29),
            (1999, 12, 31),
            (2020, 6, 30),
            (2018, 10, 31),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0).unwrap().0, 0);
    }

    #[test]
    fn parse_paper_format() {
        let t = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        assert_eq!(t.format(), "2016-03-01 00:00:00");
        let t2 = Timestamp::parse("2016-03-01 01:00:00").unwrap();
        assert_eq!((t2 - t).as_secs(), 3600);
    }

    #[test]
    fn parse_date_only_and_t_separator() {
        let a = Timestamp::parse("2020-01-01").unwrap();
        let b = Timestamp::parse("2020-01-01T00:00:00").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.hms(), (0, 0, 0));
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "hello",
            "2016-13-01 00:00:00",
            "2016-02-30 00:00:00",
            "2016-03-01 24:00:00",
            "2016-03-01 00:61:00",
            "2016/03/01",
        ] {
            assert!(Timestamp::parse(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        let t = Timestamp::from_ymd_hms(2018, 10, 31, 23, 59, 59).unwrap();
        assert_eq!(Timestamp::parse(&t.format()).unwrap(), t);
    }

    #[test]
    fn weekday_and_weekend() {
        // 1970-01-01 was a Thursday (weekday 3).
        assert_eq!(Timestamp::EPOCH.weekday(), 3);
        // 2016-03-01 was a Tuesday.
        assert_eq!(Timestamp::parse("2016-03-01").unwrap().weekday(), 1);
        // 2016-03-05 was a Saturday.
        assert!(Timestamp::parse("2016-03-05").unwrap().is_weekend());
        assert!(!Timestamp::parse("2016-03-07").unwrap().is_weekend());
    }

    #[test]
    fn hour_of_day_fractional() {
        let t = Timestamp::parse("2016-03-01 06:30:00").unwrap();
        assert!((t.hour_of_day() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn duration_display() {
        assert_eq!(Duration::days(2).to_string(), "2d");
        assert_eq!(Duration::hours(3).to_string(), "3h");
        assert_eq!(Duration::minutes(5).to_string(), "5m");
        assert_eq!(Duration::seconds(7).to_string(), "7s");
    }

    #[test]
    fn time_range_basics() {
        let a = Timestamp::parse("2016-03-01").unwrap();
        let b = Timestamp::parse("2016-04-01").unwrap();
        let r = TimeRange::new(a, b).unwrap();
        assert!(r.contains(a));
        assert!(!r.contains(b));
        assert_eq!(r.duration(), Duration::days(31));
        assert!(TimeRange::new(b, a).is_err());
    }

    #[test]
    fn time_range_intersection() {
        let t = |s: &str| Timestamp::parse(s).unwrap();
        let r1 = TimeRange::new(t("2020-01-01"), t("2020-03-01")).unwrap();
        let r2 = TimeRange::new(t("2020-02-01"), t("2020-06-30")).unwrap();
        let r3 = TimeRange::new(t("2020-04-01"), t("2020-05-01")).unwrap();
        let i = r1.intersect(&r2).unwrap();
        assert_eq!(i.start, t("2020-02-01"));
        assert_eq!(i.end, t("2020-03-01"));
        assert!(r1.intersect(&r3).is_none());
    }

    #[test]
    fn grid_indexing() {
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        let grid = TimeGrid::new(start, Duration::hours(1), 24).unwrap();
        assert_eq!(grid.len(), 24);
        assert_eq!(grid.at(0), Some(start));
        assert_eq!(grid.at(23).unwrap().format(), "2016-03-01 23:00:00");
        assert_eq!(grid.at(24), None);
        assert_eq!(grid.index_of(start + Duration::hours(5)), Some(5));
        assert_eq!(grid.index_of(start + Duration::minutes(30)), None);
        assert_eq!(grid.index_of(start - Duration::hours(1)), None);
        assert_eq!(grid.index_of(start + Duration::hours(24)), None);
    }

    #[test]
    fn grid_rejects_bad_interval() {
        assert!(TimeGrid::new(Timestamp::EPOCH, Duration::seconds(0), 5).is_err());
        assert!(TimeGrid::new(Timestamp::EPOCH, Duration::seconds(-10), 5).is_err());
    }

    #[test]
    fn grid_covering_range() {
        let t = |s: &str| Timestamp::parse(s).unwrap();
        let r = TimeRange::new(t("2016-03-01"), t("2016-03-02")).unwrap();
        let g = TimeGrid::covering(r, Duration::hours(1)).unwrap();
        assert_eq!(g.len(), 24);
        assert_eq!(g.range().end, t("2016-03-02"));
    }

    #[test]
    fn grid_iter_and_end() {
        let g = TimeGrid::new(Timestamp::EPOCH, Duration::minutes(10), 3).unwrap();
        let ts: Vec<i64> = g.iter().map(|t| t.0).collect();
        assert_eq!(ts, vec![0, 600, 1200]);
        assert_eq!(g.end(), Some(Timestamp(1200)));
        let empty = TimeGrid::new(Timestamp::EPOCH, Duration::minutes(10), 0).unwrap();
        assert_eq!(empty.end(), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn grid_window_selection() {
        let start = Timestamp::parse("2020-01-01").unwrap();
        let g = TimeGrid::new(start, Duration::days(1), 10).unwrap();
        // Whole range.
        assert_eq!(g.window(g.range()), (0, 10));
        // Middle slice: days 3..6.
        let r = TimeRange::new(start + Duration::days(3), start + Duration::days(6)).unwrap();
        assert_eq!(g.window(r), (3, 3));
        // Range entirely before the grid.
        let before = TimeRange::new(start - Duration::days(5), start - Duration::days(1)).unwrap();
        assert_eq!(g.window(before).1, 0);
        // Range entirely after the grid.
        let after = TimeRange::new(start + Duration::days(20), start + Duration::days(30)).unwrap();
        assert_eq!(g.window(after).1, 0);
    }

    #[test]
    fn floor_index_clamps() {
        let g = TimeGrid::new(Timestamp(0), Duration::seconds(10), 5).unwrap();
        assert_eq!(g.floor_index(Timestamp(-1)), None);
        assert_eq!(g.floor_index(Timestamp(0)), Some(0));
        assert_eq!(g.floor_index(Timestamp(25)), Some(2));
        assert_eq!(g.floor_index(Timestamp(1000)), Some(4));
    }
}
