//! Sliding-window retention policies for streaming datasets.
//!
//! A smart-city feed is unbounded; the dataset holding it must not be. A
//! [`RetentionPolicy`] bounds a dataset to a trailing window — by point
//! count, by age relative to the newest grid point, or both — and the
//! dataset applies it after every append by trimming expired *whole storage
//! blocks* from the front (see [`crate::series::SERIES_BLOCK_LEN`] and
//! [`crate::Dataset::trim_expired`]). Block granularity keeps trims O(1)
//! per block (an `Arc` drop per series) and means a dataset may retain up
//! to one extra partial block beyond the configured window; the window is a
//! floor, never a ceiling violation in the other direction.

use crate::time::{Duration, TimeGrid};

/// A sliding-window retention policy: how much trailing history a dataset
/// keeps. The default ([`RetentionPolicy::unbounded`]) keeps everything.
///
/// When both bounds are set, the *stricter* one wins (the retained window
/// is the intersection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionPolicy {
    /// Keep at least the last `max_timestamps` grid points (`None` = no
    /// count bound).
    pub max_timestamps: Option<usize>,
    /// Keep at least the grid points younger than `max_age` relative to the
    /// newest grid point (`None` = no age bound).
    pub max_age: Option<Duration>,
}

impl RetentionPolicy {
    /// The policy that never expires anything.
    pub fn unbounded() -> Self {
        RetentionPolicy::default()
    }

    /// Keep (at least) the last `n` grid points.
    pub fn keep_last(n: usize) -> Self {
        RetentionPolicy {
            max_timestamps: Some(n.max(1)),
            max_age: None,
        }
    }

    /// Keep (at least) the grid points younger than `age` relative to the
    /// newest grid point.
    pub fn keep_age(age: Duration) -> Self {
        RetentionPolicy {
            max_timestamps: None,
            max_age: Some(age),
        }
    }

    /// Restricts this policy with a count bound too (builder-style).
    pub fn with_max_timestamps(mut self, n: usize) -> Self {
        self.max_timestamps = Some(n.max(1));
        self
    }

    /// Whether the policy never expires anything.
    pub fn is_unbounded(&self) -> bool {
        self.max_timestamps.is_none() && self.max_age.is_none()
    }

    /// How many *leading* grid points of `grid` fall outside the retained
    /// window. Never returns more than `grid.len() - 1`: retention by
    /// itself never empties a dataset (the newest point is always within
    /// any window).
    pub fn expired_points(&self, grid: &TimeGrid) -> usize {
        let len = grid.len();
        if len == 0 {
            return 0;
        }
        let mut expired = 0usize;
        if let Some(max_ts) = self.max_timestamps {
            expired = expired.max(len.saturating_sub(max_ts.max(1)));
        }
        if let (Some(max_age), Some(newest)) = (self.max_age, grid.end()) {
            // A point expires when it is strictly older than newest - age.
            let cutoff = newest.epoch_seconds() - max_age.as_secs();
            let start = grid.start().epoch_seconds();
            if cutoff > start {
                let interval = grid.interval().as_secs();
                // Count of indices i with start + i*interval < cutoff.
                let by_age = ((cutoff - start + interval - 1) / interval) as usize;
                expired = expired.max(by_age);
            }
        }
        expired.min(len - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn grid(len: usize) -> TimeGrid {
        TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), len).unwrap()
    }

    #[test]
    fn unbounded_expires_nothing() {
        let p = RetentionPolicy::unbounded();
        assert!(p.is_unbounded());
        assert_eq!(p.expired_points(&grid(1000)), 0);
        assert_eq!(p.expired_points(&grid(0)), 0);
    }

    #[test]
    fn count_bound_expires_the_leading_excess() {
        let p = RetentionPolicy::keep_last(300);
        assert!(!p.is_unbounded());
        assert_eq!(p.expired_points(&grid(1000)), 700);
        assert_eq!(p.expired_points(&grid(300)), 0);
        assert_eq!(p.expired_points(&grid(10)), 0);
        // keep_last(0) is clamped to keep at least one point.
        assert_eq!(RetentionPolicy::keep_last(0).expired_points(&grid(5)), 4);
    }

    #[test]
    fn age_bound_expires_points_older_than_the_window() {
        // 10 hourly points, newest at t=9h; a 3h window keeps t in [6h, 9h].
        let p = RetentionPolicy::keep_age(Duration::hours(3));
        assert_eq!(p.expired_points(&grid(10)), 6);
        // A window covering everything expires nothing.
        assert_eq!(
            RetentionPolicy::keep_age(Duration::hours(100)).expired_points(&grid(10)),
            0
        );
        // A zero-length window still keeps the newest point.
        assert_eq!(
            RetentionPolicy::keep_age(Duration::hours(0)).expired_points(&grid(10)),
            9
        );
    }

    #[test]
    fn both_bounds_intersect() {
        let p = RetentionPolicy::keep_age(Duration::hours(8)).with_max_timestamps(3);
        // Count bound (keep 3 => expire 7) is stricter than age (expire 1).
        assert_eq!(p.expired_points(&grid(10)), 7);
        let p = RetentionPolicy::keep_age(Duration::hours(2)).with_max_timestamps(300);
        // Age bound (expire 7) is stricter than count (expire 0).
        assert_eq!(p.expired_points(&grid(10)), 7);
    }
}
