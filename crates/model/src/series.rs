//! Regular-interval time series with missing values.
//!
//! A [`TimeSeries`] stores one value per grid point of its dataset's
//! [`crate::time::TimeGrid`]. Missing measurements (the `null` entries of the
//! paper's `data.csv`) are represented internally as `NaN` and exposed as
//! `Option<f64>`, which keeps storage at 8 bytes per point — relevant because
//! the China6 dataset has close to seven million records.

use std::fmt;

/// A fixed-length series of optionally-missing measurements aligned to a
/// dataset-wide time grid.
#[derive(Clone, PartialEq, Default)]
pub struct TimeSeries {
    values: Vec<f64>, // NaN encodes "missing"
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeSeries(len={}, present={})",
            self.len(),
            self.present_count()
        )
    }
}

impl TimeSeries {
    /// A series of `len` missing values.
    pub fn missing(len: usize) -> Self {
        TimeSeries {
            values: vec![f64::NAN; len],
        }
    }

    /// Builds a series from present values (no missing entries).
    pub fn from_values(values: Vec<f64>) -> Self {
        TimeSeries { values }
    }

    /// Builds a series from optional values.
    pub fn from_options(values: &[Option<f64>]) -> Self {
        TimeSeries {
            values: values.iter().map(|v| v.unwrap_or(f64::NAN)).collect(),
        }
    }

    /// Number of grid points (present or missing).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no points at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at index `i`, `None` when missing or out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        match self.values.get(i) {
            Some(v) if !v.is_nan() => Some(*v),
            _ => None,
        }
    }

    /// Raw value at index `i` (`NaN` when missing). Panics when out of range.
    #[inline]
    pub fn raw(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Sets the value at index `i`. Panics when out of range.
    pub fn set(&mut self, i: usize, value: f64) {
        self.values[i] = value;
    }

    /// Marks index `i` as missing. Panics when out of range.
    pub fn clear(&mut self, i: usize) {
        self.values[i] = f64::NAN;
    }

    /// Whether the value at `i` is present.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        self.values.get(i).map(|v| !v.is_nan()).unwrap_or(false)
    }

    /// Number of present (non-missing) values.
    pub fn present_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }

    /// Number of missing values.
    pub fn missing_count(&self) -> usize {
        self.len() - self.present_count()
    }

    /// Iterates over `Option<f64>` values in grid order.
    pub fn iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        self.values
            .iter()
            .map(|v| if v.is_nan() { None } else { Some(*v) })
    }

    /// Iterates over `(index, value)` for present values only.
    pub fn present(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .map(|(i, v)| (i, *v))
    }

    /// Underlying raw slice (missing values are `NaN`).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The difference `x[i] - x[i-1]`, `None` when either side is missing or
    /// `i == 0`. This is the quantity compared against the evolving rate ε.
    #[inline]
    pub fn delta(&self, i: usize) -> Option<f64> {
        if i == 0 || i >= self.len() {
            return None;
        }
        let (prev, cur) = (self.values[i - 1], self.values[i]);
        if prev.is_nan() || cur.is_nan() {
            None
        } else {
            Some(cur - prev)
        }
    }

    /// Minimum of present values.
    pub fn min(&self) -> Option<f64> {
        self.present().map(|(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Maximum of present values.
    pub fn max(&self) -> Option<f64> {
        self.present().map(|(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Mean of present values.
    pub fn mean(&self) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for (_, v) in self.present() {
            n += 1;
            sum += v;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Population standard deviation of present values.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let mut n = 0usize;
        let mut sq = 0.0;
        for (_, v) in self.present() {
            n += 1;
            sq += (v - mean) * (v - mean);
        }
        (n > 0).then(|| (sq / n as f64).sqrt())
    }

    /// Extracts the sub-series `[first, first + len)`, clamped to bounds.
    pub fn window(&self, first: usize, len: usize) -> TimeSeries {
        let first = first.min(self.values.len());
        let end = (first + len).min(self.values.len());
        TimeSeries {
            values: self.values[first..end].to_vec(),
        }
    }

    /// Fills missing values by linear interpolation between the nearest
    /// present neighbours; leading/trailing gaps are filled by extending the
    /// nearest present value. A fully-missing series is left untouched.
    ///
    /// The MISCELA pipeline applies this before linear segmentation so that
    /// isolated nulls do not break the segmentation step.
    pub fn interpolate_missing(&self) -> TimeSeries {
        let n = self.values.len();
        let mut out = self.values.clone();
        if self.present_count() == 0 {
            return TimeSeries { values: out };
        }
        let mut i = 0usize;
        while i < n {
            if !out[i].is_nan() {
                i += 1;
                continue;
            }
            // Find gap [i, j)
            let mut j = i;
            while j < n && out[j].is_nan() {
                j += 1;
            }
            let left = if i > 0 { Some(out[i - 1]) } else { None };
            let right = if j < n { Some(out[j]) } else { None };
            match (left, right) {
                (Some(l), Some(r)) => {
                    let gap = (j - i + 1) as f64;
                    for (k, slot) in out.iter_mut().enumerate().take(j).skip(i) {
                        let frac = (k - i + 1) as f64 / gap;
                        *slot = l + (r - l) * frac;
                    }
                }
                (Some(l), None) => {
                    for slot in out.iter_mut().take(j).skip(i) {
                        *slot = l;
                    }
                }
                (None, Some(r)) => {
                    for slot in out.iter_mut().take(j).skip(i) {
                        *slot = r;
                    }
                }
                (None, None) => {}
            }
            i = j;
        }
        TimeSeries { values: out }
    }

    /// Appends `n` missing points in place. This is the missing-value fill
    /// of the dataset append path: when the grid grows, every series is
    /// first padded with `null`s and the appended measurements then
    /// overwrite the points that actually arrived.
    pub fn extend_missing(&mut self, n: usize) {
        let new_len = self.values.len() + n;
        self.values.resize(new_len, f64::NAN);
    }

    /// Fraction of values that are present, in `[0, 1]` (1.0 for empty).
    pub fn coverage(&self) -> f64 {
        if self.is_empty() {
            1.0
        } else {
            self.present_count() as f64 / self.len() as f64
        }
    }
}

impl FromIterator<Option<f64>> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = Option<f64>>>(iter: T) -> Self {
        TimeSeries {
            values: iter.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect(),
        }
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        TimeSeries {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = TimeSeries::from_options(&[Some(1.0), None, Some(3.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Some(1.0));
        assert_eq!(s.get(1), None);
        assert_eq!(s.get(2), Some(3.0));
        assert_eq!(s.get(3), None);
        assert_eq!(s.present_count(), 2);
        assert_eq!(s.missing_count(), 1);
        assert!((s.coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_series() {
        let s = TimeSeries::missing(5);
        assert_eq!(s.present_count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_dev(), None);
    }

    #[test]
    fn set_and_clear() {
        let mut s = TimeSeries::missing(3);
        s.set(1, 2.5);
        assert_eq!(s.get(1), Some(2.5));
        assert!(s.is_present(1));
        s.clear(1);
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn delta_handles_missing_and_bounds() {
        let s = TimeSeries::from_options(&[Some(1.0), Some(3.0), None, Some(7.0)]);
        assert_eq!(s.delta(0), None);
        assert_eq!(s.delta(1), Some(2.0));
        assert_eq!(s.delta(2), None); // current missing
        assert_eq!(s.delta(3), None); // previous missing
        assert_eq!(s.delta(4), None); // out of range
    }

    #[test]
    fn statistics() {
        let s = TimeSeries::from_values(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_clamps() {
        let s = TimeSeries::from_values(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let w = s.window(1, 3);
        assert_eq!(w.as_slice(), &[1.0, 2.0, 3.0]);
        let w = s.window(3, 10);
        assert_eq!(w.as_slice(), &[3.0, 4.0]);
        let w = s.window(9, 2);
        assert!(w.is_empty());
    }

    #[test]
    fn interpolation_fills_interior_gap() {
        let s = TimeSeries::from_options(&[Some(0.0), None, None, Some(3.0)]);
        let f = s.interpolate_missing();
        assert_eq!(f.get(1), Some(1.0));
        assert_eq!(f.get(2), Some(2.0));
        assert_eq!(f.missing_count(), 0);
    }

    #[test]
    fn interpolation_extends_edges() {
        let s = TimeSeries::from_options(&[None, Some(2.0), None]);
        let f = s.interpolate_missing();
        assert_eq!(f.get(0), Some(2.0));
        assert_eq!(f.get(2), Some(2.0));
    }

    #[test]
    fn interpolation_leaves_all_missing_untouched() {
        let s = TimeSeries::missing(4);
        let f = s.interpolate_missing();
        assert_eq!(f.present_count(), 0);
    }

    #[test]
    fn from_iterators() {
        let a: TimeSeries = vec![1.0, 2.0].into_iter().collect();
        assert_eq!(a.len(), 2);
        let b: TimeSeries = vec![Some(1.0), None].into_iter().collect();
        assert_eq!(b.present_count(), 1);
    }

    #[test]
    fn present_iterator_skips_missing() {
        let s = TimeSeries::from_options(&[Some(1.0), None, Some(3.0)]);
        let v: Vec<(usize, f64)> = s.present().collect();
        assert_eq!(v, vec![(0, 1.0), (2, 3.0)]);
        let all: Vec<Option<f64>> = s.iter().collect();
        assert_eq!(all, vec![Some(1.0), None, Some(3.0)]);
    }
}
