//! Regular-interval time series with missing values, stored as structurally
//! shared blocks.
//!
//! A [`TimeSeries`] stores one value per grid point of its dataset's
//! [`crate::time::TimeGrid`]. Missing measurements (the `null` entries of the
//! paper's `data.csv`) are represented internally as `NaN` and exposed as
//! `Option<f64>`, which keeps storage at 8 bytes per point — relevant because
//! the China6 dataset has close to seven million records.
//!
//! # Shared-block storage
//!
//! Values are held as a sequence of sealed, immutable, `Arc`-shared *blocks*
//! of exactly [`SERIES_BLOCK_LEN`] points followed by one mutable *tail* of
//! fewer than [`SERIES_BLOCK_LEN`] points:
//!
//! ```text
//! [ Arc(block 0) | Arc(block 1) | ... | Arc(block k-1) | tail ]
//!    256 values     256 values           256 values      < 256 values
//! ```
//!
//! Cloning a series bumps the block reference counts and copies only the
//! tail, so cloning is O(tail) instead of O(series) — the representation
//! that makes the streaming server's per-append dataset copy cheap
//! (structural sharing / copy-on-extend). Appending pushes onto the tail
//! and seals it into a new block whenever it reaches [`SERIES_BLOCK_LEN`];
//! sealed blocks of the stable prefix are never touched, which appending
//! code asserts via [`TimeSeries::shares_blocks_with`]. Writing *into* a
//! sealed block (the dataset-build path, or appended measurements landing
//! in a freshly sealed block) copies that one block on demand when — and
//! only when — it is actually shared.
//!
//! [`SERIES_BLOCK_LEN`] is a multiple of 64, so block boundaries always fall
//! on 64-bit bitset word boundaries — the property the word-level evolving
//! scan in `miscela-core` relies on to process blocks without copying them
//! into one contiguous buffer.
//!
//! Sliding-window retention drops expired *whole blocks* from the front
//! ([`TimeSeries::drop_front_blocks`]); freeing a block is one `Arc` drop,
//! so trimming is O(blocks dropped) and never rewrites retained data.

use crate::fingerprint::SeriesFingerprinter;
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// Number of values per sealed block: 256 points (a multiple of 64, so
/// blocks always cover whole bitset words downstream).
pub const SERIES_BLOCK_LEN: usize = 256;

/// A fixed-length series of optionally-missing measurements aligned to a
/// dataset-wide time grid, stored as `Arc`-shared blocks plus a mutable
/// tail (see the module docs).
#[derive(Clone, Default)]
pub struct TimeSeries {
    /// Sealed blocks of exactly [`SERIES_BLOCK_LEN`] values each.
    blocks: Vec<Arc<Vec<f64>>>,
    /// The mutable tail: fewer than [`SERIES_BLOCK_LEN`] values.
    tail: Vec<f64>, // NaN encodes "missing"
    /// Rolling fingerprint of every value dropped from the front by
    /// sliding-window trims, in drop order. Resuming this digest over the
    /// retained values yields the fingerprint of the untrimmed *origin
    /// stream*, which is how a trimmed window stays addressable in
    /// content-keyed caches. Freshly built series (including windows and
    /// slices) start with an empty digest; equality ignores it.
    front: SeriesFingerprinter,
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimeSeries(len={}, present={}, blocks={})",
            self.len(),
            self.present_count(),
            self.blocks.len()
        )
    }
}

/// Element-wise value equality (`NaN != NaN`, matching the semantics the
/// pre-block representation inherited from `Vec<f64>`).
impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .chunks()
                .flatten()
                .zip(other.chunks().flatten())
                .all(|(a, b)| a == b)
    }
}

/// Linearly interpolates `NaN` runs in place: interior gaps between the
/// nearest present neighbours, leading/trailing gaps by extending the
/// nearest present value, an all-`NaN` slice untouched. This is the exact
/// missing-value fill of [`TimeSeries::interpolate_missing`], exposed on a
/// raw slice so the segmentation layer can fill an already-materialized
/// window without round-tripping through a second series.
pub fn interpolate_in_place(out: &mut [f64]) {
    let n = out.len();
    let mut i = 0usize;
    while i < n {
        if !out[i].is_nan() {
            i += 1;
            continue;
        }
        // Find gap [i, j)
        let mut j = i;
        while j < n && out[j].is_nan() {
            j += 1;
        }
        let left = if i > 0 { Some(out[i - 1]) } else { None };
        let right = if j < n { Some(out[j]) } else { None };
        match (left, right) {
            (Some(l), Some(r)) => {
                let gap = (j - i + 1) as f64;
                for (k, slot) in out.iter_mut().enumerate().take(j).skip(i) {
                    let frac = (k - i + 1) as f64 / gap;
                    *slot = l + (r - l) * frac;
                }
            }
            (Some(l), None) => {
                for slot in out.iter_mut().take(j).skip(i) {
                    *slot = l;
                }
            }
            (None, Some(r)) => {
                for slot in out.iter_mut().take(j).skip(i) {
                    *slot = r;
                }
            }
            (None, None) => {}
        }
        i = j;
    }
}

impl TimeSeries {
    /// A series of `len` missing values.
    pub fn missing(len: usize) -> Self {
        TimeSeries::from_values(vec![f64::NAN; len])
    }

    /// Builds a series from present values (no missing entries).
    pub fn from_values(mut values: Vec<f64>) -> Self {
        let sealed = (values.len() / SERIES_BLOCK_LEN) * SERIES_BLOCK_LEN;
        let tail = values.split_off(sealed);
        let blocks = values
            .chunks(SERIES_BLOCK_LEN)
            .map(|c| Arc::new(c.to_vec()))
            .collect();
        TimeSeries {
            blocks,
            tail,
            front: SeriesFingerprinter::new(),
        }
    }

    /// Builds a series from optional values.
    pub fn from_options(values: &[Option<f64>]) -> Self {
        TimeSeries::from_values(values.iter().map(|v| v.unwrap_or(f64::NAN)).collect())
    }

    /// Number of grid points (present or missing).
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len() * SERIES_BLOCK_LEN + self.tail.len()
    }

    /// Whether the series has no points at all.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.tail.is_empty()
    }

    /// Number of values covered by sealed blocks (always
    /// `len() - len() % SERIES_BLOCK_LEN`).
    #[inline]
    pub fn sealed_len(&self) -> usize {
        self.blocks.len() * SERIES_BLOCK_LEN
    }

    /// Number of sealed blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// How many leading sealed blocks `self` and `other` share *by pointer*
    /// (`Arc::ptr_eq`). This is the structural-sharing observable: after an
    /// append, every pre-existing sealed block must still be the same
    /// allocation — appends extend, they do not copy the stable prefix.
    pub fn shares_blocks_with(&self, other: &TimeSeries) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .take_while(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Drops the first `count` sealed blocks — the sliding-window trim.
    /// Indices shift down by `count * SERIES_BLOCK_LEN`; each dropped block
    /// is released with one `Arc` drop (other series revisions sharing it
    /// keep it alive). Panics when fewer than `count` blocks exist.
    pub fn drop_front_blocks(&mut self, count: usize) {
        assert!(
            count <= self.blocks.len(),
            "cannot drop {count} of {} blocks",
            self.blocks.len()
        );
        for block in &self.blocks[..count] {
            for &v in block.iter() {
                self.front.push(v);
            }
        }
        self.blocks.drain(..count);
    }

    /// Number of values dropped from the front of this series by
    /// [`TimeSeries::drop_front_blocks`] since it was built. Zero for a
    /// freshly constructed series (windows and slices reset lineage).
    pub fn dropped_front(&self) -> usize {
        self.front.len()
    }

    /// A clone of the front digest: the rolling fingerprint state of the
    /// [`TimeSeries::dropped_front`] values trimmed from this series.
    /// Resume it over the retained values (left to right) and its
    /// checkpoints are origin-stream fingerprints — the fingerprint the
    /// same extent would have had before any trim.
    pub fn front_digest(&self) -> SeriesFingerprinter {
        self.front.clone()
    }

    /// The storage chunks in order: every sealed block, then the tail (if
    /// non-empty). Chunk boundaries fall on multiples of
    /// [`SERIES_BLOCK_LEN`], hence on 64-bit word boundaries.
    pub fn chunks(&self) -> impl Iterator<Item = &[f64]> {
        self.blocks
            .iter()
            .map(|b| b.as_slice())
            .chain(std::iter::once(self.tail.as_slice()).filter(|t| !t.is_empty()))
    }

    /// The raw values as one contiguous slice, borrowed when the series
    /// occupies a single chunk and copied otherwise (missing values are
    /// `NaN`).
    pub fn contiguous(&self) -> Cow<'_, [f64]> {
        if self.blocks.is_empty() {
            Cow::Borrowed(&self.tail)
        } else if self.blocks.len() == 1 && self.tail.is_empty() {
            Cow::Borrowed(self.blocks[0].as_slice())
        } else {
            Cow::Owned(self.copy_range(0, self.len()))
        }
    }

    /// Copies all raw values into a fresh contiguous `Vec` (missing values
    /// are `NaN`).
    pub fn copy_values(&self) -> Vec<f64> {
        self.copy_range(0, self.len())
    }

    /// Copies the raw values of `[start, end)` (clamped to bounds) into a
    /// fresh contiguous `Vec`.
    pub fn copy_range(&self, start: usize, end: usize) -> Vec<f64> {
        let n = self.len();
        let start = start.min(n);
        let end = end.clamp(start, n);
        let mut out = Vec::with_capacity(end - start);
        let mut g = 0usize;
        for chunk in self.chunks() {
            let ce = g + chunk.len();
            if ce > start && g < end {
                let lo = start.saturating_sub(g);
                let hi = (end - g).min(chunk.len());
                out.extend_from_slice(&chunk[lo..hi]);
            }
            g = ce;
            if g >= end {
                break;
            }
        }
        out
    }

    /// Value at index `i`, `None` when missing or out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        if i >= self.len() {
            return None;
        }
        let v = self.raw(i);
        (!v.is_nan()).then_some(v)
    }

    /// Raw value at index `i` (`NaN` when missing). Panics when out of range.
    #[inline]
    pub fn raw(&self, i: usize) -> f64 {
        let sealed = self.sealed_len();
        if i < sealed {
            self.blocks[i / SERIES_BLOCK_LEN][i % SERIES_BLOCK_LEN]
        } else {
            self.tail[i - sealed]
        }
    }

    /// Sets the value at index `i`. Panics when out of range. Writing into a
    /// sealed block copies that block first when it is shared with another
    /// series (copy-on-write, O([`SERIES_BLOCK_LEN`]) worst case); writes
    /// into the tail or an unshared block are in place.
    pub fn set(&mut self, i: usize, value: f64) {
        let sealed = self.sealed_len();
        if i < sealed {
            Arc::make_mut(&mut self.blocks[i / SERIES_BLOCK_LEN])[i % SERIES_BLOCK_LEN] = value;
        } else {
            self.tail[i - sealed] = value;
        }
    }

    /// Marks index `i` as missing. Panics when out of range.
    pub fn clear(&mut self, i: usize) {
        self.set(i, f64::NAN);
    }

    /// Whether the value at `i` is present.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        i < self.len() && !self.raw(i).is_nan()
    }

    /// Number of present (non-missing) values.
    pub fn present_count(&self) -> usize {
        self.chunks().flatten().filter(|v| !v.is_nan()).count()
    }

    /// Number of missing values.
    pub fn missing_count(&self) -> usize {
        self.len() - self.present_count()
    }

    /// Iterates over `Option<f64>` values in grid order.
    pub fn iter(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        self.chunks()
            .flatten()
            .map(|v| if v.is_nan() { None } else { Some(*v) })
    }

    /// Iterates over `(index, value)` for present values only.
    pub fn present(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.chunks()
            .flatten()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .map(|(i, v)| (i, *v))
    }

    /// The difference `x[i] - x[i-1]`, `None` when either side is missing or
    /// `i == 0`. This is the quantity compared against the evolving rate ε.
    #[inline]
    pub fn delta(&self, i: usize) -> Option<f64> {
        if i == 0 || i >= self.len() {
            return None;
        }
        let (prev, cur) = (self.raw(i - 1), self.raw(i));
        if prev.is_nan() || cur.is_nan() {
            None
        } else {
            Some(cur - prev)
        }
    }

    /// Minimum of present values.
    pub fn min(&self) -> Option<f64> {
        self.present().map(|(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Maximum of present values.
    pub fn max(&self) -> Option<f64> {
        self.present().map(|(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Mean of present values.
    pub fn mean(&self) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for (_, v) in self.present() {
            n += 1;
            sum += v;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Population standard deviation of present values.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let mut n = 0usize;
        let mut sq = 0.0;
        for (_, v) in self.present() {
            n += 1;
            sq += (v - mean) * (v - mean);
        }
        (n > 0).then(|| (sq / n as f64).sqrt())
    }

    /// Extracts the sub-series `[first, first + len)`, clamped to bounds.
    /// The window is a fresh series (re-chunked from zero) — windows do not
    /// share blocks with their source.
    pub fn window(&self, first: usize, len: usize) -> TimeSeries {
        let first = first.min(self.len());
        let end = first.saturating_add(len).min(self.len());
        TimeSeries::from_values(self.copy_range(first, end))
    }

    /// Fills missing values by linear interpolation between the nearest
    /// present neighbours; leading/trailing gaps are filled by extending the
    /// nearest present value. A fully-missing series is left untouched.
    ///
    /// The MISCELA pipeline applies this before linear segmentation so that
    /// isolated nulls do not break the segmentation step.
    pub fn interpolate_missing(&self) -> TimeSeries {
        let mut out = self.copy_values();
        interpolate_in_place(&mut out);
        TimeSeries::from_values(out)
    }

    /// Appends `n` missing points in place, sealing the tail into shared
    /// blocks as it fills. This is the missing-value fill of the dataset
    /// append path: when the grid grows, every series is first padded with
    /// `null`s and the appended measurements then overwrite the points that
    /// actually arrived. Sealed prefix blocks are never touched.
    pub fn extend_missing(&mut self, n: usize) {
        self.tail.extend(std::iter::repeat_n(f64::NAN, n));
        self.seal_full_tail();
    }

    /// Seals the tail into blocks while it holds at least one full block of
    /// values, restoring the `tail.len() < SERIES_BLOCK_LEN` invariant.
    fn seal_full_tail(&mut self) {
        while self.tail.len() >= SERIES_BLOCK_LEN {
            let rest = self.tail.split_off(SERIES_BLOCK_LEN);
            let sealed = std::mem::replace(&mut self.tail, rest);
            self.blocks.push(Arc::new(sealed));
        }
    }

    /// Fraction of values that are present, in `[0, 1]` (1.0 for empty).
    pub fn coverage(&self) -> f64 {
        if self.is_empty() {
            1.0
        } else {
            self.present_count() as f64 / self.len() as f64
        }
    }
}

impl FromIterator<Option<f64>> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = Option<f64>>>(iter: T) -> Self {
        TimeSeries::from_values(iter.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect())
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        TimeSeries::from_values(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = TimeSeries::from_options(&[Some(1.0), None, Some(3.0)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Some(1.0));
        assert_eq!(s.get(1), None);
        assert_eq!(s.get(2), Some(3.0));
        assert_eq!(s.get(3), None);
        assert_eq!(s.present_count(), 2);
        assert_eq!(s.missing_count(), 1);
        assert!((s.coverage() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_series() {
        let s = TimeSeries::missing(5);
        assert_eq!(s.present_count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_dev(), None);
    }

    #[test]
    fn set_and_clear() {
        let mut s = TimeSeries::missing(3);
        s.set(1, 2.5);
        assert_eq!(s.get(1), Some(2.5));
        assert!(s.is_present(1));
        s.clear(1);
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn delta_handles_missing_and_bounds() {
        let s = TimeSeries::from_options(&[Some(1.0), Some(3.0), None, Some(7.0)]);
        assert_eq!(s.delta(0), None);
        assert_eq!(s.delta(1), Some(2.0));
        assert_eq!(s.delta(2), None); // current missing
        assert_eq!(s.delta(3), None); // previous missing
        assert_eq!(s.delta(4), None); // out of range
    }

    #[test]
    fn statistics() {
        let s = TimeSeries::from_values(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_clamps() {
        let s = TimeSeries::from_values(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let w = s.window(1, 3);
        assert_eq!(w.copy_values(), vec![1.0, 2.0, 3.0]);
        let w = s.window(3, 10);
        assert_eq!(w.copy_values(), vec![3.0, 4.0]);
        let w = s.window(9, 2);
        assert!(w.is_empty());
    }

    #[test]
    fn interpolation_fills_interior_gap() {
        let s = TimeSeries::from_options(&[Some(0.0), None, None, Some(3.0)]);
        let f = s.interpolate_missing();
        assert_eq!(f.get(1), Some(1.0));
        assert_eq!(f.get(2), Some(2.0));
        assert_eq!(f.missing_count(), 0);
    }

    #[test]
    fn interpolation_extends_edges() {
        let s = TimeSeries::from_options(&[None, Some(2.0), None]);
        let f = s.interpolate_missing();
        assert_eq!(f.get(0), Some(2.0));
        assert_eq!(f.get(2), Some(2.0));
    }

    #[test]
    fn interpolation_leaves_all_missing_untouched() {
        let s = TimeSeries::missing(4);
        let f = s.interpolate_missing();
        assert_eq!(f.present_count(), 0);
    }

    #[test]
    fn from_iterators() {
        let a: TimeSeries = vec![1.0, 2.0].into_iter().collect();
        assert_eq!(a.len(), 2);
        let b: TimeSeries = vec![Some(1.0), None].into_iter().collect();
        assert_eq!(b.present_count(), 1);
    }

    #[test]
    fn present_iterator_skips_missing() {
        let s = TimeSeries::from_options(&[Some(1.0), None, Some(3.0)]);
        let v: Vec<(usize, f64)> = s.present().collect();
        assert_eq!(v, vec![(0, 1.0), (2, 3.0)]);
        let all: Vec<Option<f64>> = s.iter().collect();
        assert_eq!(all, vec![Some(1.0), None, Some(3.0)]);
    }

    // ---- shared-block storage -------------------------------------------

    /// A multi-block fixture: 2 sealed blocks plus a 40-point tail.
    fn long_series() -> TimeSeries {
        TimeSeries::from_values(
            (0..2 * SERIES_BLOCK_LEN + 40)
                .map(|i| (i as f64 * 0.37).sin() * 3.0)
                .collect(),
        )
    }

    #[test]
    fn blocks_seal_at_block_len_and_chunks_are_aligned() {
        let s = long_series();
        assert_eq!(s.block_count(), 2);
        assert_eq!(s.sealed_len(), 2 * SERIES_BLOCK_LEN);
        let chunks: Vec<usize> = s.chunks().map(|c| c.len()).collect();
        assert_eq!(chunks, vec![SERIES_BLOCK_LEN, SERIES_BLOCK_LEN, 40]);
        // Values round-trip exactly through the chunked representation.
        let flat = s.copy_values();
        assert_eq!(flat.len(), s.len());
        for (i, v) in flat.iter().enumerate() {
            assert_eq!(s.raw(i), *v, "index {i}");
        }
        // Short series stay tail-only and borrow contiguously.
        let short = TimeSeries::from_values(vec![1.0; 40]);
        assert_eq!(short.block_count(), 0);
        assert!(matches!(short.contiguous(), Cow::Borrowed(_)));
        // An exactly-one-block series also borrows.
        let one = TimeSeries::from_values(vec![1.0; SERIES_BLOCK_LEN]);
        assert_eq!(one.block_count(), 1);
        assert!(one.tail.is_empty());
        assert!(matches!(one.contiguous(), Cow::Borrowed(_)));
        // Multi-chunk series materialize.
        assert!(matches!(s.contiguous(), Cow::Owned(_)));
        assert_eq!(&s.contiguous()[..], &flat[..]);
    }

    #[test]
    fn clones_share_blocks_and_extends_do_not_copy_the_prefix() {
        let mut s = long_series();
        let snapshot = s.clone();
        assert_eq!(snapshot.shares_blocks_with(&s), 2);
        // Extending the clone seals new blocks but the pre-existing sealed
        // prefix stays pointer-identical in both directions.
        s.extend_missing(SERIES_BLOCK_LEN);
        assert_eq!(s.block_count(), 3);
        assert_eq!(s.shares_blocks_with(&snapshot), 2);
        // Tail writes never touch shared blocks.
        let last = s.len() - 1;
        s.set(last, 42.0);
        assert_eq!(s.shares_blocks_with(&snapshot), 2);
        // Writing into a *shared* sealed block copies only that block.
        s.set(0, 99.0);
        assert_eq!(s.shares_blocks_with(&snapshot), 0);
        assert_eq!(s.shares_blocks_with(&snapshot.clone()), 0);
        assert_eq!(snapshot.get(0), long_series().get(0));
        assert_eq!(s.get(0), Some(99.0));
        // Block 1 is still shared by pointer even though block 0 diverged.
        assert!(Arc::ptr_eq(&s.blocks[1], &snapshot.blocks[1]));
    }

    #[test]
    fn drop_front_blocks_trims_the_window() {
        let mut s = long_series();
        let expect: Vec<f64> = s.copy_range(SERIES_BLOCK_LEN, s.len());
        let before = s.clone();
        s.drop_front_blocks(1);
        assert_eq!(s.len(), SERIES_BLOCK_LEN + 40);
        assert_eq!(s.copy_values(), expect);
        // The retained block is still shared with the pre-trim clone.
        assert!(Arc::ptr_eq(&s.blocks[0], &before.blocks[1]));
        s.drop_front_blocks(1);
        assert_eq!(s.len(), 40);
        assert_eq!(s.block_count(), 0);
    }

    #[test]
    fn drop_front_blocks_streams_the_front_digest() {
        let full = long_series();
        let mut s = full.clone();
        assert_eq!(s.dropped_front(), 0);
        s.drop_front_blocks(1);
        assert_eq!(s.dropped_front(), SERIES_BLOCK_LEN);
        s.drop_front_blocks(1);
        assert_eq!(s.dropped_front(), 2 * SERIES_BLOCK_LEN);
        // Resuming the digest over the retained values reproduces the
        // origin-stream fingerprint: the trim is invisible to checkpoints.
        let mut resumed = s.front_digest();
        for chunk in s.chunks() {
            for &v in chunk {
                resumed.push(v);
            }
        }
        let mut origin = SeriesFingerprinter::new();
        for chunk in full.chunks() {
            for &v in chunk {
                origin.push(v);
            }
        }
        assert_eq!(resumed.checkpoint(), origin.checkpoint());
        // Fresh constructions (windows included) reset lineage.
        assert_eq!(s.window(0, 10).dropped_front(), 0);
        assert_eq!(TimeSeries::from_values(s.copy_values()).dropped_front(), 0);
        // Equality ignores the digest.
        assert_eq!(s, TimeSeries::from_values(s.copy_values()));
    }

    #[test]
    #[should_panic(expected = "cannot drop")]
    fn drop_front_blocks_rejects_overshoot() {
        let mut s = long_series();
        s.drop_front_blocks(3);
    }

    #[test]
    fn copy_range_spans_chunks() {
        let s = long_series();
        let n = s.len();
        for (start, end) in [
            (0, n),
            (10, 20),
            (SERIES_BLOCK_LEN - 3, SERIES_BLOCK_LEN + 5),
            (2 * SERIES_BLOCK_LEN - 1, n),
            (n - 1, n),
            (n, n + 10),
            (7, 7),
        ] {
            let got = s.copy_range(start, end);
            let expect: Vec<f64> = (start.min(n)..end.min(n)).map(|i| s.raw(i)).collect();
            assert_eq!(got, expect, "range {start}..{end}");
        }
    }

    #[test]
    fn equality_is_element_wise_and_nan_sensitive() {
        let a = long_series();
        let b = long_series();
        assert_eq!(a, b);
        let mut c = long_series();
        c.set(SERIES_BLOCK_LEN + 3, 1234.5);
        assert_ne!(a, c);
        // NaN != NaN: a series with a missing value is not equal to itself's
        // clone under PartialEq, exactly like the old Vec<f64> derive.
        let mut d = long_series();
        d.clear(5);
        assert_ne!(d, d.clone());
        // Different lengths are never equal.
        assert_ne!(a, a.window(0, a.len() - 1));
    }

    #[test]
    fn interpolate_in_place_matches_interpolate_missing() {
        let fixtures = [
            vec![Some(0.0), None, None, Some(3.0)],
            vec![None, Some(2.0), None],
            vec![None, None],
            vec![Some(1.0)],
            (0..600)
                .map(|i| ((i * 3 + 1) % 7 != 0).then_some((i as f64 * 0.2).cos()))
                .collect::<Vec<_>>(),
        ];
        for options in &fixtures {
            let s = TimeSeries::from_options(options);
            let mut flat = s.copy_values();
            interpolate_in_place(&mut flat);
            let via_series = s.interpolate_missing();
            // Compare as Options: raw f64 equality would fail on NaN slots.
            let from_flat: Vec<Option<f64>> = TimeSeries::from_values(flat).iter().collect();
            let from_series: Vec<Option<f64>> = via_series.iter().collect();
            assert_eq!(from_flat, from_series);
        }
    }
}
