//! Dataset and series summary statistics.
//!
//! [`DatasetStats`] reproduces the rows of the paper's Section-4 dataset
//! description (number of sensors, number of records, attribute inventory,
//! covered period); [`SeriesSummary`] backs the chart axes and tooltips of
//! the visualization layer.

use crate::attribute::AttributeId;
use crate::dataset::Dataset;
use crate::series::TimeSeries;
use crate::time::TimeRange;
use std::collections::BTreeMap;
use std::fmt;

/// Per-series summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Number of grid points.
    pub len: usize,
    /// Number of present values.
    pub present: usize,
    /// Minimum present value.
    pub min: Option<f64>,
    /// Maximum present value.
    pub max: Option<f64>,
    /// Mean of present values.
    pub mean: Option<f64>,
    /// Population standard deviation of present values.
    pub std_dev: Option<f64>,
}

impl SeriesSummary {
    /// Computes the summary of a series.
    pub fn of(series: &TimeSeries) -> Self {
        SeriesSummary {
            len: series.len(),
            present: series.present_count(),
            min: series.min(),
            max: series.max(),
            mean: series.mean(),
            std_dev: series.std_dev(),
        }
    }

    /// Fraction of present values (1.0 for an empty series).
    pub fn coverage(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.present as f64 / self.len as f64
        }
    }
}

/// Dataset-level statistics: the Section-4 table row for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of sensors.
    pub sensors: usize,
    /// Number of records (sensors × timestamps), counting nulls, matching
    /// how the paper reports record counts.
    pub records: usize,
    /// Number of present (non-null) measurements.
    pub present_records: usize,
    /// Number of timestamps on the grid.
    pub timestamps: usize,
    /// Grid interval in seconds.
    pub interval_seconds: i64,
    /// Covered time range.
    pub period: Option<TimeRange>,
    /// Attribute names in registration order.
    pub attribute_names: Vec<String>,
    /// Sensor count per attribute.
    pub sensors_per_attribute: BTreeMap<String, usize>,
    /// Mean per-series coverage (fraction of non-null values).
    pub mean_coverage: f64,
}

impl DatasetStats {
    /// Computes the statistics of a dataset.
    pub fn of(ds: &Dataset) -> Self {
        let mut per_attr: BTreeMap<String, usize> = BTreeMap::new();
        let mut coverage_sum = 0.0;
        for ss in ds.iter() {
            let name = ds.attributes().name_of(ss.sensor.attribute).to_string();
            *per_attr.entry(name).or_insert(0) += 1;
            coverage_sum += ss.series.coverage();
        }
        let mean_coverage = if ds.sensor_count() == 0 {
            1.0
        } else {
            coverage_sum / ds.sensor_count() as f64
        };
        let period = if ds.grid().is_empty() {
            None
        } else {
            Some(ds.grid().range())
        };
        DatasetStats {
            name: ds.name().to_string(),
            sensors: ds.sensor_count(),
            records: ds.record_count(),
            present_records: ds.present_count(),
            timestamps: ds.timestamp_count(),
            interval_seconds: ds.grid().interval().as_secs(),
            period,
            attribute_names: ds.attributes().names().map(|s| s.to_string()).collect(),
            sensors_per_attribute: per_attr,
            mean_coverage,
        }
    }

    /// Number of sensors measuring the given attribute id in `ds`.
    pub fn sensors_for(ds: &Dataset, attribute: AttributeId) -> usize {
        ds.iter()
            .filter(|s| s.sensor.attribute == attribute)
            .count()
    }

    /// Renders a one-line table row in the style of the Section-4 dataset
    /// list: `name | sensors | records | period | attributes`.
    pub fn table_row(&self) -> String {
        let period = self
            .period
            .map(|r| format!("{} .. {}", r.start, r.end))
            .unwrap_or_else(|| "-".to_string());
        format!(
            "{} | {} sensors | {} records | {} | {}",
            self.name,
            self.sensors,
            self.records,
            period,
            self.attribute_names.join(", ")
        )
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataset: {}", self.name)?;
        writeln!(f, "  sensors:    {}", self.sensors)?;
        writeln!(
            f,
            "  records:    {} ({} non-null, {:.1}% coverage)",
            self.records,
            self.present_records,
            self.mean_coverage * 100.0
        )?;
        writeln!(
            f,
            "  timestamps: {} (interval {}s)",
            self.timestamps, self.interval_seconds
        )?;
        if let Some(p) = self.period {
            writeln!(f, "  period:     {p}")?;
        }
        writeln!(f, "  attributes: {}", self.attribute_names.join(", "))?;
        for (attr, n) in &self.sensors_per_attribute {
            writeln!(f, "    {attr}: {n} sensors")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::geo::GeoPoint;
    use crate::time::{Duration, TimeGrid, Timestamp};

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new("stats-test");
        let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
        b.set_grid(TimeGrid::new(start, Duration::hours(1), 10).unwrap());
        let s1 = b
            .add_sensor("s1", "temperature", GeoPoint::new_unchecked(43.0, -3.0))
            .unwrap();
        let s2 = b
            .add_sensor("s2", "temperature", GeoPoint::new_unchecked(43.1, -3.1))
            .unwrap();
        let s3 = b
            .add_sensor("s3", "traffic", GeoPoint::new_unchecked(43.2, -3.2))
            .unwrap();
        b.set_series(
            s1,
            TimeSeries::from_values((0..10).map(|i| i as f64).collect()),
        )
        .unwrap();
        b.set_series(s2, TimeSeries::missing(10)).unwrap();
        b.set_series(s3, TimeSeries::from_values(vec![1.0; 10]))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dataset_stats_counts() {
        let ds = dataset();
        let st = ds.stats();
        assert_eq!(st.sensors, 3);
        assert_eq!(st.timestamps, 10);
        assert_eq!(st.records, 30);
        assert_eq!(st.present_records, 20);
        assert_eq!(st.interval_seconds, 3600);
        assert_eq!(st.attribute_names, vec!["temperature", "traffic"]);
        assert_eq!(st.sensors_per_attribute["temperature"], 2);
        assert_eq!(st.sensors_per_attribute["traffic"], 1);
        assert!((st.mean_coverage - 2.0 / 3.0).abs() < 1e-9);
        assert!(st.period.is_some());
    }

    #[test]
    fn series_summary_values() {
        let s = TimeSeries::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        let sum = SeriesSummary::of(&s);
        assert_eq!(sum.len, 4);
        assert_eq!(sum.present, 4);
        assert_eq!(sum.min, Some(1.0));
        assert_eq!(sum.max, Some(4.0));
        assert_eq!(sum.mean, Some(2.5));
        assert!(sum.coverage() > 0.999);
    }

    #[test]
    fn table_row_mentions_key_fields() {
        let ds = dataset();
        let row = ds.stats().table_row();
        assert!(row.contains("stats-test"));
        assert!(row.contains("3 sensors"));
        assert!(row.contains("30 records"));
        assert!(row.contains("temperature"));
    }

    #[test]
    fn display_is_multiline() {
        let text = dataset().stats().to_string();
        assert!(text.lines().count() >= 6);
        assert!(text.contains("traffic"));
    }
}
