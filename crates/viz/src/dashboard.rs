//! The Figure-3 dashboard: map panels plus chart panels in one document.
//!
//! Figure 3 of the paper shows four panels: (A)/(B) sensor locations on a
//! map with the clicked sensor's correlated partners highlighted, and
//! (C)/(D) the temporal behaviour of the highlighted sensors at two zoom
//! levels. [`Dashboard::render_for_cap`] reproduces that layout for one CAP.

use crate::chart::{ChartConfig, TimeSeriesChart};
use crate::interaction::InteractionState;
use crate::map::{MapConfig, MapView};
use crate::svg::SvgDocument;
use miscela_core::{Cap, CapSet};
use miscela_model::Dataset;

/// Composes map and chart panels into one SVG document.
pub struct Dashboard<'a> {
    dataset: &'a Dataset,
    caps: &'a CapSet,
}

impl<'a> Dashboard<'a> {
    /// Creates a dashboard over a dataset and its mining result.
    pub fn new(dataset: &'a Dataset, caps: &'a CapSet) -> Self {
        Dashboard { dataset, caps }
    }

    /// Renders the Figure-3 layout for one CAP: the map with the CAP's first
    /// sensor selected (so its partners are highlighted), a full-range chart
    /// of the CAP's sensors, and a zoomed chart around the densest run of
    /// co-evolving timestamps.
    pub fn render_for_cap(&self, cap: &Cap) -> SvgDocument {
        let selected = cap.sensors().first().copied();
        let map = MapView::new(
            self.dataset,
            self.caps,
            MapConfig {
                width: 760,
                height: 420,
                ..MapConfig::default()
            },
        )
        .render(selected);

        let chart_cfg = ChartConfig {
            width: 760,
            height: 220,
            ..ChartConfig::default()
        };
        let mut full_chart = TimeSeriesChart::new(self.dataset, cap.sensors(), chart_cfg.clone());
        full_chart.with_marks(&cap.timestamps);
        let full = full_chart.render();

        // Zoomed panel (D): a window centred on the middle co-evolving
        // timestamp, one eighth of the full range wide.
        let mut state = InteractionState::new(self.dataset);
        let focus = cap
            .timestamps
            .get(cap.timestamps.len() / 2)
            .map(|&t| t as f64 / self.dataset.timestamp_count().max(1) as f64)
            .unwrap_or(0.5);
        state.zoom_in(focus);
        state.zoom_in(focus);
        state.zoom_in(focus);
        let (zs, ze) = state.window();
        let mut zoom_chart = TimeSeriesChart::new(self.dataset, cap.sensors(), chart_cfg);
        zoom_chart.zoom(zs, ze).with_marks(&cap.timestamps);
        let zoomed = zoom_chart.render();

        // Compose: map on top, the two charts below (A/B left out of the
        // composite are the same map at two selections; one is enough here).
        let mut doc = SvgDocument::new(800, 940);
        doc.rect(0.0, 0.0, 800.0, 940.0, "#ffffff");
        doc.text(20.0, 24.0, 14.0, &format!("CAP dashboard: {cap}"));
        doc.embed(&map, 20.0, 36.0);
        doc.text(20.0, 480.0, 12.0, "(C) full time range");
        doc.embed(&full, 20.0, 490.0);
        doc.text(20.0, 724.0, 12.0, "(D) zoomed on co-evolving timestamps");
        doc.embed(&zoomed, 20.0, 734.0);
        doc
    }

    /// Renders a dashboard for the highest-support CAP, if any.
    pub fn render_top(&self) -> Option<SvgDocument> {
        self.caps.caps().first().map(|cap| self.render_for_cap(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::{Miner, MiningParams};
    use miscela_datagen::SantanderGenerator;

    #[test]
    fn renders_figure3_layout_for_top_cap() {
        let ds = SantanderGenerator::small().with_scale(0.02).generate();
        let caps = Miner::new(
            MiningParams::new()
                .with_epsilon(0.4)
                .with_eta_km(0.5)
                .with_psi(20)
                .with_segmentation(false),
        )
        .unwrap()
        .mine(&ds)
        .unwrap()
        .caps;
        assert!(!caps.is_empty());
        let dash = Dashboard::new(&ds, &caps);
        let doc = dash.render_top().expect("a CAP to render");
        let svg = doc.render();
        assert!(svg.contains("CAP dashboard"));
        assert!(svg.contains("(C) full time range"));
        assert!(svg.contains("(D) zoomed"));
        // Map markers plus chart polylines are all present.
        assert!(svg.matches("<circle").count() >= ds.sensor_count());
        assert!(svg.matches("<polyline").count() >= 2 * caps.caps()[0].size());
        // The zoomed chart shows a strictly smaller window than the full one.
        assert!(svg.matches("translate").count() >= 3);
    }

    #[test]
    fn empty_capset_renders_nothing() {
        let ds = SantanderGenerator::small().with_scale(0.02).generate();
        let caps = miscela_core::CapSet::new();
        assert!(Dashboard::new(&ds, &caps).render_top().is_none());
    }
}
