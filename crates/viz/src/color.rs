//! Attribute colour palette and highlight colours.
//!
//! The map view colours markers by attribute so that a CAP spanning, say,
//! temperature and traffic is visually recognisable; the highlight colours
//! reproduce the emphasis of Figure 3, where the clicked sensor and its
//! correlated partners stand out from the rest.

use miscela_model::AttributeId;

/// A categorical palette (colour-blind-friendly hues).
const PALETTE: [&str; 10] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb", "#e69f00",
    "#009e73", "#cc79a7",
];

/// Colour assigned to an attribute (stable across renders: palette indexed
/// by attribute id).
pub fn attribute_color(attribute: AttributeId) -> &'static str {
    PALETTE[attribute.index() % PALETTE.len()]
}

/// Fill colour of the sensor the user clicked.
pub const SELECTED_COLOR: &str = "#d62728";
/// Stroke colour of sensors correlated with the clicked one.
pub const HIGHLIGHT_COLOR: &str = "#ff7f0e";
/// Fill colour of unrelated (dimmed) sensors.
pub const DIMMED_COLOR: &str = "#c8c8c8";
/// Chart grid-line colour.
pub const GRID_COLOR: &str = "#e0e0e0";
/// Colour used to mark co-evolving timestamps on charts.
pub const COEVOLUTION_MARK_COLOR: &str = "#2ca02c";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_are_stable_and_distinct_for_small_ids() {
        assert_eq!(
            attribute_color(AttributeId(0)),
            attribute_color(AttributeId(0))
        );
        let all: std::collections::HashSet<&str> = (0..10u16)
            .map(|i| attribute_color(AttributeId(i)))
            .collect();
        assert_eq!(all.len(), 10);
        // Wraps around beyond the palette size.
        assert_eq!(
            attribute_color(AttributeId(12)),
            attribute_color(AttributeId(2))
        );
    }

    #[test]
    fn palette_entries_are_hex_colors() {
        for i in 0..10u16 {
            let c = attribute_color(AttributeId(i));
            assert!(c.starts_with('#') && c.len() == 7);
        }
    }
}
