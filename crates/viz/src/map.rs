//! The map view: sensor locations with CAP-partner highlighting
//! (Figure 3 (A)/(B)).

use crate::color::{attribute_color, DIMMED_COLOR, HIGHLIGHT_COLOR, SELECTED_COLOR};
use crate::projection::MercatorProjection;
use crate::svg::SvgDocument;
use miscela_core::CapSet;
use miscela_model::{Dataset, SensorIndex};

/// Rendering options for the map view.
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Marker radius in pixels.
    pub marker_radius: f64,
    /// Whether to draw a legend of attribute colours.
    pub legend: bool,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            width: 800,
            height: 600,
            marker_radius: 4.0,
            legend: true,
        }
    }
}

/// A rendered marker (exposed for tests and for the interaction layer).
#[derive(Debug, Clone, PartialEq)]
pub struct Marker {
    /// The sensor this marker represents.
    pub sensor: SensorIndex,
    /// Pixel position.
    pub position: (f64, f64),
    /// Whether this is the clicked sensor.
    pub selected: bool,
    /// Whether this sensor is highlighted as correlated with the clicked
    /// one.
    pub highlighted: bool,
}

/// The map view of one dataset and one mining result.
pub struct MapView<'a> {
    dataset: &'a Dataset,
    caps: &'a CapSet,
    config: MapConfig,
}

impl<'a> MapView<'a> {
    /// Creates a map view.
    pub fn new(dataset: &'a Dataset, caps: &'a CapSet, config: MapConfig) -> Self {
        MapView {
            dataset,
            caps,
            config,
        }
    }

    /// Computes the marker set for a given selection. When `selected` is
    /// `Some(s)`, the markers of `s` and of every sensor sharing a CAP with
    /// `s` are flagged, exactly as the front end highlights them.
    pub fn markers(&self, selected: Option<SensorIndex>) -> Vec<Marker> {
        let bounds = self
            .dataset
            .bounding_box()
            .unwrap_or(miscela_model::BoundingBox {
                min_lat: 0.0,
                max_lat: 1.0,
                min_lon: 0.0,
                max_lon: 1.0,
            });
        let proj = MercatorProjection::new(&bounds, self.config.width, self.config.height, 30.0);
        let partners: Vec<SensorIndex> = selected
            .map(|s| self.caps.partners_of(s))
            .unwrap_or_default();
        self.dataset
            .iter()
            .map(|ss| Marker {
                sensor: ss.index,
                position: proj.project(&ss.sensor.location),
                selected: Some(ss.index) == selected,
                highlighted: partners.contains(&ss.index),
            })
            .collect()
    }

    /// Renders the map as an SVG document.
    pub fn render(&self, selected: Option<SensorIndex>) -> SvgDocument {
        let mut doc = SvgDocument::new(self.config.width, self.config.height);
        doc.rect(
            0.0,
            0.0,
            self.config.width as f64,
            self.config.height as f64,
            "#f4f1ea",
        );
        let any_selection = selected.is_some();
        for marker in self.markers(selected) {
            let sensor = self.dataset.sensor(marker.sensor);
            let base_color = attribute_color(sensor.attribute);
            let (fill, stroke, radius) = if marker.selected {
                (
                    SELECTED_COLOR,
                    Some("#000000"),
                    self.config.marker_radius * 1.8,
                )
            } else if marker.highlighted {
                (
                    base_color,
                    Some(HIGHLIGHT_COLOR),
                    self.config.marker_radius * 1.5,
                )
            } else if any_selection {
                (DIMMED_COLOR, None, self.config.marker_radius)
            } else {
                (base_color, None, self.config.marker_radius)
            };
            doc.circle(marker.position.0, marker.position.1, radius, fill, stroke);
        }
        if self.config.legend {
            let mut y = 20.0;
            for (id, attr) in self.dataset.attributes().iter() {
                doc.circle(14.0, y - 4.0, 5.0, attribute_color(id), None);
                doc.text(24.0, y, 12.0, attr.name());
                y += 16.0;
            }
        }
        doc.text(
            8.0,
            self.config.height as f64 - 8.0,
            11.0,
            &format!(
                "{} sensors, {} CAPs{}",
                self.dataset.sensor_count(),
                self.caps.len(),
                selected
                    .map(|s| format!(", selected {}", self.dataset.sensor(s).id))
                    .unwrap_or_default()
            ),
        );
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::{Miner, MiningParams};
    use miscela_datagen::SantanderGenerator;

    fn fixture() -> (Dataset, CapSet) {
        let ds = SantanderGenerator::small().with_scale(0.02).generate();
        let caps = Miner::new(
            MiningParams::new()
                .with_epsilon(0.4)
                .with_eta_km(0.5)
                .with_psi(20)
                .with_segmentation(false),
        )
        .unwrap()
        .mine(&ds)
        .unwrap()
        .caps;
        (ds, caps)
    }

    #[test]
    fn markers_cover_all_sensors_and_stay_in_viewport() {
        let (ds, caps) = fixture();
        let view = MapView::new(&ds, &caps, MapConfig::default());
        let markers = view.markers(None);
        assert_eq!(markers.len(), ds.sensor_count());
        for m in &markers {
            assert!((0.0..=800.0).contains(&m.position.0));
            assert!((0.0..=600.0).contains(&m.position.1));
            assert!(!m.selected && !m.highlighted);
        }
    }

    #[test]
    fn clicking_a_cap_member_highlights_exactly_its_partners() {
        let (ds, caps) = fixture();
        assert!(!caps.is_empty(), "fixture should find CAPs");
        let member = caps.caps()[0].sensors()[0];
        let expected = caps.partners_of(member);
        let view = MapView::new(&ds, &caps, MapConfig::default());
        let markers = view.markers(Some(member));
        let highlighted: Vec<SensorIndex> = markers
            .iter()
            .filter(|m| m.highlighted)
            .map(|m| m.sensor)
            .collect();
        assert_eq!(highlighted, expected);
        assert_eq!(
            markers.iter().filter(|m| m.selected).count(),
            1,
            "exactly one selected marker"
        );
    }

    #[test]
    fn render_produces_svg_with_marker_circles() {
        let (ds, caps) = fixture();
        let view = MapView::new(&ds, &caps, MapConfig::default());
        let svg = view.render(None).render();
        assert!(svg.contains("<svg"));
        assert!(svg.matches("<circle").count() >= ds.sensor_count());
        // With a selection the selected colour appears.
        if let Some(cap) = caps.caps().first() {
            let svg = view.render(Some(cap.sensors()[0])).render();
            assert!(svg.contains(SELECTED_COLOR));
            assert!(svg.contains(HIGHLIGHT_COLOR));
        }
    }
}
