//! A minimal SVG document builder.
//!
//! Only the primitives the map and chart renderers need: circles, lines,
//! polylines, rectangles and text, with escaping of attribute/text content.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDocument {
    width: u32,
    height: u32,
    elements: Vec<String>,
}

/// Escapes text for inclusion in SVG/XML.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgDocument {
    /// Creates an empty document of the given pixel size.
    pub fn new(width: u32, height: u32) -> Self {
        SvgDocument {
            width,
            height,
            elements: Vec::new(),
        }
    }

    /// Document width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Document height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of drawn elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Adds a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) -> &mut Self {
        self.elements.push(format!(
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{}"/>"#,
            escape(fill)
        ));
        self
    }

    /// Adds a circle.
    pub fn circle(
        &mut self,
        cx: f64,
        cy: f64,
        r: f64,
        fill: &str,
        stroke: Option<&str>,
    ) -> &mut Self {
        let stroke_attr = match stroke {
            Some(s) => format!(r#" stroke="{}" stroke-width="2""#, escape(s)),
            None => String::new(),
        };
        self.elements.push(format!(
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{}"{stroke_attr}/>"#,
            escape(fill)
        ));
        self
    }

    /// Adds a straight line.
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
    ) -> &mut Self {
        self.elements.push(format!(
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width:.2}"/>"#,
            escape(stroke)
        ));
        self
    }

    /// Adds a polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) -> &mut Self {
        if points.is_empty() {
            return self;
        }
        let mut path = String::new();
        for (i, (x, y)) in points.iter().enumerate() {
            if i > 0 {
                path.push(' ');
            }
            let _ = write!(path, "{x:.2},{y:.2}");
        }
        self.elements.push(format!(
            r#"<polyline points="{path}" fill="none" stroke="{}" stroke-width="{width:.2}"/>"#,
            escape(stroke)
        ));
        self
    }

    /// Adds a text label.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) -> &mut Self {
        self.elements.push(format!(
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif">{}</text>"#,
            escape(content)
        ));
        self
    }

    /// Embeds another document at an offset (used by the dashboard layout).
    pub fn embed(&mut self, other: &SvgDocument, dx: f64, dy: f64) -> &mut Self {
        self.elements.push(format!(
            r#"<g transform="translate({dx:.2},{dy:.2})">{}</g>"#,
            other.elements.join("")
        ));
        self
    }

    /// Renders the full SVG document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
            self.width, self.height, self.width, self.height
        );
        for e in &self.elements {
            out.push_str(e);
        }
        out.push_str("</svg>");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_looking_svg() {
        let mut doc = SvgDocument::new(200, 100);
        doc.rect(0.0, 0.0, 200.0, 100.0, "#ffffff")
            .circle(10.0, 10.0, 3.0, "red", Some("black"))
            .line(0.0, 0.0, 200.0, 100.0, "#333333", 1.0)
            .polyline(&[(0.0, 0.0), (10.0, 5.0), (20.0, 2.0)], "blue", 1.5)
            .text(5.0, 95.0, 10.0, "label <1> & \"two\"");
        let svg = doc.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("circle"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("&lt;1&gt;"));
        assert!(svg.contains("&amp;"));
        assert_eq!(doc.element_count(), 5);
        assert_eq!(doc.width(), 200);
        assert_eq!(doc.height(), 100);
    }

    #[test]
    fn empty_polyline_is_ignored() {
        let mut doc = SvgDocument::new(10, 10);
        doc.polyline(&[], "red", 1.0);
        assert_eq!(doc.element_count(), 0);
    }

    #[test]
    fn embed_translates_child() {
        let mut child = SvgDocument::new(50, 50);
        child.circle(1.0, 1.0, 1.0, "green", None);
        let mut parent = SvgDocument::new(100, 100);
        parent.embed(&child, 25.0, 30.0);
        let svg = parent.render();
        assert!(svg.contains("translate(25.00,30.00)"));
        assert!(svg.contains("circle"));
    }
}
