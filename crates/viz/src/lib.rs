//! # miscela-viz
//!
//! The visualization layer of Miscela-V, reproduced as a *headless*
//! rendering engine. The original front end is JavaScript + Google Maps in a
//! browser; the Rust interactive-web ecosystem cannot reproduce that
//! directly, so this crate reproduces its *semantics* as inspectable
//! artifacts:
//!
//! * [`map`] — sensor locations on a map (Figure 3 (A)/(B)): a Web-Mercator
//!   projection of the dataset's bounding box, one marker per sensor
//!   coloured by attribute, with the sensors correlated to a clicked sensor
//!   highlighted exactly as the paper describes ("When we click a sensor in
//!   the map, sensors are highlighted if their measurements are correlated
//!   to measurements of the clicked sensor");
//! * [`chart`] — temporal behaviour of measurements (Figure 3 (C)/(D)):
//!   multi-series line charts over a zoomable time window, with the CAP's
//!   co-evolving timestamps marked;
//! * [`interaction`] — the click-to-highlight / zoom state machine driving
//!   the two views;
//! * [`dashboard`] — the Figure-3 layout combining map and charts into a
//!   single SVG document;
//! * [`svg`], [`color`], [`projection`] — the drawing substrate (an SVG
//!   document builder, attribute colour palette, Mercator projection);
//! * [`ascii`] — terminal sparklines used by the runnable examples.
//!
//! # Example
//!
//! ```
//! use miscela_core::CapSet;
//! use miscela_model::{DatasetBuilder, Duration, GeoPoint, TimeGrid, TimeSeries, Timestamp};
//! use miscela_viz::{MapConfig, MapView};
//!
//! let mut builder = DatasetBuilder::new("mini");
//! let start = Timestamp::parse("2016-03-01 00:00:00").unwrap();
//! builder.set_grid(TimeGrid::new(start, Duration::hours(1), 2).unwrap());
//! let s = builder
//!     .add_sensor("s0", "temperature", GeoPoint::new(43.46, -3.80).unwrap())
//!     .unwrap();
//! builder.set_series(s, TimeSeries::from_values(vec![9.5, 10.1])).unwrap();
//! let dataset = builder.build().unwrap();
//!
//! let caps = CapSet::new();
//! let map = MapView::new(&dataset, &caps, MapConfig::default());
//! let svg = map.render(None).render();
//! assert!(svg.contains("<svg"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod chart;
pub mod color;
pub mod dashboard;
pub mod interaction;
pub mod map;
pub mod projection;
pub mod svg;

pub use chart::{ChartConfig, TimeSeriesChart};
pub use dashboard::Dashboard;
pub use interaction::{InteractionState, ZoomLevel};
pub use map::{MapConfig, MapView};
pub use svg::SvgDocument;
