//! Web-Mercator projection of a geographic bounding box onto pixels.
//!
//! The original front end delegates this to the Google Maps API; the
//! headless map view needs it explicitly. Latitude is clamped to the
//! standard Web-Mercator limit (±85.05°), which comfortably covers every
//! dataset in the paper.

use miscela_model::{BoundingBox, GeoPoint};

/// Maximum latitude representable in Web Mercator.
const MAX_LAT: f64 = 85.05112878;

/// Projects geographic coordinates into a pixel viewport.
#[derive(Debug, Clone)]
pub struct MercatorProjection {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
    width: f64,
    height: f64,
    padding: f64,
}

fn mercator_x(lon: f64) -> f64 {
    lon.to_radians()
}

fn mercator_y(lat: f64) -> f64 {
    let lat = lat.clamp(-MAX_LAT, MAX_LAT).to_radians();
    (std::f64::consts::FRAC_PI_4 + lat / 2.0).tan().ln()
}

impl MercatorProjection {
    /// Creates a projection mapping `bounds` into a `width` × `height`
    /// viewport with `padding` pixels on every side.
    pub fn new(bounds: &BoundingBox, width: u32, height: u32, padding: f64) -> Self {
        let b = bounds.with_margin(0.02);
        MercatorProjection {
            min_x: mercator_x(b.min_lon),
            max_x: mercator_x(b.max_lon),
            min_y: mercator_y(b.min_lat),
            max_y: mercator_y(b.max_lat),
            width: width as f64,
            height: height as f64,
            padding,
        }
    }

    /// Projects a point to `(x, y)` pixel coordinates (y grows downward).
    pub fn project(&self, p: &GeoPoint) -> (f64, f64) {
        let span_x = (self.max_x - self.min_x).max(1e-12);
        let span_y = (self.max_y - self.min_y).max(1e-12);
        let usable_w = (self.width - 2.0 * self.padding).max(1.0);
        let usable_h = (self.height - 2.0 * self.padding).max(1.0);
        let fx = (mercator_x(p.lon) - self.min_x) / span_x;
        let fy = (mercator_y(p.lat) - self.min_y) / span_y;
        (
            self.padding + fx * usable_w,
            // Invert: north (large latitude) at the top of the image.
            self.padding + (1.0 - fy) * usable_h,
        )
    }

    /// Whether a point projects inside the viewport.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        let (x, y) = self.project(p);
        x >= 0.0 && y >= 0.0 && x <= self.width && y <= self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> BoundingBox {
        BoundingBox {
            min_lat: 43.40,
            max_lat: 43.50,
            min_lon: -3.90,
            max_lon: -3.70,
        }
    }

    #[test]
    fn corners_map_inside_viewport() {
        let proj = MercatorProjection::new(&bounds(), 800, 600, 20.0);
        for p in [
            GeoPoint::new_unchecked(43.40, -3.90),
            GeoPoint::new_unchecked(43.50, -3.70),
            GeoPoint::new_unchecked(43.45, -3.80),
        ] {
            let (x, y) = proj.project(&p);
            assert!((0.0..=800.0).contains(&x), "x={x}");
            assert!((0.0..=600.0).contains(&y), "y={y}");
            assert!(proj.contains(&p));
        }
    }

    #[test]
    fn north_is_up_and_east_is_right() {
        let proj = MercatorProjection::new(&bounds(), 800, 600, 10.0);
        let south = proj.project(&GeoPoint::new_unchecked(43.41, -3.80));
        let north = proj.project(&GeoPoint::new_unchecked(43.49, -3.80));
        assert!(north.1 < south.1, "north should be above south");
        let west = proj.project(&GeoPoint::new_unchecked(43.45, -3.89));
        let east = proj.project(&GeoPoint::new_unchecked(43.45, -3.71));
        assert!(east.0 > west.0, "east should be right of west");
    }

    #[test]
    fn extreme_latitudes_are_clamped() {
        let wide = BoundingBox {
            min_lat: -89.0,
            max_lat: 89.0,
            min_lon: -170.0,
            max_lon: 170.0,
        };
        let proj = MercatorProjection::new(&wide, 400, 400, 0.0);
        let (_, y) = proj.project(&GeoPoint::new_unchecked(89.9, 0.0));
        assert!(y.is_finite());
    }

    #[test]
    fn degenerate_bounds_do_not_divide_by_zero() {
        let point_box = BoundingBox {
            min_lat: 31.0,
            max_lat: 31.0,
            min_lon: 121.0,
            max_lon: 121.0,
        };
        let proj = MercatorProjection::new(&point_box, 100, 100, 5.0);
        let (x, y) = proj.project(&GeoPoint::new_unchecked(31.0, 121.0));
        assert!(x.is_finite() && y.is_finite());
    }
}
