//! The interaction model: click-to-highlight and zoom.
//!
//! Miscela-V is an *interactive* system; the browser front end keeps a small
//! amount of state (which sensor is selected, which time window is shown)
//! and re-renders the two panels whenever it changes. [`InteractionState`]
//! reproduces that state machine so the examples and tests can script the
//! demonstration scenarios of Section 4 ("Attendees can interact with our
//! system...").

use miscela_core::CapSet;
use miscela_model::{Dataset, SensorIndex};

/// Discrete zoom levels over the dataset's time range. Each level halves the
/// visible window, centred on the current focus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoomLevel(pub u8);

impl ZoomLevel {
    /// The whole time range.
    pub const FULL: ZoomLevel = ZoomLevel(0);

    /// Fraction of the full range visible at this level.
    pub fn visible_fraction(self) -> f64 {
        1.0 / (1 << self.0.min(16)) as f64
    }
}

/// The interactive state of one analysis session.
#[derive(Debug, Clone)]
pub struct InteractionState {
    selected: Option<SensorIndex>,
    zoom: ZoomLevel,
    /// Centre of the zoom window as a fraction of the time range.
    focus: f64,
    timestamps: usize,
}

impl InteractionState {
    /// Creates the initial state for a dataset: nothing selected, full zoom.
    pub fn new(dataset: &Dataset) -> Self {
        InteractionState {
            selected: None,
            zoom: ZoomLevel::FULL,
            focus: 0.5,
            timestamps: dataset.timestamp_count(),
        }
    }

    /// The currently selected sensor.
    pub fn selected(&self) -> Option<SensorIndex> {
        self.selected
    }

    /// The current zoom level.
    pub fn zoom_level(&self) -> ZoomLevel {
        self.zoom
    }

    /// Clicks a sensor: selects it, or clears the selection when the same
    /// sensor is clicked again (the usual toggle behaviour).
    pub fn click(&mut self, sensor: SensorIndex) -> Option<SensorIndex> {
        self.selected = if self.selected == Some(sensor) {
            None
        } else {
            Some(sensor)
        };
        self.selected
    }

    /// The sensors that should be highlighted for the current selection.
    pub fn highlighted(&self, caps: &CapSet) -> Vec<SensorIndex> {
        self.selected
            .map(|s| caps.partners_of(s))
            .unwrap_or_default()
    }

    /// Zooms in one level around a focus point (fraction of the time range).
    pub fn zoom_in(&mut self, focus: f64) -> ZoomLevel {
        self.focus = focus.clamp(0.0, 1.0);
        self.zoom = ZoomLevel(self.zoom.0.saturating_add(1).min(12));
        self.zoom
    }

    /// Zooms out one level.
    pub fn zoom_out(&mut self) -> ZoomLevel {
        self.zoom = ZoomLevel(self.zoom.0.saturating_sub(1));
        self.zoom
    }

    /// Resets zoom and selection.
    pub fn reset(&mut self) {
        self.zoom = ZoomLevel::FULL;
        self.selected = None;
        self.focus = 0.5;
    }

    /// The visible window `[start, end)` in grid indices for the current
    /// zoom level and focus.
    pub fn window(&self) -> (usize, usize) {
        let visible = ((self.timestamps as f64) * self.zoom.visible_fraction()).max(1.0);
        let half = visible / 2.0;
        let center = self.focus * self.timestamps as f64;
        let start = (center - half).max(0.0);
        let end = (start + visible).min(self.timestamps as f64);
        let start = (end - visible).max(0.0);
        (start.floor() as usize, end.ceil() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_core::{Cap, CapMember, Direction};
    use miscela_model::{AttributeId, DatasetBuilder, Duration, GeoPoint, TimeGrid, Timestamp};

    fn dataset(timestamps: usize) -> Dataset {
        let mut b = DatasetBuilder::new("ia");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), timestamps).unwrap());
        for i in 0..4 {
            b.add_sensor(
                format!("s{i}"),
                if i % 2 == 0 { "temperature" } else { "traffic" },
                GeoPoint::new_unchecked(43.0 + 0.001 * i as f64, -3.8),
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn caps() -> CapSet {
        CapSet::from_caps(vec![Cap::new(
            vec![
                CapMember {
                    sensor: SensorIndex(0),
                    direction: Direction::Up,
                },
                CapMember {
                    sensor: SensorIndex(1),
                    direction: Direction::Up,
                },
            ],
            [AttributeId(0), AttributeId(1)].into_iter().collect(),
            vec![1, 2, 3],
        )])
    }

    #[test]
    fn click_toggles_selection_and_highlights_partners() {
        let ds = dataset(100);
        let caps = caps();
        let mut state = InteractionState::new(&ds);
        assert_eq!(state.selected(), None);
        assert!(state.highlighted(&caps).is_empty());
        state.click(SensorIndex(0));
        assert_eq!(state.selected(), Some(SensorIndex(0)));
        assert_eq!(state.highlighted(&caps), vec![SensorIndex(1)]);
        // Clicking a sensor with no CAP highlights nothing.
        state.click(SensorIndex(3));
        assert!(state.highlighted(&caps).is_empty());
        // Clicking the same sensor again clears the selection.
        state.click(SensorIndex(3));
        assert_eq!(state.selected(), None);
    }

    #[test]
    fn zoom_windows_shrink_and_stay_in_range() {
        let ds = dataset(1000);
        let mut state = InteractionState::new(&ds);
        assert_eq!(state.window(), (0, 1000));
        state.zoom_in(0.5);
        let (s1, e1) = state.window();
        assert!(e1 - s1 <= 501 && e1 - s1 >= 499);
        state.zoom_in(0.0); // focus at the very start
        let (s2, e2) = state.window();
        assert_eq!(s2, 0);
        assert!(e2 - s2 <= 251);
        state.zoom_in(1.0); // focus at the very end
        let (s3, e3) = state.window();
        assert_eq!(e3, 1000);
        assert!(e3 > s3);
        state.zoom_out();
        state.reset();
        assert_eq!(state.window(), (0, 1000));
        assert_eq!(state.zoom_level(), ZoomLevel::FULL);
    }

    #[test]
    fn zoom_level_fraction() {
        assert_eq!(ZoomLevel(0).visible_fraction(), 1.0);
        assert_eq!(ZoomLevel(1).visible_fraction(), 0.5);
        assert_eq!(ZoomLevel(3).visible_fraction(), 0.125);
    }

    #[test]
    fn zoom_never_exceeds_limits() {
        let ds = dataset(50);
        let mut state = InteractionState::new(&ds);
        for _ in 0..40 {
            state.zoom_in(0.7);
        }
        let (s, e) = state.window();
        assert!(e > s);
        assert!(e <= 50);
        for _ in 0..40 {
            state.zoom_out();
        }
        assert_eq!(state.window(), (0, 50));
    }
}
