//! Terminal rendering helpers for the runnable examples: sparklines and a
//! tiny scatter map, so `cargo run --example ...` shows something useful
//! without opening the generated SVG files.

use miscela_model::TimeSeries;

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a unicode sparkline of at most `width` characters
/// (the series is downsampled by averaging buckets). Missing values render
/// as spaces.
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    if series.is_empty() || width == 0 {
        return String::new();
    }
    let min = series.min().unwrap_or(0.0);
    let max = series.max().unwrap_or(1.0);
    let span = (max - min).max(1e-12);
    let buckets = width.min(series.len());
    let per_bucket = series.len() as f64 / buckets as f64;
    let mut out = String::with_capacity(buckets * 3);
    for b in 0..buckets {
        let start = (b as f64 * per_bucket) as usize;
        let end = (((b + 1) as f64 * per_bucket) as usize)
            .max(start + 1)
            .min(series.len());
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in start..end {
            if let Some(v) = series.get(i) {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            out.push(' ');
        } else {
            let frac = ((sum / n as f64) - min) / span;
            let idx = (frac * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
            out.push(SPARK_LEVELS[idx.min(SPARK_LEVELS.len() - 1)]);
        }
    }
    out
}

/// Renders a set of points (fractions of a unit square) as a character grid:
/// `'.'` for ordinary points, `'*'` for highlighted ones, `'@'` for the
/// selected one.
pub fn scatter(points: &[(f64, f64, char)], width: usize, height: usize) -> String {
    let mut grid = vec![vec![' '; width.max(1)]; height.max(1)];
    for &(fx, fy, ch) in points {
        let x = ((fx.clamp(0.0, 1.0)) * (width.saturating_sub(1)) as f64).round() as usize;
        let y = ((1.0 - fy.clamp(0.0, 1.0)) * (height.saturating_sub(1)) as f64).round() as usize;
        // Higher-priority glyphs overwrite lower-priority ones.
        let priority = |c: char| match c {
            '@' => 3,
            '*' => 2,
            '.' => 1,
            _ => 0,
        };
        if priority(ch) >= priority(grid[y][x]) {
            grid[y][x] = ch;
        }
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        let rising = TimeSeries::from_values((0..80).map(|i| i as f64).collect());
        let s = sparkline(&rising, 10);
        assert_eq!(s.chars().count(), 10);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        // Missing values render as spaces.
        let gappy = TimeSeries::from_options(&[Some(1.0), None, Some(2.0)]);
        let s = sparkline(&gappy, 3);
        assert_eq!(s.chars().count(), 3);
        assert!(s.contains(' '));
        // Degenerate inputs.
        assert_eq!(sparkline(&TimeSeries::from_values(vec![]), 10), "");
        assert_eq!(sparkline(&rising, 0), "");
    }

    #[test]
    fn scatter_places_and_prioritizes_glyphs() {
        let pts = vec![
            (0.0, 0.0, '.'),
            (1.0, 1.0, '.'),
            (0.5, 0.5, '*'),
            (0.5, 0.5, '.'), // lower priority, must not overwrite '*'
            (0.0, 1.0, '@'),
        ];
        let s = scatter(&pts, 11, 5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[4].chars().next(), Some('.')); // bottom-left
        assert_eq!(lines[0].chars().last(), Some('.')); // top-right
        assert_eq!(lines[0].chars().next(), Some('@')); // top-left selected
        assert_eq!(lines[2].chars().nth(5), Some('*'));
    }
}
