//! Time-series charts with zooming (Figure 3 (C)/(D)).
//!
//! The paper's panels (C) and (D) show "temporal behaviors of measurements,
//! which we can zoom in and zoom out"; panel (D) is a zoomed view in which
//! "you can see that three measurements frequently increase/decrease
//! together". The chart here renders any number of sensor series over a
//! selectable index window, normalizes each series to its own value range
//! (so a 0–1000 lux light series and a 10–25 °C temperature series are
//! comparable visually, as chart libraries do), and can mark the CAP's
//! co-evolving timestamps.

use crate::color::{attribute_color, COEVOLUTION_MARK_COLOR, GRID_COLOR};
use crate::svg::SvgDocument;
use miscela_model::{Dataset, SensorIndex};

/// Chart rendering options.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Number of horizontal grid lines.
    pub grid_lines: usize,
    /// Whether to normalize each series to its own min/max range.
    pub normalize: bool,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            width: 800,
            height: 260,
            grid_lines: 4,
            normalize: true,
        }
    }
}

/// A chart over a set of sensors of one dataset.
pub struct TimeSeriesChart<'a> {
    dataset: &'a Dataset,
    sensors: Vec<SensorIndex>,
    window: (usize, usize),
    marks: Vec<u32>,
    config: ChartConfig,
}

impl<'a> TimeSeriesChart<'a> {
    /// Creates a chart over the given sensors, initially showing the whole
    /// time range.
    pub fn new(dataset: &'a Dataset, sensors: Vec<SensorIndex>, config: ChartConfig) -> Self {
        let len = dataset.timestamp_count();
        TimeSeriesChart {
            dataset,
            sensors,
            window: (0, len),
            marks: Vec::new(),
            config,
        }
    }

    /// Restricts the visible window to grid indices `[start, end)` (the zoom
    /// operation). Out-of-range values are clamped.
    pub fn zoom(&mut self, start: usize, end: usize) -> &mut Self {
        let len = self.dataset.timestamp_count();
        let start = start.min(len);
        let end = end.clamp(start, len);
        self.window = (start, end);
        self
    }

    /// The current window.
    pub fn window(&self) -> (usize, usize) {
        self.window
    }

    /// Marks co-evolving timestamps (grid indices), e.g. a CAP's timestamp
    /// list.
    pub fn with_marks(&mut self, marks: &[u32]) -> &mut Self {
        self.marks = marks.to_vec();
        self
    }

    /// The polyline (pixel points) of one sensor within the current window.
    /// Missing values break the line (gaps are skipped).
    pub fn polyline(&self, sensor: SensorIndex) -> Vec<(f64, f64)> {
        let (start, end) = self.window;
        let series = self.dataset.series(sensor);
        let window_len = end.saturating_sub(start).max(1);
        let (min, max) = if self.config.normalize {
            let w = series.window(start, window_len);
            (w.min().unwrap_or(0.0), w.max().unwrap_or(1.0))
        } else {
            (series.min().unwrap_or(0.0), series.max().unwrap_or(1.0))
        };
        let span = (max - min).max(1e-9);
        let usable_w = self.config.width as f64 - 60.0;
        let usable_h = self.config.height as f64 - 40.0;
        let mut points = Vec::new();
        for i in start..end {
            if let Some(v) = series.get(i) {
                let fx = (i - start) as f64 / window_len.max(1) as f64;
                let fy = (v - min) / span;
                points.push((40.0 + fx * usable_w, 20.0 + (1.0 - fy) * usable_h));
            }
        }
        points
    }

    /// Renders the chart as an SVG document.
    pub fn render(&self) -> SvgDocument {
        let mut doc = SvgDocument::new(self.config.width, self.config.height);
        let w = self.config.width as f64;
        let h = self.config.height as f64;
        doc.rect(0.0, 0.0, w, h, "#ffffff");
        // Grid.
        for g in 0..=self.config.grid_lines {
            let y = 20.0 + (h - 40.0) * g as f64 / self.config.grid_lines.max(1) as f64;
            doc.line(40.0, y, w - 20.0, y, GRID_COLOR, 1.0);
        }
        // Co-evolution marks.
        let (start, end) = self.window;
        let window_len = end.saturating_sub(start).max(1);
        for &m in &self.marks {
            let m = m as usize;
            if m < start || m >= end {
                continue;
            }
            let fx = (m - start) as f64 / window_len as f64;
            let x = 40.0 + fx * (w - 60.0);
            doc.line(x, 20.0, x, h - 20.0, COEVOLUTION_MARK_COLOR, 0.8);
        }
        // Series.
        for &s in &self.sensors {
            let attr = self.dataset.sensor(s).attribute;
            doc.polyline(&self.polyline(s), attribute_color(attr), 1.6);
        }
        // Axis labels: window start/end timestamps.
        if let (Some(ts), Some(te)) = (
            self.dataset
                .grid()
                .at(start.min(self.dataset.timestamp_count().saturating_sub(1))),
            self.dataset.grid().at(end
                .saturating_sub(1)
                .min(self.dataset.timestamp_count().saturating_sub(1))),
        ) {
            doc.text(40.0, h - 6.0, 10.0, &ts.format());
            doc.text(w - 170.0, h - 6.0, 10.0, &te.format());
        }
        // Legend: sensor ids.
        let mut y = 14.0;
        for &s in &self.sensors {
            let sensor = self.dataset.sensor(s);
            let name = self.dataset.attributes().name_of(sensor.attribute);
            doc.text(44.0, y, 10.0, &format!("{} ({name})", sensor.id));
            y += 12.0;
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_datagen::SantanderGenerator;

    fn dataset() -> Dataset {
        SantanderGenerator::small().with_scale(0.02).generate()
    }

    #[test]
    fn polylines_stay_inside_viewport() {
        let ds = dataset();
        let sensors: Vec<SensorIndex> = ds.indices().take(3).collect();
        let chart = TimeSeriesChart::new(&ds, sensors.clone(), ChartConfig::default());
        for &s in &sensors {
            let pts = chart.polyline(s);
            assert!(!pts.is_empty());
            for (x, y) in pts {
                assert!((0.0..=800.0).contains(&x));
                assert!((0.0..=260.0).contains(&y));
            }
        }
    }

    #[test]
    fn zoom_clamps_and_changes_point_count() {
        let ds = dataset();
        let s = ds.indices().next().unwrap();
        let mut chart = TimeSeriesChart::new(&ds, vec![s], ChartConfig::default());
        let full = chart.polyline(s).len();
        chart.zoom(10, 60);
        assert_eq!(chart.window(), (10, 60));
        let zoomed = chart.polyline(s).len();
        assert!(zoomed <= 50);
        assert!(zoomed < full);
        // Degenerate and out-of-range zooms are clamped, not panicking.
        chart.zoom(1_000_000, 2_000_000);
        assert_eq!(chart.window().0, ds.timestamp_count());
        assert!(chart.polyline(s).is_empty());
        chart.zoom(50, 10);
        assert_eq!(chart.window(), (50, 50));
    }

    #[test]
    fn render_contains_series_marks_and_labels() {
        let ds = dataset();
        let sensors: Vec<SensorIndex> = ds.indices().take(2).collect();
        let mut chart = TimeSeriesChart::new(&ds, sensors, ChartConfig::default());
        chart.zoom(0, 100).with_marks(&[5, 20, 99, 5000]);
        let svg = chart.render().render();
        assert!(svg.matches("<polyline").count() >= 2);
        // Three in-window marks (5, 20, 99); the out-of-window one is skipped.
        assert_eq!(svg.matches(COEVOLUTION_MARK_COLOR).count(), 3);
        assert!(svg.contains("2016-03-01"));
    }

    #[test]
    fn missing_values_shorten_polyline() {
        use miscela_model::{DatasetBuilder, Duration, GeoPoint, TimeGrid, TimeSeries, Timestamp};
        let mut b = DatasetBuilder::new("gaps");
        b.set_grid(TimeGrid::new(Timestamp::EPOCH, Duration::hours(1), 10).unwrap());
        let idx = b
            .add_sensor("s", "temperature", GeoPoint::new_unchecked(0.0, 0.0))
            .unwrap();
        b.set_series(
            idx,
            TimeSeries::from_options(&[
                Some(1.0),
                None,
                Some(3.0),
                None,
                None,
                Some(6.0),
                Some(7.0),
                None,
                Some(9.0),
                Some(10.0),
            ]),
        )
        .unwrap();
        let ds = b.build().unwrap();
        let chart = TimeSeriesChart::new(&ds, vec![idx], ChartConfig::default());
        assert_eq!(chart.polyline(idx).len(), 6);
    }
}
