//! Request and response envelopes.
//!
//! The shapes deliberately mirror a small REST API: a method, a path, query
//! parameters and a JSON body on the way in; a status code and a JSON body
//! on the way out. Keeping the envelope explicit (rather than calling the
//! service directly) preserves the paper's architecture, where the front
//! end, the API server and the miner are separate components "connected by
//! APIs" so that "we can modify each component individually" (Section 3.4).

use miscela_store::Json;
use std::collections::BTreeMap;
use std::fmt;

/// HTTP-like request methods used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Retrieve data.
    Get,
    /// Create or submit data.
    Post,
    /// Remove data.
    Delete,
}

/// Status codes used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// Success.
    Ok,
    /// The resource was created.
    Created,
    /// The request was malformed.
    BadRequest,
    /// The resource does not exist.
    NotFound,
    /// The request conflicts with the resource's current state.
    Conflict,
    /// The tenant's quota forbids the request (dataset count, retained
    /// timestamps, or cache budget). Not retryable: the quota must be
    /// raised or data removed first.
    Forbidden,
    /// A protocol precondition failed: the request's sequence number does
    /// not follow the server's acked watermark (gap or stale session).
    PreconditionFailed,
    /// Admission control shed the request; retry after backing off.
    TooManyRequests,
    /// The resource is temporarily degraded (e.g. read-only); retryable.
    ServiceUnavailable,
    /// The request's deadline expired before the work completed.
    GatewayTimeout,
    /// The server failed to process a valid request.
    InternalError,
}

impl StatusCode {
    /// Numeric code, as HTTP would report it.
    pub fn as_u16(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::Created => 201,
            StatusCode::BadRequest => 400,
            StatusCode::Forbidden => 403,
            StatusCode::NotFound => 404,
            StatusCode::Conflict => 409,
            StatusCode::PreconditionFailed => 412,
            StatusCode::TooManyRequests => 429,
            StatusCode::InternalError => 500,
            StatusCode::ServiceUnavailable => 503,
            StatusCode::GatewayTimeout => 504,
        }
    }

    /// Whether the code indicates success.
    pub fn is_success(self) -> bool {
        matches!(self, StatusCode::Ok | StatusCode::Created)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u16())
    }
}

/// An API request.
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// Request method.
    pub method: Method,
    /// Request path, e.g. `/datasets/santander/mine`.
    pub path: String,
    /// Query parameters.
    pub query: BTreeMap<String, String>,
    /// JSON body (an empty object for body-less requests).
    pub body: Json,
}

impl ApiRequest {
    /// A GET request.
    pub fn get(path: impl Into<String>) -> Self {
        ApiRequest {
            method: Method::Get,
            path: path.into(),
            query: BTreeMap::new(),
            body: Json::object(),
        }
    }

    /// A POST request with a JSON body.
    pub fn post(path: impl Into<String>, body: Json) -> Self {
        ApiRequest {
            method: Method::Post,
            path: path.into(),
            query: BTreeMap::new(),
            body,
        }
    }

    /// A DELETE request.
    pub fn delete(path: impl Into<String>) -> Self {
        ApiRequest {
            method: Method::Delete,
            path: path.into(),
            query: BTreeMap::new(),
            body: Json::object(),
        }
    }

    /// Adds a query parameter.
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.insert(key.into(), value.into());
        self
    }

    /// Path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// An API response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// Status code.
    pub status: StatusCode,
    /// JSON body.
    pub body: Json,
}

impl ApiResponse {
    /// A 200 response with a body.
    pub fn ok(body: Json) -> Self {
        ApiResponse {
            status: StatusCode::Ok,
            body,
        }
    }

    /// A 201 response with a body.
    pub fn created(body: Json) -> Self {
        ApiResponse {
            status: StatusCode::Created,
            body,
        }
    }

    /// An error response carrying a message.
    pub fn error(status: StatusCode, message: impl Into<String>) -> Self {
        ApiResponse {
            status,
            body: Json::from_pairs([("error", Json::from(message.into()))]),
        }
    }

    /// The error response for a service error: the message, plus a
    /// `retry_after_ms` hint when the error is retryable (the analogue of
    /// HTTP's `Retry-After` header).
    pub fn from_error(error: &ApiError) -> Self {
        let mut response = ApiResponse::error(error.status(), error.message());
        if let Some(ms) = error.retry_after_ms() {
            response.body.set("retry_after_ms", Json::Number(ms as f64));
        }
        if let ApiError::SequenceGap {
            expected_session,
            expected_seq,
            ..
        } = error
        {
            response
                .body
                .set("expected_session", Json::Number(*expected_session as f64));
            response
                .body
                .set("expected_seq", Json::Number(*expected_seq as f64));
        }
        response
    }

    /// Whether the response is a success.
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }
}

/// Errors produced by the service layer, mapped onto status codes by the
/// router.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The request body or parameters were malformed.
    BadRequest(String),
    /// A referenced dataset or resource does not exist.
    NotFound(String),
    /// The tenant's quota forbids the request. Maps to 403: the request is
    /// well-formed and the resource exists, but the namespace's budget
    /// (dataset count, retained timestamps, cache entries) is exhausted.
    QuotaExceeded(String),
    /// The request conflicts with the resource's current state (e.g. an
    /// append session is already open for the dataset).
    Conflict(String),
    /// An `append_chunk` arrived out of sequence: its sequence number
    /// leaves a gap after the server's acked watermark, or it names a
    /// session that is no longer current. The body carries the watermark
    /// (`expected_session`, `expected_seq`) so the client can resume from
    /// exactly what the server has acknowledged.
    SequenceGap {
        /// What went out of sequence.
        message: String,
        /// The append session the server currently has open.
        expected_session: u64,
        /// The next sequence number the server will accept.
        expected_seq: u64,
    },
    /// Admission control shed the request — the in-flight work budget or
    /// wait queue is full. Retryable after `retry_after_ms`.
    Overloaded {
        /// What was full.
        message: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The resource is temporarily unable to serve this kind of request
    /// (e.g. durability is degraded and the dataset is read-only).
    /// Retryable after `retry_after_ms`.
    Unavailable {
        /// Why the resource is unavailable.
        message: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before the work completed.
    DeadlineExceeded(String),
    /// An internal processing failure (store, miner, ...).
    Internal(String),
}

impl ApiError {
    /// The status code this error maps to.
    pub fn status(&self) -> StatusCode {
        match self {
            ApiError::BadRequest(_) => StatusCode::BadRequest,
            ApiError::NotFound(_) => StatusCode::NotFound,
            ApiError::QuotaExceeded(_) => StatusCode::Forbidden,
            ApiError::Conflict(_) => StatusCode::Conflict,
            ApiError::SequenceGap { .. } => StatusCode::PreconditionFailed,
            ApiError::Overloaded { .. } => StatusCode::TooManyRequests,
            ApiError::Unavailable { .. } => StatusCode::ServiceUnavailable,
            ApiError::DeadlineExceeded(_) => StatusCode::GatewayTimeout,
            ApiError::Internal(_) => StatusCode::InternalError,
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        match self {
            ApiError::BadRequest(m)
            | ApiError::NotFound(m)
            | ApiError::QuotaExceeded(m)
            | ApiError::Conflict(m)
            | ApiError::SequenceGap { message: m, .. }
            | ApiError::Overloaded { message: m, .. }
            | ApiError::Unavailable { message: m, .. }
            | ApiError::DeadlineExceeded(m)
            | ApiError::Internal(m) => m,
        }
    }

    /// The retry-after hint, for the retryable variants.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ApiError::Overloaded { retry_after_ms, .. }
            | ApiError::Unavailable { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// Whether a client may retry the identical request and expect it to
    /// eventually succeed (shed, degraded, or timed-out work — not
    /// malformed or conflicting requests).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ApiError::Overloaded { .. }
                | ApiError::Unavailable { .. }
                | ApiError::DeadlineExceeded(_)
        )
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes() {
        assert_eq!(StatusCode::Ok.as_u16(), 200);
        assert_eq!(StatusCode::Forbidden.as_u16(), 403);
        assert_eq!(StatusCode::NotFound.as_u16(), 404);
        assert_eq!(StatusCode::Conflict.as_u16(), 409);
        assert_eq!(StatusCode::PreconditionFailed.as_u16(), 412);
        assert_eq!(StatusCode::TooManyRequests.as_u16(), 429);
        assert_eq!(StatusCode::ServiceUnavailable.as_u16(), 503);
        assert_eq!(StatusCode::GatewayTimeout.as_u16(), 504);
        assert!(StatusCode::Created.is_success());
        assert!(!StatusCode::BadRequest.is_success());
        assert!(!StatusCode::TooManyRequests.is_success());
        assert_eq!(StatusCode::InternalError.to_string(), "500");
    }

    #[test]
    fn overload_errors_carry_retry_hints() {
        let shed = ApiError::Overloaded {
            message: "wait queue full".to_string(),
            retry_after_ms: 125,
        };
        assert_eq!(shed.status(), StatusCode::TooManyRequests);
        assert_eq!(shed.retry_after_ms(), Some(125));
        assert!(shed.is_retryable());
        let response = ApiResponse::from_error(&shed);
        assert_eq!(response.status.as_u16(), 429);
        assert_eq!(
            response.body.get("retry_after_ms").and_then(Json::as_f64),
            Some(125.0)
        );

        let degraded = ApiError::Unavailable {
            message: "durability degraded".to_string(),
            retry_after_ms: 500,
        };
        assert_eq!(degraded.status(), StatusCode::ServiceUnavailable);
        assert!(degraded.is_retryable());

        let late = ApiError::DeadlineExceeded("mine ran past its deadline".to_string());
        assert_eq!(late.status(), StatusCode::GatewayTimeout);
        assert_eq!(late.retry_after_ms(), None);
        assert!(late.is_retryable());
        assert!(ApiResponse::from_error(&late)
            .body
            .get("retry_after_ms")
            .is_none());

        let conflict = ApiError::Conflict("session open".to_string());
        assert_eq!(conflict.status(), StatusCode::Conflict);
        assert!(!conflict.is_retryable());

        let quota = ApiError::QuotaExceeded("dataset quota reached".to_string());
        assert_eq!(quota.status(), StatusCode::Forbidden);
        assert_eq!(quota.retry_after_ms(), None);
        // Not retryable: the same request keeps failing until the quota is
        // raised or datasets are deleted.
        assert!(!quota.is_retryable());
        assert_eq!(ApiResponse::from_error(&quota).status.as_u16(), 403);
    }

    #[test]
    fn sequence_gaps_carry_the_acked_watermark() {
        let gap = ApiError::SequenceGap {
            message: "chunk seq 5 leaves a gap".to_string(),
            expected_session: 3,
            expected_seq: 2,
        };
        assert_eq!(gap.status(), StatusCode::PreconditionFailed);
        assert_eq!(gap.retry_after_ms(), None);
        // Not blindly retryable: the client must resume from the watermark.
        assert!(!gap.is_retryable());
        let response = ApiResponse::from_error(&gap);
        assert_eq!(response.status.as_u16(), 412);
        assert_eq!(
            response.body.get("expected_session").and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            response.body.get("expected_seq").and_then(Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn request_builders() {
        let r = ApiRequest::get("/datasets/santander").with_query("include", "stats");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.segments(), vec!["datasets", "santander"]);
        assert_eq!(r.query["include"], "stats");
        let p = ApiRequest::post("/datasets", Json::object());
        assert_eq!(p.method, Method::Post);
        let d = ApiRequest::delete("/datasets/x");
        assert_eq!(d.method, Method::Delete);
    }

    #[test]
    fn responses_and_errors() {
        let ok = ApiResponse::ok(Json::from_pairs([("n", Json::from(3i64))]));
        assert!(ok.is_success());
        let err = ApiResponse::error(StatusCode::NotFound, "no such dataset");
        assert!(!err.is_success());
        assert_eq!(
            err.body.get("error").unwrap().as_str(),
            Some("no such dataset")
        );

        let e = ApiError::NotFound("x".to_string());
        assert_eq!(e.status(), StatusCode::NotFound);
        assert_eq!(e.message(), "x");
        assert!(e.to_string().contains("404"));
    }
}
