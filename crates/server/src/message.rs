//! Request and response envelopes.
//!
//! The shapes deliberately mirror a small REST API: a method, a path, query
//! parameters and a JSON body on the way in; a status code and a JSON body
//! on the way out. Keeping the envelope explicit (rather than calling the
//! service directly) preserves the paper's architecture, where the front
//! end, the API server and the miner are separate components "connected by
//! APIs" so that "we can modify each component individually" (Section 3.4).

use miscela_store::Json;
use std::collections::BTreeMap;
use std::fmt;

/// HTTP-like request methods used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Retrieve data.
    Get,
    /// Create or submit data.
    Post,
    /// Remove data.
    Delete,
}

/// Status codes used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// Success.
    Ok,
    /// The resource was created.
    Created,
    /// The request was malformed.
    BadRequest,
    /// The resource does not exist.
    NotFound,
    /// The server failed to process a valid request.
    InternalError,
}

impl StatusCode {
    /// Numeric code, as HTTP would report it.
    pub fn as_u16(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::Created => 201,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::InternalError => 500,
        }
    }

    /// Whether the code indicates success.
    pub fn is_success(self) -> bool {
        matches!(self, StatusCode::Ok | StatusCode::Created)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u16())
    }
}

/// An API request.
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// Request method.
    pub method: Method,
    /// Request path, e.g. `/datasets/santander/mine`.
    pub path: String,
    /// Query parameters.
    pub query: BTreeMap<String, String>,
    /// JSON body (an empty object for body-less requests).
    pub body: Json,
}

impl ApiRequest {
    /// A GET request.
    pub fn get(path: impl Into<String>) -> Self {
        ApiRequest {
            method: Method::Get,
            path: path.into(),
            query: BTreeMap::new(),
            body: Json::object(),
        }
    }

    /// A POST request with a JSON body.
    pub fn post(path: impl Into<String>, body: Json) -> Self {
        ApiRequest {
            method: Method::Post,
            path: path.into(),
            query: BTreeMap::new(),
            body,
        }
    }

    /// A DELETE request.
    pub fn delete(path: impl Into<String>) -> Self {
        ApiRequest {
            method: Method::Delete,
            path: path.into(),
            query: BTreeMap::new(),
            body: Json::object(),
        }
    }

    /// Adds a query parameter.
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.insert(key.into(), value.into());
        self
    }

    /// Path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// An API response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// Status code.
    pub status: StatusCode,
    /// JSON body.
    pub body: Json,
}

impl ApiResponse {
    /// A 200 response with a body.
    pub fn ok(body: Json) -> Self {
        ApiResponse {
            status: StatusCode::Ok,
            body,
        }
    }

    /// A 201 response with a body.
    pub fn created(body: Json) -> Self {
        ApiResponse {
            status: StatusCode::Created,
            body,
        }
    }

    /// An error response carrying a message.
    pub fn error(status: StatusCode, message: impl Into<String>) -> Self {
        ApiResponse {
            status,
            body: Json::from_pairs([("error", Json::from(message.into()))]),
        }
    }

    /// Whether the response is a success.
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }
}

/// Errors produced by the service layer, mapped onto status codes by the
/// router.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The request body or parameters were malformed.
    BadRequest(String),
    /// A referenced dataset or resource does not exist.
    NotFound(String),
    /// An internal processing failure (store, miner, ...).
    Internal(String),
}

impl ApiError {
    /// The status code this error maps to.
    pub fn status(&self) -> StatusCode {
        match self {
            ApiError::BadRequest(_) => StatusCode::BadRequest,
            ApiError::NotFound(_) => StatusCode::NotFound,
            ApiError::Internal(_) => StatusCode::InternalError,
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        match self {
            ApiError::BadRequest(m) | ApiError::NotFound(m) | ApiError::Internal(m) => m,
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes() {
        assert_eq!(StatusCode::Ok.as_u16(), 200);
        assert_eq!(StatusCode::NotFound.as_u16(), 404);
        assert!(StatusCode::Created.is_success());
        assert!(!StatusCode::BadRequest.is_success());
        assert_eq!(StatusCode::InternalError.to_string(), "500");
    }

    #[test]
    fn request_builders() {
        let r = ApiRequest::get("/datasets/santander").with_query("include", "stats");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.segments(), vec!["datasets", "santander"]);
        assert_eq!(r.query["include"], "stats");
        let p = ApiRequest::post("/datasets", Json::object());
        assert_eq!(p.method, Method::Post);
        let d = ApiRequest::delete("/datasets/x");
        assert_eq!(d.method, Method::Delete);
    }

    #[test]
    fn responses_and_errors() {
        let ok = ApiResponse::ok(Json::from_pairs([("n", Json::from(3i64))]));
        assert!(ok.is_success());
        let err = ApiResponse::error(StatusCode::NotFound, "no such dataset");
        assert!(!err.is_success());
        assert_eq!(
            err.body.get("error").unwrap().as_str(),
            Some("no such dataset")
        );

        let e = ApiError::NotFound("x".to_string());
        assert_eq!(e.status(), StatusCode::NotFound);
        assert_eq!(e.message(), "x");
        assert!(e.to_string().contains("404"));
    }
}
