//! Admission control for the serving path.
//!
//! [`AdmissionController`] bounds in-flight work with a **cost-weighted
//! budget**: each request acquires a [`Permit`] for a number of cost units
//! estimated from the work it will do (dataset size × grid size for a
//! mine), bounded per-dataset concurrency, and a bounded wait queue.
//! Requests beyond the queue are shed *immediately* with a typed
//! [`ApiError::Overloaded`] carrying a retry-after hint — under overload the
//! system degrades to fast rejections rather than unbounded queueing, so
//! admitted requests keep a bounded latency. A request carrying a deadline
//! gives up with [`ApiError::DeadlineExceeded`] once the deadline passes
//! while it is still queued.
//!
//! Dropping the [`Permit`] releases the budget and wakes queued waiters, so
//! releases are panic-safe.

use crate::message::ApiError;
use miscela_model::Dataset;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How long an `admit` call may wait for the controller's own state lock
/// before shedding. The critical sections under the lock are tiny, so a
/// miss here means the process is badly wedged and fast rejection is the
/// right answer.
const LOCK_PATIENCE: Duration = Duration::from_secs(1);

/// One mine cost unit per this many dataset cells (sensors × timestamps).
const CELLS_PER_COST_UNIT: usize = 1 << 14;

/// Tuning knobs for [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Total in-flight cost units across all datasets. A single request
    /// costing more than this is still admissible when the controller is
    /// otherwise idle (its cost is clamped to the budget).
    pub max_cost_units: u64,
    /// Concurrent admitted requests per dataset.
    pub max_per_dataset: usize,
    /// Requests allowed to wait for budget; arrivals beyond this are shed
    /// immediately.
    pub max_queue_depth: usize,
    /// Longest a deadline-less request waits in the queue before being
    /// shed. Deadline-carrying requests wait at most until their deadline.
    pub max_queue_wait: Duration,
    /// The *base* back-off hint attached to shed responses, in
    /// milliseconds. The actual hint is load-adaptive: it grows with the
    /// number of queued waiters ahead of the retry and with how much of
    /// the in-flight budget is held (see
    /// [`AdmissionController::retry_hint_ms`]), so clients back off
    /// proportionally to how long the queue will actually take to drain.
    pub retry_after_ms: u64,
}

/// Ceiling on the adaptive hint, as a multiple of the configured base:
/// even a pathologically deep queue should not tell clients to go away for
/// minutes.
const MAX_RETRY_HINT_MULTIPLIER: u64 = 20;

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_cost_units: 64,
            max_per_dataset: 4,
            max_queue_depth: 32,
            max_queue_wait: Duration::from_secs(5),
            retry_after_ms: 100,
        }
    }
}

/// Counters exposed for observability and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (immediately or after queueing).
    pub admitted: u64,
    /// Requests shed with [`ApiError::Overloaded`].
    pub shed: u64,
    /// Requests that gave up with [`ApiError::DeadlineExceeded`] while
    /// queued.
    pub deadline_expired: u64,
    /// Cost units currently held by admitted requests.
    pub in_flight_cost: u64,
    /// Admitted requests currently in flight.
    pub in_flight: usize,
    /// Requests currently waiting in the queue.
    pub queued: usize,
}

#[derive(Debug, Default)]
struct State {
    in_flight_cost: u64,
    in_flight: usize,
    queued: usize,
    per_dataset: HashMap<String, usize>,
    admitted: u64,
    shed: u64,
    deadline_expired: u64,
}

/// Cost-weighted admission controller; see the module docs.
#[derive(Debug, Default)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<State>,
    released: Condvar,
}

/// RAII lease on admission budget: dropping it releases the cost units and
/// the per-dataset slot, and wakes queued waiters.
#[derive(Debug)]
pub struct Permit<'a> {
    controller: &'a AdmissionController,
    dataset: String,
    cost: u64,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.controller.release(&self.dataset, self.cost);
    }
}

impl AdmissionController {
    /// A controller with the given budget configuration.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            state: Mutex::new(State::default()),
            released: Condvar::new(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Estimated admission cost of mining `dataset`: one unit per
    /// `CELLS_PER_COST_UNIT` (2^14) cells of the sensors × timestamps
    /// grid, minimum 1.
    pub fn mine_cost(dataset: &Dataset) -> u64 {
        let cells = dataset
            .sensor_count()
            .saturating_mul(dataset.timestamp_count());
        ((cells / CELLS_PER_COST_UNIT) as u64).max(1)
    }

    /// Acquires a permit for `cost` units of work on `dataset`, waiting in
    /// the bounded queue if the budget is exhausted.
    ///
    /// Sheds with [`ApiError::Overloaded`] when the queue is full or the
    /// queue wait runs out, and with [`ApiError::DeadlineExceeded`] when
    /// `deadline` passes first.
    pub fn admit(
        &self,
        dataset: &str,
        cost: u64,
        deadline: Option<Instant>,
    ) -> Result<Permit<'_>, ApiError> {
        // An oversize request must not be unadmittable: clamp its cost to
        // the whole budget so it runs (alone) rather than waiting forever.
        let cost = cost.clamp(1, self.config.max_cost_units);
        let mut state = self
            .state
            .try_lock_for(LOCK_PATIENCE)
            // The state is unreadable, so no drain estimate exists; be
            // pessimistic — a wedged lock is worse than a deep queue.
            .ok_or_else(|| ApiError::Overloaded {
                message: "admission controller lock is contended".to_string(),
                retry_after_ms: self.config.retry_after_ms * MAX_RETRY_HINT_MULTIPLIER,
            })?;
        // The queue-wait clock starts at arrival; a deadline tightens it.
        let mut give_up_at = Instant::now() + self.config.max_queue_wait;
        if let Some(d) = deadline {
            give_up_at = give_up_at.min(d);
        }
        let mut queued = false;
        loop {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    if queued {
                        state.queued -= 1;
                    }
                    state.deadline_expired += 1;
                    return Err(ApiError::DeadlineExceeded(format!(
                        "deadline expired while waiting for admission to {dataset:?}"
                    )));
                }
            }
            let dataset_slots = state.per_dataset.get(dataset).copied().unwrap_or(0);
            let fits = state.in_flight_cost.saturating_add(cost) <= self.config.max_cost_units
                && dataset_slots < self.config.max_per_dataset;
            if fits {
                if queued {
                    state.queued -= 1;
                }
                state.in_flight_cost += cost;
                state.in_flight += 1;
                *state.per_dataset.entry(dataset.to_string()).or_insert(0) += 1;
                state.admitted += 1;
                return Ok(Permit {
                    controller: self,
                    dataset: dataset.to_string(),
                    cost,
                });
            }
            let now = Instant::now();
            if now >= give_up_at {
                if queued {
                    state.queued -= 1;
                }
                state.shed += 1;
                return Err(self.overloaded(
                    &state,
                    &format!(
                        "gave up waiting for admission to {dataset:?} after {:?}",
                        self.config.max_queue_wait.min(
                            deadline
                                .map(|d| d.saturating_duration_since(now))
                                .unwrap_or(self.config.max_queue_wait)
                        )
                    ),
                ));
            }
            if !queued {
                if state.queued >= self.config.max_queue_depth {
                    state.shed += 1;
                    return Err(self.overloaded(
                        &state,
                        &format!(
                            "admission queue for in-flight work is full ({} waiting)",
                            state.queued
                        ),
                    ));
                }
                state.queued += 1;
                queued = true;
            }
            let (reacquired, _timed_out) = self.released.wait_timeout(state, give_up_at - now);
            state = reacquired;
            // Spurious wakeups and timeouts both just re-run the loop: the
            // predicate and the give-up clock decide, not the wake reason.
        }
    }

    /// A snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        let state = self.state.lock();
        AdmissionStats {
            admitted: state.admitted,
            shed: state.shed,
            deadline_expired: state.deadline_expired,
            in_flight_cost: state.in_flight_cost,
            in_flight: state.in_flight,
            queued: state.queued,
        }
    }

    /// The load-adaptive back-off hint, in milliseconds, for the given
    /// queue depth and held in-flight cost.
    ///
    /// The base hint covers one drain interval of in-flight work; each
    /// queued waiter ahead of the retry adds roughly one more interval,
    /// and a fully held budget adds one. The result is clamped to 20× the
    /// base, so a deep queue tells clients to back off longer without ever
    /// quoting minutes.
    pub fn retry_hint_ms(&self, queued: usize, in_flight_cost: u64) -> u64 {
        let base = self.config.retry_after_ms;
        let budget = self.config.max_cost_units.max(1);
        let load = base * in_flight_cost.min(budget) / budget;
        (base + load + base.saturating_mul(queued as u64))
            .min(base.saturating_mul(MAX_RETRY_HINT_MULTIPLIER))
    }

    fn overloaded(&self, state: &State, message: &str) -> ApiError {
        ApiError::Overloaded {
            message: message.to_string(),
            retry_after_ms: self.retry_hint_ms(state.queued, state.in_flight_cost),
        }
    }

    fn release(&self, dataset: &str, cost: u64) {
        let mut state = self.state.lock();
        state.in_flight_cost = state.in_flight_cost.saturating_sub(cost);
        state.in_flight = state.in_flight.saturating_sub(1);
        if let Some(slots) = state.per_dataset.get_mut(dataset) {
            *slots -= 1;
            if *slots == 0 {
                state.per_dataset.remove(dataset);
            }
        }
        drop(state);
        self.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_config() -> AdmissionConfig {
        AdmissionConfig {
            max_cost_units: 4,
            max_per_dataset: 2,
            max_queue_depth: 1,
            max_queue_wait: Duration::from_millis(50),
            retry_after_ms: 25,
        }
    }

    #[test]
    fn permits_are_released_on_drop() {
        let ctl = AdmissionController::new(tight_config());
        let p1 = ctl.admit("a", 2, None).expect("fits");
        let p2 = ctl.admit("b", 2, None).expect("fills the budget");
        assert_eq!(ctl.stats().in_flight_cost, 4);
        assert_eq!(ctl.stats().in_flight, 2);
        drop(p1);
        drop(p2);
        let stats = ctl.stats();
        assert_eq!(stats.in_flight_cost, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn full_queue_sheds_immediately_with_a_retry_hint() {
        let ctl = AdmissionController::new(tight_config());
        let _hold = ctl.admit("a", 4, None).expect("fills the budget");
        // One waiter fits in the queue; it eventually sheds on queue-wait
        // expiry. A second concurrent waiter would be shed immediately —
        // emulate it by filling the queue from another thread and observing
        // the immediate rejection.
        std::thread::scope(|scope| {
            let queued = scope.spawn(|| ctl.admit("a", 1, None));
            // Wait until the first waiter is actually queued.
            while ctl.stats().queued == 0 {
                std::thread::yield_now();
            }
            let shed = ctl.admit("a", 1, None).expect_err("queue is full");
            match &shed {
                // The adaptive hint: base 25, plus 25 for the fully held
                // budget, plus 25 for the one waiter already queued ahead.
                ApiError::Overloaded { retry_after_ms, .. } => assert_eq!(*retry_after_ms, 75),
                other => panic!("expected Overloaded, got {other:?}"),
            }
            assert!(shed.is_retryable());
            let waited = queued.join().unwrap().expect_err("budget never freed");
            assert!(matches!(waited, ApiError::Overloaded { .. }));
        });
        let stats = ctl.stats();
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn retry_hint_grows_with_queue_depth_and_load() {
        let ctl = AdmissionController::new(tight_config());
        let idle = ctl.retry_hint_ms(0, 0);
        assert_eq!(idle, 25, "an idle controller quotes the base hint");
        // Deeper queues quote strictly longer waits…
        let mut prev = idle;
        for queued in 1..=8 {
            let hint = ctl.retry_hint_ms(queued, 4);
            assert!(
                hint > prev,
                "hint must grow with queue depth: {queued} waiters → {hint}ms ≤ {prev}ms"
            );
            prev = hint;
        }
        // …as does a fuller in-flight budget at equal depth…
        assert!(ctl.retry_hint_ms(2, 4) > ctl.retry_hint_ms(2, 1));
        // …but never past the pessimistic ceiling.
        assert_eq!(
            ctl.retry_hint_ms(10_000, u64::MAX),
            25 * MAX_RETRY_HINT_MULTIPLIER
        );
    }

    #[test]
    fn expired_deadline_beats_queueing() {
        let ctl = AdmissionController::new(tight_config());
        let _hold = ctl.admit("a", 4, None).expect("fills the budget");
        let past = Instant::now() - Duration::from_millis(1);
        let err = ctl.admit("a", 1, Some(past)).expect_err("deadline passed");
        assert!(matches!(err, ApiError::DeadlineExceeded(_)));
        assert_eq!(ctl.stats().deadline_expired, 1);
    }

    #[test]
    fn per_dataset_cap_holds_even_with_budget_to_spare() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_cost_units: 100,
            ..tight_config()
        });
        let _p1 = ctl.admit("a", 1, None).expect("slot 1");
        let _p2 = ctl.admit("a", 1, None).expect("slot 2");
        let past = Instant::now() - Duration::from_millis(1);
        assert!(matches!(
            ctl.admit("a", 1, Some(past)),
            Err(ApiError::DeadlineExceeded(_))
        ));
        // A different dataset is unaffected by the cap.
        assert!(ctl.admit("b", 1, None).is_ok());
    }

    #[test]
    fn oversize_request_is_admitted_when_idle() {
        let ctl = AdmissionController::new(tight_config());
        let permit = ctl
            .admit("a", 1_000_000, None)
            .expect("cost clamps to the whole budget");
        assert_eq!(ctl.stats().in_flight_cost, 4);
        drop(permit);
        assert_eq!(ctl.stats().in_flight_cost, 0);
    }

    #[test]
    fn queued_request_is_admitted_when_budget_frees() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_queue_wait: Duration::from_secs(30),
            ..tight_config()
        });
        let hold = ctl.admit("a", 4, None).expect("fills the budget");
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| ctl.admit("b", 2, None).map(|p| p.cost));
            while ctl.stats().queued == 0 {
                std::thread::yield_now();
            }
            drop(hold);
            assert_eq!(waiter.join().unwrap().expect("admitted after release"), 2);
        });
        assert_eq!(ctl.stats().admitted, 2);
    }
}
