//! Durable append sessions: the snapshot codec and WAL record vocabulary.
//!
//! The service's durability layer (see [`crate::service::MiscelaService`])
//! persists each dataset as a *snapshot* — an exact JSON encoding of the
//! resident [`Dataset`] — plus a write-ahead log of the append-session
//! operations performed since that snapshot. This module owns both formats:
//!
//! * [`snapshot_data`] / [`restore_dataset`] encode a dataset losslessly
//!   (numbers round-trip through the store's exact [`Json`] number
//!   formatting, *not* the lossy CSV float format), together with its
//!   revision counter and the `applied_session` watermark that makes WAL
//!   replay idempotent across a crash between snapshot rename and WAL
//!   truncation;
//! * [`begin_record`] / [`chunk_record`] / [`commit_record`] build the WAL
//!   records logged by `begin_append` / `append_chunk` / `finish_append`,
//!   and [`parse_op`] decodes them for replay. Chunk records carry the raw
//!   `data.csv` chunk content, so replay funnels through exactly the same
//!   parser as the live path.

use crate::message::ApiError;
use miscela_csv::chunk::Chunk;
use miscela_model::{
    Dataset, DatasetBuilder, Duration, GeoPoint, RetentionPolicy, TimeGrid, TimeSeries, Timestamp,
};
use miscela_store::Json;

fn corrupt(what: &str) -> ApiError {
    ApiError::Internal(format!("durability snapshot is corrupt: {what}"))
}

/// Encodes a dataset as an exact snapshot payload.
///
/// `revision` is the registry revision the snapshot corresponds to;
/// `applied_session` is the highest committed append-session id whose rows
/// the snapshot already contains — replay skips sessions at or below it.
pub fn snapshot_data(ds: &Dataset, revision: u64, applied_session: u64) -> Json {
    let mut doc = Json::object();
    doc.set("name", Json::from(ds.name()));
    doc.set("revision", Json::from(revision as i64));
    doc.set("applied_session", Json::from(applied_session as i64));
    let mut grid = Json::object();
    grid.set("start", Json::from(ds.grid().start().epoch_seconds()));
    grid.set("interval", Json::from(ds.grid().interval().as_secs()));
    grid.set("len", Json::from(ds.grid().len()));
    doc.set("grid", grid);
    doc.set(
        "attributes",
        Json::Array(ds.attributes().names().map(Json::from).collect()),
    );
    let retention = ds.retention();
    let mut ret = Json::object();
    ret.set(
        "max_timestamps",
        retention
            .max_timestamps
            .map(Json::from)
            .unwrap_or(Json::Null),
    );
    ret.set(
        "max_age",
        retention
            .max_age
            .map(|d| Json::from(d.as_secs()))
            .unwrap_or(Json::Null),
    );
    doc.set("retention", ret);
    let mut sensors = Vec::with_capacity(ds.sensor_count());
    for ss in ds.iter() {
        let mut entry = Json::object();
        entry.set("id", Json::from(ss.sensor.id.as_str()));
        entry.set(
            "attribute",
            Json::from(ds.attributes().name_of(ss.sensor.attribute)),
        );
        entry.set("lat", Json::from(ss.sensor.location.lat));
        entry.set("lon", Json::from(ss.sensor.location.lon));
        entry.set(
            "values",
            Json::Array(
                ss.series
                    .iter()
                    .map(|v| v.map(Json::from).unwrap_or(Json::Null))
                    .collect(),
            ),
        );
        sensors.push(entry);
    }
    doc.set("sensors", Json::Array(sensors));
    doc
}

/// A dataset decoded from a snapshot payload.
#[derive(Debug)]
pub struct RestoredDataset {
    /// The rebuilt dataset (identical series content, attribute ids and
    /// sensor indices as the snapshotted original).
    pub dataset: Dataset,
    /// Registry revision the snapshot corresponds to.
    pub revision: u64,
    /// Highest committed append-session id already contained in the
    /// snapshot; WAL replay must skip sessions at or below this.
    pub applied_session: u64,
}

/// Decodes a snapshot payload written by [`snapshot_data`].
pub fn restore_dataset(data: &Json) -> Result<RestoredDataset, ApiError> {
    let name = data
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or_else(|| corrupt("missing name"))?;
    let revision = data
        .get("revision")
        .and_then(|r| r.as_i64())
        .ok_or_else(|| corrupt("missing revision"))? as u64;
    let applied_session = data
        .get("applied_session")
        .and_then(|s| s.as_i64())
        .ok_or_else(|| corrupt("missing applied_session"))? as u64;
    let grid = data.get("grid").ok_or_else(|| corrupt("missing grid"))?;
    let start = grid
        .get("start")
        .and_then(|s| s.as_i64())
        .ok_or_else(|| corrupt("missing grid.start"))?;
    let interval = grid
        .get("interval")
        .and_then(|i| i.as_i64())
        .ok_or_else(|| corrupt("missing grid.interval"))?;
    let len = grid
        .get("len")
        .and_then(|l| l.as_i64())
        .ok_or_else(|| corrupt("missing grid.len"))? as usize;

    let mut builder = DatasetBuilder::new(name);
    builder.set_grid(
        TimeGrid::new(
            Timestamp::from_epoch_seconds(start),
            Duration::seconds(interval),
            len,
        )
        .map_err(|e| corrupt(&format!("grid: {e}")))?,
    );
    // Register attributes first, in snapshot order, so attribute ids match
    // the original dataset exactly (sensors only reference a subset when
    // some attribute lost its last sensor).
    if let Some(attrs) = data.get("attributes").and_then(|a| a.as_array()) {
        for attr in attrs {
            let name = attr
                .as_str()
                .ok_or_else(|| corrupt("non-string attribute"))?;
            builder.add_attribute(name);
        }
    }
    let sensors = data
        .get("sensors")
        .and_then(|s| s.as_array())
        .ok_or_else(|| corrupt("missing sensors"))?;
    for entry in sensors {
        let id = entry
            .get("id")
            .and_then(|i| i.as_str())
            .ok_or_else(|| corrupt("sensor missing id"))?;
        let attribute = entry
            .get("attribute")
            .and_then(|a| a.as_str())
            .ok_or_else(|| corrupt("sensor missing attribute"))?;
        let lat = entry
            .get("lat")
            .and_then(|l| l.as_f64())
            .ok_or_else(|| corrupt("sensor missing lat"))?;
        let lon = entry
            .get("lon")
            .and_then(|l| l.as_f64())
            .ok_or_else(|| corrupt("sensor missing lon"))?;
        let idx = builder
            .add_sensor(id, attribute, GeoPoint::new_unchecked(lat, lon))
            .map_err(|e| corrupt(&format!("sensor {id:?}: {e}")))?;
        let values = entry
            .get("values")
            .and_then(|v| v.as_array())
            .ok_or_else(|| corrupt("sensor missing values"))?;
        if values.len() != len {
            return Err(corrupt(&format!(
                "sensor {id:?} has {} values for a {len}-point grid",
                values.len()
            )));
        }
        let options: Vec<Option<f64>> = values.iter().map(|v| v.as_f64()).collect();
        builder
            .set_series(idx, TimeSeries::from_options(&options))
            .map_err(|e| corrupt(&format!("sensor {id:?} series: {e}")))?;
    }
    if let Some(ret) = data.get("retention") {
        builder.set_retention(RetentionPolicy {
            max_timestamps: ret
                .get("max_timestamps")
                .and_then(|m| m.as_i64())
                .map(|m| m as usize),
            max_age: ret
                .get("max_age")
                .and_then(|m| m.as_i64())
                .map(Duration::seconds),
        });
    }
    let dataset = builder
        .build()
        .map_err(|e| corrupt(&format!("rebuild: {e}")))?;
    Ok(RestoredDataset {
        dataset,
        revision,
        applied_session,
    })
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// An append session was begun.
    Begin {
        /// Per-dataset session id (monotone).
        session: u64,
    },
    /// A `data.csv` chunk was accepted (and acknowledged) for a session.
    Chunk {
        /// Session the chunk belongs to.
        session: u64,
        /// The raw chunk, exactly as the client sent it.
        chunk: Chunk,
    },
    /// A session's rows were applied to the dataset.
    Commit {
        /// Session that committed.
        session: u64,
    },
}

/// Builds the WAL record for `begin_append`.
pub fn begin_record(session: u64) -> Json {
    Json::from_pairs([
        ("op", Json::from("begin")),
        ("session", Json::from(session as i64)),
    ])
}

/// Builds the WAL record for one acknowledged `append_chunk`.
pub fn chunk_record(session: u64, chunk: &Chunk) -> Json {
    Json::from_pairs([
        ("op", Json::from("chunk")),
        ("session", Json::from(session as i64)),
        ("index", Json::from(chunk.index)),
        ("total", Json::from(chunk.total)),
        ("content", Json::from(chunk.content.as_str())),
    ])
}

/// Builds the WAL record for a committed `finish_append`.
pub fn commit_record(session: u64) -> Json {
    Json::from_pairs([
        ("op", Json::from("commit")),
        ("session", Json::from(session as i64)),
    ])
}

/// Decodes one WAL record for replay.
pub fn parse_op(record: &Json) -> Result<WalOp, ApiError> {
    let bad = |what: &str| ApiError::Internal(format!("durability WAL record is corrupt: {what}"));
    let op = record
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or_else(|| bad("missing op"))?;
    let session = record
        .get("session")
        .and_then(|s| s.as_i64())
        .ok_or_else(|| bad("missing session"))? as u64;
    match op {
        "begin" => Ok(WalOp::Begin { session }),
        "commit" => Ok(WalOp::Commit { session }),
        "chunk" => {
            let index = record
                .get("index")
                .and_then(|i| i.as_i64())
                .ok_or_else(|| bad("chunk missing index"))? as usize;
            let total = record
                .get("total")
                .and_then(|t| t.as_i64())
                .ok_or_else(|| bad("chunk missing total"))? as usize;
            let content = record
                .get("content")
                .and_then(|c| c.as_str())
                .ok_or_else(|| bad("chunk missing content"))?
                .to_string();
            Ok(WalOp::Chunk {
                session,
                chunk: Chunk {
                    index,
                    total,
                    content,
                },
            })
        }
        other => Err(bad(&format!("unknown op {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_model::{Duration, SensorId};

    fn awkward_dataset() -> Dataset {
        // Values chosen to break any lossy float formatting: snapshots must
        // round-trip them bit-exactly.
        let mut b = DatasetBuilder::new("awkward");
        let start = Timestamp::from_epoch_seconds(1_456_790_400);
        b.set_grid(TimeGrid::new(start, Duration::minutes(20), 5).unwrap());
        b.add_attribute("temperature");
        b.add_attribute("orphaned attribute");
        b.add_attribute("traffic");
        b.add_sensor(
            "s1",
            "temperature",
            GeoPoint::new_unchecked(43.4623, -3.80998),
        )
        .unwrap();
        let idx = b
            .add_sensor("s2", "traffic", GeoPoint::new_unchecked(43.0, -3.0))
            .unwrap();
        b.set_series(
            idx,
            TimeSeries::from_options(&[
                Some(0.1 + 0.2),
                None,
                Some(1.0 / 3.0),
                Some(-1.5e-300),
                Some(12345678.901234567),
            ]),
        )
        .unwrap();
        b.set_retention(RetentionPolicy {
            max_timestamps: Some(1024),
            max_age: Some(Duration::days(7)),
        });
        b.build().unwrap()
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let original = awkward_dataset();
        let data = snapshot_data(&original, 7, 3);
        // Through a serialize/parse cycle, as recovery reads it from disk.
        let data = Json::parse(&data.to_string_compact()).unwrap();
        let restored = restore_dataset(&data).unwrap();
        assert_eq!(restored.revision, 7);
        assert_eq!(restored.applied_session, 3);
        let ds = restored.dataset;
        assert_eq!(ds.name(), original.name());
        assert_eq!(ds.grid(), original.grid());
        assert_eq!(ds.retention(), original.retention());
        // Attribute ids survive, including the attribute with no sensors.
        assert_eq!(
            ds.attributes().names().collect::<Vec<_>>(),
            original.attributes().names().collect::<Vec<_>>()
        );
        assert_eq!(
            ds.attributes().id_of("traffic"),
            original.attributes().id_of("traffic")
        );
        assert_eq!(ds.sensor_count(), original.sensor_count());
        for (a, b) in ds.iter().zip(original.iter()) {
            assert_eq!(a.sensor.id, b.sensor.id);
            assert_eq!(a.sensor.attribute, b.sensor.attribute);
            assert_eq!(a.sensor.location.lat, b.sensor.location.lat);
            assert_eq!(a.sensor.location.lon, b.sensor.location.lon);
            let av: Vec<Option<f64>> = a.series.iter().collect();
            let bv: Vec<Option<f64>> = b.series.iter().collect();
            assert_eq!(av, bv, "series for {:?} must be bit-exact", a.sensor.id);
        }
        let s2 = ds.index_of_id(&SensorId::new("s2")).unwrap();
        assert_eq!(ds.series(s2).get(0), Some(0.1 + 0.2));
        assert_eq!(ds.series(s2).get(3), Some(-1.5e-300));
    }

    #[test]
    fn wal_ops_round_trip() {
        assert_eq!(
            parse_op(&begin_record(4)).unwrap(),
            WalOp::Begin { session: 4 }
        );
        assert_eq!(
            parse_op(&commit_record(9)).unwrap(),
            WalOp::Commit { session: 9 }
        );
        let chunk = Chunk {
            index: 2,
            total: 5,
            content: "id,attribute,time,value\ns1,temperature,2016-03-01 00:00:00,9.5\n"
                .to_string(),
        };
        let parsed = parse_op(&chunk_record(4, &chunk)).unwrap();
        assert_eq!(
            parsed,
            WalOp::Chunk {
                session: 4,
                chunk: chunk.clone()
            }
        );
        // And through the on-disk serialization.
        let reparsed = Json::parse(&chunk_record(4, &chunk).to_string_compact()).unwrap();
        assert_eq!(
            parse_op(&reparsed).unwrap(),
            WalOp::Chunk { session: 4, chunk }
        );
    }

    #[test]
    fn corrupt_snapshots_and_records_are_typed_errors() {
        assert!(matches!(
            restore_dataset(&Json::object()),
            Err(ApiError::Internal(_))
        ));
        assert!(matches!(
            parse_op(&Json::from_pairs([("op", Json::from("nope"))])),
            Err(ApiError::Internal(_))
        ));
        let mut missing_values = snapshot_data(&awkward_dataset(), 1, 0);
        missing_values.set("sensors", Json::Array(vec![Json::object()]));
        assert!(matches!(
            restore_dataset(&missing_values),
            Err(ApiError::Internal(_))
        ));
    }
}
