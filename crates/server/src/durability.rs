//! Durable append sessions: the snapshot codec and WAL record vocabulary.
//!
//! The service's durability layer (see [`crate::service::MiscelaService`])
//! persists each dataset as a *snapshot* — an exact JSON encoding of the
//! resident [`Dataset`] — plus a write-ahead log of the append-session
//! operations performed since that snapshot. This module owns both formats:
//!
//! * [`snapshot_data`] / [`restore_dataset`] encode a dataset losslessly
//!   (numbers round-trip through the store's exact [`Json`] number
//!   formatting, *not* the lossy CSV float format), together with its
//!   revision counter and the `applied_session` watermark that makes WAL
//!   replay idempotent across a crash between snapshot rename and WAL
//!   truncation;
//! * [`begin_record`] / [`chunk_record`] / [`commit_record`] build the WAL
//!   records logged by `begin_append` / `append_chunk` / `finish_append`,
//!   and [`parse_op`] decodes them for replay. Chunk records carry the raw
//!   `data.csv` chunk content, so replay funnels through exactly the same
//!   parser as the live path.

use crate::message::ApiError;
use crate::service::{AppendSummary, DatasetSummary, ReplayOutcome, RetentionSummary};
use miscela_csv::chunk::Chunk;
use miscela_model::{
    Dataset, DatasetBuilder, Duration, GeoPoint, RetentionPolicy, TimeGrid, TimeSeries, Timestamp,
};
use miscela_store::Json;

fn corrupt(what: &str) -> ApiError {
    ApiError::Internal(format!("durability snapshot is corrupt: {what}"))
}

/// Encodes a dataset as an exact snapshot payload.
///
/// `revision` is the registry revision the snapshot corresponds to;
/// `applied_session` is the highest committed append-session id whose rows
/// the snapshot already contains — replay skips sessions at or below it.
/// `replay` is the dataset's slice of the idempotency-key cache (bounded),
/// so a keyed mutation retried across a crash replays its original
/// response instead of re-applying.
pub fn snapshot_data(
    ds: &Dataset,
    revision: u64,
    applied_session: u64,
    replay: &[(String, ReplayOutcome)],
) -> Json {
    let mut doc = Json::object();
    doc.set("name", Json::from(ds.name()));
    doc.set("revision", Json::from(revision as i64));
    doc.set("applied_session", Json::from(applied_session as i64));
    if !replay.is_empty() {
        doc.set(
            "idempotency",
            Json::Array(
                replay
                    .iter()
                    .filter_map(|(key, outcome)| replay_entry_json(key, outcome))
                    .collect(),
            ),
        );
    }
    let mut grid = Json::object();
    grid.set("start", Json::from(ds.grid().start().epoch_seconds()));
    grid.set("interval", Json::from(ds.grid().interval().as_secs()));
    grid.set("len", Json::from(ds.grid().len()));
    doc.set("grid", grid);
    doc.set(
        "attributes",
        Json::Array(ds.attributes().names().map(Json::from).collect()),
    );
    let retention = ds.retention();
    let mut ret = Json::object();
    ret.set(
        "max_timestamps",
        retention
            .max_timestamps
            .map(Json::from)
            .unwrap_or(Json::Null),
    );
    ret.set(
        "max_age",
        retention
            .max_age
            .map(|d| Json::from(d.as_secs()))
            .unwrap_or(Json::Null),
    );
    doc.set("retention", ret);
    let mut sensors = Vec::with_capacity(ds.sensor_count());
    for ss in ds.iter() {
        let mut entry = Json::object();
        entry.set("id", Json::from(ss.sensor.id.as_str()));
        entry.set(
            "attribute",
            Json::from(ds.attributes().name_of(ss.sensor.attribute)),
        );
        entry.set("lat", Json::from(ss.sensor.location.lat));
        entry.set("lon", Json::from(ss.sensor.location.lon));
        entry.set(
            "values",
            Json::Array(
                ss.series
                    .iter()
                    .map(|v| v.map(Json::from).unwrap_or(Json::Null))
                    .collect(),
            ),
        );
        sensors.push(entry);
    }
    doc.set("sensors", Json::Array(sensors));
    doc
}

/// A dataset decoded from a snapshot payload.
#[derive(Debug)]
pub struct RestoredDataset {
    /// The rebuilt dataset (identical series content, attribute ids and
    /// sensor indices as the snapshotted original).
    pub dataset: Dataset,
    /// Registry revision the snapshot corresponds to.
    pub revision: u64,
    /// Highest committed append-session id already contained in the
    /// snapshot; WAL replay must skip sessions at or below this.
    pub applied_session: u64,
    /// The idempotency-key entries persisted with the snapshot, oldest
    /// first, to be reinstalled into the service's replayed-response cache.
    pub replay: Vec<(String, ReplayOutcome)>,
}

/// Decodes a snapshot payload written by [`snapshot_data`].
pub fn restore_dataset(data: &Json) -> Result<RestoredDataset, ApiError> {
    let name = data
        .get("name")
        .and_then(|n| n.as_str())
        .ok_or_else(|| corrupt("missing name"))?;
    let revision = data
        .get("revision")
        .and_then(|r| r.as_i64())
        .ok_or_else(|| corrupt("missing revision"))? as u64;
    let applied_session = data
        .get("applied_session")
        .and_then(|s| s.as_i64())
        .ok_or_else(|| corrupt("missing applied_session"))? as u64;
    let grid = data.get("grid").ok_or_else(|| corrupt("missing grid"))?;
    let start = grid
        .get("start")
        .and_then(|s| s.as_i64())
        .ok_or_else(|| corrupt("missing grid.start"))?;
    let interval = grid
        .get("interval")
        .and_then(|i| i.as_i64())
        .ok_or_else(|| corrupt("missing grid.interval"))?;
    let len = grid
        .get("len")
        .and_then(|l| l.as_i64())
        .ok_or_else(|| corrupt("missing grid.len"))? as usize;

    let mut builder = DatasetBuilder::new(name);
    builder.set_grid(
        TimeGrid::new(
            Timestamp::from_epoch_seconds(start),
            Duration::seconds(interval),
            len,
        )
        .map_err(|e| corrupt(&format!("grid: {e}")))?,
    );
    // Register attributes first, in snapshot order, so attribute ids match
    // the original dataset exactly (sensors only reference a subset when
    // some attribute lost its last sensor).
    if let Some(attrs) = data.get("attributes").and_then(|a| a.as_array()) {
        for attr in attrs {
            let name = attr
                .as_str()
                .ok_or_else(|| corrupt("non-string attribute"))?;
            builder.add_attribute(name);
        }
    }
    let sensors = data
        .get("sensors")
        .and_then(|s| s.as_array())
        .ok_or_else(|| corrupt("missing sensors"))?;
    for entry in sensors {
        let id = entry
            .get("id")
            .and_then(|i| i.as_str())
            .ok_or_else(|| corrupt("sensor missing id"))?;
        let attribute = entry
            .get("attribute")
            .and_then(|a| a.as_str())
            .ok_or_else(|| corrupt("sensor missing attribute"))?;
        let lat = entry
            .get("lat")
            .and_then(|l| l.as_f64())
            .ok_or_else(|| corrupt("sensor missing lat"))?;
        let lon = entry
            .get("lon")
            .and_then(|l| l.as_f64())
            .ok_or_else(|| corrupt("sensor missing lon"))?;
        let idx = builder
            .add_sensor(id, attribute, GeoPoint::new_unchecked(lat, lon))
            .map_err(|e| corrupt(&format!("sensor {id:?}: {e}")))?;
        let values = entry
            .get("values")
            .and_then(|v| v.as_array())
            .ok_or_else(|| corrupt("sensor missing values"))?;
        if values.len() != len {
            return Err(corrupt(&format!(
                "sensor {id:?} has {} values for a {len}-point grid",
                values.len()
            )));
        }
        let options: Vec<Option<f64>> = values.iter().map(|v| v.as_f64()).collect();
        builder
            .set_series(idx, TimeSeries::from_options(&options))
            .map_err(|e| corrupt(&format!("sensor {id:?} series: {e}")))?;
    }
    if let Some(ret) = data.get("retention") {
        builder.set_retention(RetentionPolicy {
            max_timestamps: ret
                .get("max_timestamps")
                .and_then(|m| m.as_i64())
                .map(|m| m as usize),
            max_age: ret
                .get("max_age")
                .and_then(|m| m.as_i64())
                .map(Duration::seconds),
        });
    }
    let dataset = builder
        .build()
        .map_err(|e| corrupt(&format!("rebuild: {e}")))?;
    let mut replay = Vec::new();
    if let Some(entries) = data.get("idempotency").and_then(|e| e.as_array()) {
        for entry in entries {
            replay.push(parse_replay_entry(entry)?);
        }
    }
    Ok(RestoredDataset {
        dataset,
        revision,
        applied_session,
        replay,
    })
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// An append session was begun.
    Begin {
        /// Per-dataset session id (monotone).
        session: u64,
        /// The caller-supplied idempotency key, when the begin carried one:
        /// recovery reinstalls `key → Begin{session}` into the replayed-
        /// response cache so a retried begin replays the same session id.
        key: Option<String>,
    },
    /// A `data.csv` chunk was accepted (and acknowledged) for a session.
    Chunk {
        /// Session the chunk belongs to.
        session: u64,
        /// The chunk's per-session sequence number — the acked-sequence
        /// watermark recovery restores is the highest `seq` replayed.
        seq: u64,
        /// The raw chunk, exactly as the client sent it.
        chunk: Chunk,
    },
    /// A session's rows were applied to the dataset.
    Commit {
        /// Session that committed.
        session: u64,
        /// The caller-supplied idempotency key, when the finish carried
        /// one.
        key: Option<String>,
        /// The acknowledged summary, carried so a finish retried across a
        /// crash replays the *original* response instead of re-committing.
        summary: Option<AppendSummary>,
        /// Wall-clock nanoseconds of the original append session, for the
        /// replayed response body.
        elapsed_ns: u64,
    },
}

/// Builds the WAL record for `begin_append`.
pub fn begin_record(session: u64, key: Option<&str>) -> Json {
    let mut doc = Json::from_pairs([
        ("op", Json::from("begin")),
        ("session", Json::from(session as i64)),
    ]);
    if let Some(key) = key {
        doc.set("key", Json::from(key));
    }
    doc
}

/// Builds the WAL record for one acknowledged `append_chunk`.
pub fn chunk_record(session: u64, seq: u64, chunk: &Chunk) -> Json {
    Json::from_pairs([
        ("op", Json::from("chunk")),
        ("session", Json::from(session as i64)),
        ("seq", Json::from(seq as i64)),
        ("index", Json::from(chunk.index)),
        ("total", Json::from(chunk.total)),
        ("content", Json::from(chunk.content.as_str())),
    ])
}

/// Builds the WAL record for a committed `finish_append`. The record
/// carries the acknowledged summary (and the idempotency key, when the
/// finish had one) so recovery can reinstall the replayed-response entry:
/// a finish retried after a crash replays this exact outcome.
pub fn commit_record(
    session: u64,
    key: Option<&str>,
    summary: &AppendSummary,
    elapsed_ns: u64,
) -> Json {
    let mut doc = Json::from_pairs([
        ("op", Json::from("commit")),
        ("session", Json::from(session as i64)),
        ("elapsed_ns", Json::from(elapsed_ns as i64)),
        ("new_timestamps", Json::from(summary.new_timestamps)),
        ("measurements", Json::from(summary.measurements)),
        ("trimmed_timestamps", Json::from(summary.trimmed_timestamps)),
        ("timestamps", Json::from(summary.timestamps)),
        ("revision", Json::from(summary.revision as i64)),
    ]);
    if let Some(key) = key {
        doc.set("key", Json::from(key));
    }
    doc
}

/// Decodes one WAL record for replay.
pub fn parse_op(record: &Json) -> Result<WalOp, ApiError> {
    let bad = |what: &str| ApiError::Internal(format!("durability WAL record is corrupt: {what}"));
    let op = record
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or_else(|| bad("missing op"))?;
    let session = record
        .get("session")
        .and_then(|s| s.as_i64())
        .ok_or_else(|| bad("missing session"))? as u64;
    let key = record
        .get("key")
        .and_then(|k| k.as_str())
        .map(|k| k.to_string());
    match op {
        "begin" => Ok(WalOp::Begin { session, key }),
        "commit" => {
            // Records written before commits carried summaries decode with
            // `summary: None`; recovery then simply has no response to
            // replay for that session's key.
            let summary = record.get("revision").and_then(|r| r.as_i64()).map(|rev| {
                let field = |name: &str| {
                    record
                        .get(name)
                        .and_then(|v| v.as_i64())
                        .unwrap_or(0)
                        .max(0) as usize
                };
                AppendSummary {
                    name: String::new(),
                    new_timestamps: field("new_timestamps"),
                    measurements: field("measurements"),
                    trimmed_timestamps: field("trimmed_timestamps"),
                    timestamps: field("timestamps"),
                    revision: rev.max(0) as u64,
                }
            });
            let elapsed_ns = record
                .get("elapsed_ns")
                .and_then(|e| e.as_i64())
                .unwrap_or(0)
                .max(0) as u64;
            Ok(WalOp::Commit {
                session,
                key,
                summary,
                elapsed_ns,
            })
        }
        "chunk" => {
            let index = record
                .get("index")
                .and_then(|i| i.as_i64())
                .ok_or_else(|| bad("chunk missing index"))? as usize;
            let total = record
                .get("total")
                .and_then(|t| t.as_i64())
                .ok_or_else(|| bad("chunk missing total"))? as usize;
            let content = record
                .get("content")
                .and_then(|c| c.as_str())
                .ok_or_else(|| bad("chunk missing content"))?
                .to_string();
            // Chunk records written before sequence numbers existed carry
            // no `seq`; they were only ever written in client order, so the
            // chunk's 1-based position (its index + 1) is the right
            // watermark.
            let seq = record
                .get("seq")
                .and_then(|s| s.as_i64())
                .map(|s| s.max(0) as u64)
                .unwrap_or(index as u64 + 1);
            Ok(WalOp::Chunk {
                session,
                seq,
                chunk: Chunk {
                    index,
                    total,
                    content,
                },
            })
        }
        other => Err(bad(&format!("unknown op {other:?}"))),
    }
}

/// Serializes one idempotency-key cache entry for a snapshot.
///
/// Returns `None` for outcomes that are deliberately **not** persisted:
/// [`ReplayOutcome::Sweep`] bodies can be large and are pure derived data,
/// so a retried sweep after a restart re-mines instead of replaying (safe —
/// sweeps mutate nothing).
pub fn replay_entry_json(key: &str, outcome: &ReplayOutcome) -> Option<Json> {
    let mut doc = Json::object();
    doc.set("key", Json::from(key));
    match outcome {
        ReplayOutcome::UploadBegin => {
            doc.set("kind", Json::from("upload_begin"));
        }
        ReplayOutcome::Begin { session } => {
            doc.set("kind", Json::from("begin"));
            doc.set("session", Json::from(*session as i64));
        }
        ReplayOutcome::Finish {
            summary,
            elapsed_ns,
        } => {
            doc.set("kind", Json::from("finish"));
            doc.set("name", Json::from(summary.name.as_str()));
            doc.set("new_timestamps", Json::from(summary.new_timestamps));
            doc.set("measurements", Json::from(summary.measurements));
            doc.set("trimmed_timestamps", Json::from(summary.trimmed_timestamps));
            doc.set("timestamps", Json::from(summary.timestamps));
            doc.set("revision", Json::from(summary.revision as i64));
            doc.set("elapsed_ns", Json::from(*elapsed_ns as i64));
        }
        ReplayOutcome::Retention { summary } => {
            doc.set("kind", Json::from("retention"));
            doc.set("name", Json::from(summary.name.as_str()));
            doc.set("trimmed_timestamps", Json::from(summary.trimmed_timestamps));
            doc.set("trimmed_total", Json::from(summary.trimmed_total));
            doc.set("timestamps", Json::from(summary.timestamps));
            doc.set("revision", Json::from(summary.revision as i64));
        }
        ReplayOutcome::Register {
            summary,
            elapsed_ns,
        } => {
            doc.set("kind", Json::from("register"));
            doc.set("name", Json::from(summary.name.as_str()));
            doc.set("sensors", Json::from(summary.sensors));
            doc.set("records", Json::from(summary.records));
            doc.set(
                "attributes",
                Json::Array(
                    summary
                        .attributes
                        .iter()
                        .map(|a| Json::from(a.as_str()))
                        .collect(),
                ),
            );
            doc.set("elapsed_ns", Json::from(*elapsed_ns as i64));
        }
        ReplayOutcome::Delete => {
            doc.set("kind", Json::from("delete"));
        }
        ReplayOutcome::Sweep { .. } => return None,
    }
    Some(doc)
}

/// Decodes one idempotency-key cache entry from a snapshot.
pub fn parse_replay_entry(entry: &Json) -> Result<(String, ReplayOutcome), ApiError> {
    let bad = |what: &str| corrupt(&format!("idempotency entry: {what}"));
    let key = entry
        .get("key")
        .and_then(|k| k.as_str())
        .ok_or_else(|| bad("missing key"))?
        .to_string();
    let kind = entry
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or_else(|| bad("missing kind"))?;
    let field = |name: &str| entry.get(name).and_then(|v| v.as_i64()).unwrap_or(0).max(0) as usize;
    let name = || {
        entry
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or_default()
            .to_string()
    };
    let outcome = match kind {
        "upload_begin" => ReplayOutcome::UploadBegin,
        "begin" => ReplayOutcome::Begin {
            session: field("session") as u64,
        },
        "finish" => ReplayOutcome::Finish {
            summary: AppendSummary {
                name: name(),
                new_timestamps: field("new_timestamps"),
                measurements: field("measurements"),
                trimmed_timestamps: field("trimmed_timestamps"),
                timestamps: field("timestamps"),
                revision: field("revision") as u64,
            },
            elapsed_ns: field("elapsed_ns") as u64,
        },
        "retention" => ReplayOutcome::Retention {
            summary: RetentionSummary {
                name: name(),
                trimmed_timestamps: field("trimmed_timestamps"),
                trimmed_total: field("trimmed_total"),
                timestamps: field("timestamps"),
                revision: field("revision") as u64,
            },
        },
        "register" => ReplayOutcome::Register {
            summary: DatasetSummary {
                name: name(),
                sensors: field("sensors"),
                records: field("records"),
                attributes: entry
                    .get("attributes")
                    .and_then(|a| a.as_array())
                    .map(|a| {
                        a.iter()
                            .filter_map(|v| v.as_str().map(|s| s.to_string()))
                            .collect()
                    })
                    .unwrap_or_default(),
            },
            elapsed_ns: field("elapsed_ns") as u64,
        },
        "delete" => ReplayOutcome::Delete,
        other => return Err(bad(&format!("unknown kind {other:?}"))),
    };
    Ok((key, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miscela_model::{Duration, SensorId};

    fn awkward_dataset() -> Dataset {
        // Values chosen to break any lossy float formatting: snapshots must
        // round-trip them bit-exactly.
        let mut b = DatasetBuilder::new("awkward");
        let start = Timestamp::from_epoch_seconds(1_456_790_400);
        b.set_grid(TimeGrid::new(start, Duration::minutes(20), 5).unwrap());
        b.add_attribute("temperature");
        b.add_attribute("orphaned attribute");
        b.add_attribute("traffic");
        b.add_sensor(
            "s1",
            "temperature",
            GeoPoint::new_unchecked(43.4623, -3.80998),
        )
        .unwrap();
        let idx = b
            .add_sensor("s2", "traffic", GeoPoint::new_unchecked(43.0, -3.0))
            .unwrap();
        b.set_series(
            idx,
            TimeSeries::from_options(&[
                Some(0.1 + 0.2),
                None,
                Some(1.0 / 3.0),
                Some(-1.5e-300),
                Some(12345678.901234567),
            ]),
        )
        .unwrap();
        b.set_retention(RetentionPolicy {
            max_timestamps: Some(1024),
            max_age: Some(Duration::days(7)),
        });
        b.build().unwrap()
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let original = awkward_dataset();
        let replay = vec![
            ("c1-upload".to_string(), ReplayOutcome::UploadBegin),
            (
                "c1-begin-0".to_string(),
                ReplayOutcome::Begin { session: 3 },
            ),
            (
                "c1-finish-0".to_string(),
                ReplayOutcome::Finish {
                    summary: AppendSummary {
                        name: "awkward".to_string(),
                        new_timestamps: 4,
                        measurements: 9,
                        trimmed_timestamps: 1,
                        timestamps: 5,
                        revision: 7,
                    },
                    elapsed_ns: 1234,
                },
            ),
            (
                "c1-retention-0".to_string(),
                ReplayOutcome::Retention {
                    summary: RetentionSummary {
                        name: "awkward".to_string(),
                        trimmed_timestamps: 2,
                        trimmed_total: 6,
                        timestamps: 3,
                        revision: 8,
                    },
                },
            ),
            (
                "c1-register-0".to_string(),
                ReplayOutcome::Register {
                    summary: DatasetSummary {
                        name: "awkward".to_string(),
                        sensors: 2,
                        records: 10,
                        attributes: vec!["temperature".to_string(), "traffic".to_string()],
                    },
                    elapsed_ns: 77,
                },
            ),
            ("c1-delete-0".to_string(), ReplayOutcome::Delete),
        ];
        let data = snapshot_data(&original, 7, 3, &replay);
        // Through a serialize/parse cycle, as recovery reads it from disk.
        let data = Json::parse(&data.to_string_compact()).unwrap();
        let restored = restore_dataset(&data).unwrap();
        assert_eq!(restored.revision, 7);
        assert_eq!(restored.applied_session, 3);
        // The idempotency-key cache slice round-trips exactly, in order.
        assert_eq!(restored.replay, replay);
        let ds = restored.dataset;
        assert_eq!(ds.name(), original.name());
        assert_eq!(ds.grid(), original.grid());
        assert_eq!(ds.retention(), original.retention());
        // Attribute ids survive, including the attribute with no sensors.
        assert_eq!(
            ds.attributes().names().collect::<Vec<_>>(),
            original.attributes().names().collect::<Vec<_>>()
        );
        assert_eq!(
            ds.attributes().id_of("traffic"),
            original.attributes().id_of("traffic")
        );
        assert_eq!(ds.sensor_count(), original.sensor_count());
        for (a, b) in ds.iter().zip(original.iter()) {
            assert_eq!(a.sensor.id, b.sensor.id);
            assert_eq!(a.sensor.attribute, b.sensor.attribute);
            assert_eq!(a.sensor.location.lat, b.sensor.location.lat);
            assert_eq!(a.sensor.location.lon, b.sensor.location.lon);
            let av: Vec<Option<f64>> = a.series.iter().collect();
            let bv: Vec<Option<f64>> = b.series.iter().collect();
            assert_eq!(av, bv, "series for {:?} must be bit-exact", a.sensor.id);
        }
        let s2 = ds.index_of_id(&SensorId::new("s2")).unwrap();
        assert_eq!(ds.series(s2).get(0), Some(0.1 + 0.2));
        assert_eq!(ds.series(s2).get(3), Some(-1.5e-300));
    }

    #[test]
    fn sweep_replay_entries_are_not_persisted() {
        // Sweep replay bodies are deliberately memory-only: the snapshot
        // codec drops them, so a restart re-mines instead of replaying.
        assert_eq!(
            replay_entry_json(
                "c1-sweep-0",
                &ReplayOutcome::Sweep {
                    body: "{\"results\":[]}".to_string(),
                },
            ),
            None
        );
        let replay = vec![
            ("c1-upload".to_string(), ReplayOutcome::UploadBegin),
            (
                "c1-sweep-0".to_string(),
                ReplayOutcome::Sweep {
                    body: "{\"results\":[]}".to_string(),
                },
            ),
            ("c1-delete-0".to_string(), ReplayOutcome::Delete),
        ];
        let data = snapshot_data(&awkward_dataset(), 1, 0, &replay);
        let data = Json::parse(&data.to_string_compact()).unwrap();
        let restored = restore_dataset(&data).unwrap();
        // Only the durable entries survive, in order.
        assert_eq!(
            restored
                .replay
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["c1-upload", "c1-delete-0"]
        );
    }

    #[test]
    fn wal_ops_round_trip() {
        assert_eq!(
            parse_op(&begin_record(4, None)).unwrap(),
            WalOp::Begin {
                session: 4,
                key: None
            }
        );
        assert_eq!(
            parse_op(&begin_record(4, Some("c7-begin-2"))).unwrap(),
            WalOp::Begin {
                session: 4,
                key: Some("c7-begin-2".to_string())
            }
        );
        let summary = AppendSummary {
            // The commit record intentionally does not persist the dataset
            // name — the WAL is per-dataset — so it decodes empty.
            name: String::new(),
            new_timestamps: 3,
            measurements: 6,
            trimmed_timestamps: 0,
            timestamps: 8,
            revision: 2,
        };
        assert_eq!(
            parse_op(&commit_record(9, Some("c7-finish-2"), &summary, 555)).unwrap(),
            WalOp::Commit {
                session: 9,
                key: Some("c7-finish-2".to_string()),
                summary: Some(summary.clone()),
                elapsed_ns: 555,
            }
        );
        let chunk = Chunk {
            index: 2,
            total: 5,
            content: "id,attribute,time,value\ns1,temperature,2016-03-01 00:00:00,9.5\n"
                .to_string(),
        };
        let parsed = parse_op(&chunk_record(4, 3, &chunk)).unwrap();
        assert_eq!(
            parsed,
            WalOp::Chunk {
                session: 4,
                seq: 3,
                chunk: chunk.clone()
            }
        );
        // And through the on-disk serialization.
        let reparsed = Json::parse(&chunk_record(4, 3, &chunk).to_string_compact()).unwrap();
        assert_eq!(
            parse_op(&reparsed).unwrap(),
            WalOp::Chunk {
                session: 4,
                seq: 3,
                chunk: chunk.clone()
            }
        );
        // Pre-sequence-number chunk records fall back to index + 1.
        let mut legacy = chunk_record(4, 3, &chunk);
        legacy.set("seq", Json::Null);
        assert_eq!(
            parse_op(&legacy).unwrap(),
            WalOp::Chunk {
                session: 4,
                seq: 3,
                chunk
            }
        );
    }

    #[test]
    fn corrupt_snapshots_and_records_are_typed_errors() {
        assert!(matches!(
            restore_dataset(&Json::object()),
            Err(ApiError::Internal(_))
        ));
        assert!(matches!(
            parse_op(&Json::from_pairs([("op", Json::from("nope"))])),
            Err(ApiError::Internal(_))
        ));
        let mut missing_values = snapshot_data(&awkward_dataset(), 1, 0, &[]);
        missing_values.set("sensors", Json::Array(vec![Json::object()]));
        assert!(matches!(
            restore_dataset(&missing_values),
            Err(ApiError::Internal(_))
        ));
        assert!(matches!(
            parse_replay_entry(&Json::from_pairs([
                ("key", Json::from("k")),
                ("kind", Json::from("nope"))
            ])),
            Err(ApiError::Internal(_))
        ));
    }
}
