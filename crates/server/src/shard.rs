//! The sharded storage spine behind [`crate::MiscelaService`].
//!
//! Every piece of per-dataset state the service owns — the dataset registry
//! with its revision counters, in-progress upload/append sessions, the
//! per-dataset extraction caches, durable WAL states, and the watch
//! sequence — lives in a [`ShardedStore`]: datasets are keyed by
//! `tenant/dataset` (the **default** tenant keeps the bare dataset name, so
//! every pre-tenancy key, URL, and durability directory is unchanged) and
//! hashed into a fixed set of `Shard`s, each with its own locks. Requests
//! touching different datasets land on different shards with high
//! probability and never contend; [`crate::MiscelaService`] itself is a
//! stateless facade holding only an `Arc<ShardedStore>`.
//!
//! Per-shard lock order (a request never takes locks from two shards):
//!
//! 1. `watch_seq` (watchers hold it from predicate check to park, so a
//!    revision bump can never slip between the two — the classic condvar
//!    discipline);
//! 2. `datasets` (read or write);
//! 3. `durable`, then — only from inside a durable closure — `appends`
//!    (the relog-inflight path);
//! 4. `uploads`/`appends`/`extraction` are leaf locks otherwise.
//!
//! Revision bumpers (register, finish-append, retention trims, delete)
//! release the `datasets` write lock **before** calling
//! `Shard::notify_watchers`, which takes `watch_seq`, increments it and
//! wakes the shard's condvar — so a bump never holds two locks at once and
//! a parked watcher always re-reads the registry after waking.
//!
//! Tenancy rides on the same keys: a `TenantState` per namespace holds
//! the exactly-once replay cache (so one noisy tenant can never evict
//! another tenant's idempotency keys), the [`TenantQuota`], and the
//! tenant's slice of the admission counters. Tenant names are restricted to
//! `[A-Za-z0-9_-]` so a scoped key can always be split unambiguously at its
//! first `/` and so each tenant's durability directory
//! (`<root>/tenants/<tenant>/`) survives the store layer's file-name
//! sanitization unchanged.

use miscela_cache::{EvolvingSetsCache, PersistentCache};
use miscela_model::Dataset;
use miscela_store::recovery::{DatasetLog, RecoveryStore};
use miscela_store::Database;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::admission::AdmissionController;
use crate::message::ApiError;
use crate::service::{AppendSession, ReplayOutcome, UploadSession};

/// The tenant every pre-tenancy route, client, and test lives in. Its
/// datasets keep bare names as store keys, bare URLs, and the root
/// durability directory — introducing tenancy changed nothing for it.
pub const DEFAULT_TENANT: &str = "default";

/// How many independent shards a store spreads its keys over unless
/// [`crate::MiscelaService::with_shards`] says otherwise.
pub const DEFAULT_SHARDS: usize = 16;

/// Subdirectory of the durability root holding one directory per
/// non-default tenant. The store layer only recognizes dataset directories
/// that contain a snapshot or WAL file, so this directory is invisible to
/// the default tenant's recovery scan.
pub(crate) const TENANTS_DIR: &str = "tenants";

/// Validates a tenant name: non-empty ASCII alphanumerics plus `_` and `-`.
/// The restriction is what makes scoped keys (`tenant/dataset`) splittable
/// at the first `/` and tenant durability directories fixpoints of the
/// store layer's file-name sanitization.
pub(crate) fn validate_tenant(tenant: &str) -> Result<(), ApiError> {
    if tenant.is_empty() {
        return Err(ApiError::BadRequest("tenant name is empty".to_string()));
    }
    if !tenant
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(ApiError::BadRequest(format!(
            "tenant name {tenant:?} is invalid: use ASCII letters, digits, '_' or '-'"
        )));
    }
    Ok(())
}

/// The store key for `name` in `tenant`: the bare name for the default
/// tenant (backward compatible with every pre-tenancy cache key, admission
/// key, and store record), `tenant/name` otherwise.
pub(crate) fn scoped_key(tenant: &str, name: &str) -> String {
    if tenant == DEFAULT_TENANT {
        name.to_string()
    } else {
        format!("{tenant}/{name}")
    }
}

/// The tenant a scoped key belongs to (dataset names never contain `/`, so
/// a key without one is the default tenant's).
pub(crate) fn key_tenant(key: &str) -> &str {
    key.split_once('/').map_or(DEFAULT_TENANT, |(t, _)| t)
}

/// FNV-1a over the scoped key — the same cheap spreading hash the resilient
/// client uses to seed its jitter.
fn fnv1a(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A registered dataset together with its revision counter.
#[derive(Debug, Clone)]
pub(crate) struct DatasetEntry {
    pub(crate) dataset: Arc<Dataset>,
    pub(crate) revision: u64,
}

/// One cached keyed response, tagged with the dataset it belongs to so key
/// reuse across datasets is a typed conflict (and so snapshots can persist
/// each dataset's slice of the cache). Lives in the owning tenant's
/// [`TenantState`], so dataset names here are tenant-local (unscoped).
#[derive(Debug, Clone)]
pub(crate) struct ReplayEntry {
    pub(crate) dataset: String,
    pub(crate) outcome: ReplayOutcome,
}

/// The exactly-once protocol state of **one tenant**: its bounded
/// replayed-response cache plus its dedup counters. Per-tenant by design —
/// a noisy tenant churning keys evicts only its own replay slots.
#[derive(Debug, Default)]
pub(crate) struct ProtocolState {
    pub(crate) entries: HashMap<String, ReplayEntry>,
    /// Insertion order for FIFO eviction (and for snapshot slices).
    pub(crate) order: VecDeque<String>,
    pub(crate) key_replays: u64,
    pub(crate) chunk_duplicates: u64,
    pub(crate) sequence_gaps: u64,
    pub(crate) stale_sessions: u64,
}

/// Resource limits for one tenant. `None` means unlimited (the default, so
/// the default tenant behaves exactly as before tenancy existed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantQuota {
    /// Most datasets the tenant may have registered at once.
    pub max_datasets: Option<usize>,
    /// Most grid timestamps any one dataset may retain. Enforced when a
    /// registration, a finished append, or a retention change would leave a
    /// dataset retaining more.
    pub max_retained_timestamps: Option<usize>,
    /// Capacity handed to the tenant's per-dataset extraction caches when
    /// they are first created (existing caches keep their capacity).
    pub max_cache_entries: Option<usize>,
}

/// One tenant's slice of the admission counters, maintained at the
/// service's admission call sites (the controller itself stays global — the
/// in-flight budget is a machine property, not a tenant one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantAdmissionStats {
    /// Requests from this tenant granted an admission permit.
    pub admitted: u64,
    /// Requests from this tenant shed by admission control.
    pub shed: u64,
    /// Requests from this tenant refused because their deadline expired
    /// while queued.
    pub deadline_expired: u64,
}

/// Everything the service tracks per tenant.
#[derive(Debug)]
pub(crate) struct TenantState {
    /// The tenant's exactly-once replay cache and dedup counters.
    pub(crate) protocol: Mutex<ProtocolState>,
    /// The tenant's resource limits.
    pub(crate) quota: RwLock<TenantQuota>,
    /// Datasets currently registered under the tenant (maintained under the
    /// owning shard's `datasets` write lock, so the quota check-and-reserve
    /// at registration is race-free per shard).
    pub(crate) dataset_count: AtomicUsize,
    /// Admission permits granted to this tenant's requests.
    pub(crate) admitted: AtomicU64,
    /// This tenant's requests shed by admission control.
    pub(crate) shed: AtomicU64,
    /// This tenant's requests refused for an expired deadline while queued.
    pub(crate) deadline_expired: AtomicU64,
}

impl TenantState {
    fn new() -> Self {
        TenantState {
            protocol: Mutex::new(ProtocolState::default()),
            quota: RwLock::new(TenantQuota::default()),
            dataset_count: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
        }
    }

    /// The tenant's admission-counter slice.
    pub(crate) fn admission_stats(&self) -> TenantAdmissionStats {
        TenantAdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
        }
    }
}

/// Durable bookkeeping for one dataset: its open WAL/snapshot log plus the
/// session counters that make replay idempotent.
pub(crate) struct DurableState {
    pub(crate) log: DatasetLog,
    /// Next append-session id to hand out (monotone per dataset).
    pub(crate) next_session: u64,
    /// Highest session id whose outcome is reflected in the resident
    /// dataset (or is stale) — the `applied_session` watermark written into
    /// snapshots.
    pub(crate) watermark: u64,
    /// `Dataset::sealed_timestamps()` when the current snapshot was taken;
    /// an append that seals further 256-point blocks triggers the next
    /// snapshot, keeping the WAL tail O(rows since last snapshot).
    pub(crate) sealed_at_snapshot: usize,
    /// Why the dataset is in read-only degraded mode (`None` when healthy):
    /// set when a WAL/snapshot write fails, cleared when a durable write
    /// succeeds again (the recovery probe re-snapshots to prove it).
    pub(crate) degraded: Option<String>,
}

/// The service's durability layer: the root [`RecoveryStore`] directory.
/// Per-dataset [`DurableState`]s live in the owning [`Shard`]'s `durable`
/// map; per-tenant subdirectories come from [`Durability::store_for`].
pub(crate) struct Durability {
    pub(crate) store: RecoveryStore,
}

impl Durability {
    /// The recovery store a tenant's datasets log to: the root directory
    /// for the default tenant (unchanged pre-tenancy layout),
    /// `<root>/tenants/<tenant>/` otherwise. All namespaces share the root
    /// store's sink opener, so one injected fail point covers every write.
    pub(crate) fn store_for(&self, tenant: &str) -> RecoveryStore {
        if tenant == DEFAULT_TENANT {
            self.store.clone()
        } else {
            self.store.namespace(Path::new(TENANTS_DIR).join(tenant))
        }
    }
}

/// One shard: an independent slice of every per-dataset map, with its own
/// locks and its own watch condvar. See the module docs for the lock order.
pub(crate) struct Shard {
    /// Registered datasets (scoped key → entry with revision counter).
    pub(crate) datasets: RwLock<HashMap<String, DatasetEntry>>,
    /// In-progress chunked uploads.
    pub(crate) uploads: Mutex<HashMap<String, UploadSession>>,
    /// In-progress append sessions.
    pub(crate) appends: Mutex<HashMap<String, AppendSession>>,
    /// One extraction cache per dataset (created on first mine).
    pub(crate) extraction: RwLock<HashMap<String, Arc<EvolvingSetsCache>>>,
    /// Durable WAL/snapshot state per dataset (durable services only).
    pub(crate) durable: Mutex<HashMap<String, DurableState>>,
    /// Bumped once per revision change on any dataset of this shard;
    /// watchers park on `watch_cv` holding this mutex from predicate check
    /// to wait, so no bump can slip between the two.
    pub(crate) watch_seq: Mutex<u64>,
    /// Where `/watch` long-polls park. `notify_all` on every bump: only the
    /// shard's cohabitants wake, re-check their dataset's revision, and
    /// re-park if it was a neighbor's bump.
    pub(crate) watch_cv: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            datasets: RwLock::new(HashMap::new()),
            uploads: Mutex::new(HashMap::new()),
            appends: Mutex::new(HashMap::new()),
            extraction: RwLock::new(HashMap::new()),
            durable: Mutex::new(HashMap::new()),
            watch_seq: Mutex::new(0),
            watch_cv: Condvar::new(),
        }
    }

    /// Wakes every watcher parked on this shard. Callers must have released
    /// the shard's `datasets` lock first (lock order: `watch_seq` before
    /// `datasets`), which is also why a watcher that wakes always observes
    /// the bumped revision.
    pub(crate) fn notify_watchers(&self) {
        let mut seq = self.watch_seq.lock();
        *seq = seq.wrapping_add(1);
        drop(seq);
        self.watch_cv.notify_all();
    }
}

/// The unified store behind the service facade: the shared database and
/// result cache, the shard array, the tenant table, and the cross-cutting
/// singletons (durability root, session-id counter, admission controller).
pub struct ShardedStore {
    pub(crate) db: Arc<Database>,
    pub(crate) cache: PersistentCache,
    pub(crate) shards: Vec<Shard>,
    pub(crate) tenants: RwLock<HashMap<String, Arc<TenantState>>>,
    pub(crate) durability: Option<Durability>,
    /// Session-id counter for non-durable services (durable services hand
    /// out per-dataset monotone ids from their WAL state instead).
    pub(crate) session_ids: AtomicU64,
    /// Admission control for the serving path (global: the in-flight cost
    /// budget models the machine, while per-dataset caps already key by
    /// scoped name and thus slice per tenant automatically).
    pub(crate) admission: AdmissionController,
}

impl ShardedStore {
    pub(crate) fn new(db: Arc<Database>, admission: AdmissionController, shards: usize) -> Self {
        ShardedStore {
            cache: PersistentCache::new(Arc::clone(&db)),
            db,
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            tenants: RwLock::new(HashMap::new()),
            durability: None,
            session_ids: AtomicU64::new(1),
            admission,
        }
    }

    /// How many shards the store spreads its keys over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Rebuilds the shard array with `shards` fresh shards. Only callable
    /// while the store is still exclusively owned (before any dataset is
    /// registered), which is how [`crate::MiscelaService::with_shards`]
    /// uses it.
    pub(crate) fn reshard(&mut self, shards: usize) {
        self.shards = (0..shards.max(1)).map(|_| Shard::new()).collect();
    }

    /// The shard owning a scoped key.
    pub(crate) fn shard(&self, key: &str) -> &Shard {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// The state for a tenant, created on first touch. Callers validate the
    /// tenant name first (every path goes through the service's scope
    /// construction).
    pub(crate) fn tenant_state(&self, tenant: &str) -> Arc<TenantState> {
        if let Some(state) = self.tenants.read().get(tenant) {
            return Arc::clone(state);
        }
        Arc::clone(
            self.tenants
                .write()
                .entry(tenant.to_string())
                .or_insert_with(|| Arc::new(TenantState::new())),
        )
    }

    /// A snapshot of every tenant the store has seen, for stats
    /// aggregation.
    pub(crate) fn tenant_states(&self) -> Vec<(String, Arc<TenantState>)> {
        self.tenants
            .read()
            .iter()
            .map(|(name, state)| (name.clone(), Arc::clone(state)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_keys_and_tenants() {
        assert_eq!(scoped_key(DEFAULT_TENANT, "santander"), "santander");
        assert_eq!(scoped_key("acme", "santander"), "acme/santander");
        assert_eq!(key_tenant("santander"), DEFAULT_TENANT);
        assert_eq!(key_tenant("acme/santander"), "acme");
        assert!(validate_tenant("acme-42_x").is_ok());
        assert!(validate_tenant("").is_err());
        assert!(validate_tenant("a/b").is_err());
        assert!(validate_tenant("sp ace").is_err());
    }

    #[test]
    fn shard_hashing_is_stable_and_in_range() {
        let store = ShardedStore::new(
            Arc::new(Database::new()),
            AdmissionController::new(crate::admission::AdmissionConfig::default()),
            4,
        );
        assert_eq!(store.shard_count(), 4);
        let a = store.shard("acme/santander") as *const Shard;
        let b = store.shard("acme/santander") as *const Shard;
        assert_eq!(a, b, "the same key must always map to the same shard");
        // Distinct keys spread (not all onto one shard).
        let hit: std::collections::HashSet<usize> = (0..64)
            .map(|i| (fnv1a(&format!("t/ds-{i}")) % 4) as usize)
            .collect();
        assert!(hit.len() > 1, "64 keys all hashed to one shard");
    }

    #[test]
    fn notify_watchers_bumps_the_sequence() {
        let shard = Shard::new();
        assert_eq!(*shard.watch_seq.lock(), 0);
        shard.notify_watchers();
        shard.notify_watchers();
        assert_eq!(*shard.watch_seq.lock(), 2);
    }

    #[test]
    fn tenant_state_is_created_once() {
        let store = ShardedStore::new(
            Arc::new(Database::new()),
            AdmissionController::new(crate::admission::AdmissionConfig::default()),
            2,
        );
        let a = store.tenant_state("acme");
        a.quota.write().max_datasets = Some(3);
        let b = store.tenant_state("acme");
        assert_eq!(b.quota.read().max_datasets, Some(3));
        assert_eq!(store.tenant_states().len(), 1);
    }
}
