//! # miscela-server
//!
//! The API layer of Miscela-V. The original system exposes django REST
//! endpoints that the JavaScript front end calls; this crate reproduces that
//! layer as an in-process service so the request flow of Figure 2 —
//! *data upload → parameter input → CAP mining results → interactive
//! re-querying* — can be exercised, tested and benchmarked without a network
//! stack.
//!
//! * [`message`] — request/response envelopes (method, path, JSON body,
//!   status code), mirroring the HTTP shapes of the original API;
//! * [`admission`] — admission control for the serving path: a
//!   cost-weighted in-flight budget, per-dataset concurrency caps and a
//!   bounded wait queue, shedding excess load with typed retryable errors
//!   instead of queueing without bound;
//! * [`shard`] — the sharded storage spine ([`shard::ShardedStore`]): every
//!   piece of per-dataset state (registry, caches, sessions, durability,
//!   watch sequence) keyed by `tenant/dataset` and hashed into independent
//!   shards with per-shard locks, plus per-tenant quotas and stats;
//! * [`service`] — [`service::MiscelaService`]: a stateless facade over the
//!   sharded store — dataset upload (including the 10,000-line chunked
//!   `data.csv` protocol), dataset registry backed by the document store,
//!   mining with the parameter-keyed result cache, result retrieval, and the
//!   `watch` long-poll feed;
//! * [`router`] — dispatches requests to the service and serializes responses
//!   as JSON, like the original URL configuration did;
//! * [`durability`] — the snapshot codec and WAL record vocabulary behind
//!   durable append sessions ([`service::MiscelaService::with_durability`]):
//!   `append_chunk` fsyncs a WAL record before acknowledging, `finish_append`
//!   commits, and service startup replays outstanding WAL tails;
//! * [`client`] — the resilient client ([`client::ResilientClient`]) that
//!   makes a lossy transport safe: deadline-budgeted retries with full
//!   jitter, idempotency keys on every mutation, sequence-numbered chunk
//!   deliveries and `412`-driven append resume — plus the deterministic
//!   [`client::ChaosTransport`] fault injector used to prove it.
//!
//! # Example
//!
//! The chunked upload flow of Section 3.2, end to end:
//!
//! ```
//! use miscela_csv::split_into_chunks;
//! use miscela_server::MiscelaService;
//!
//! let service = MiscelaService::new();
//! let locations = "id,attribute,lat,lon\n\
//!                  s0,temperature,43.46,-3.80\n\
//!                  s1,light,43.47,-3.79\n";
//! let attributes = "temperature\nlight\n";
//! let data = "id,attribute,time,data\n\
//!             s0,temperature,2016-03-01 00:00:00,9.5\n\
//!             s0,temperature,2016-03-01 01:00:00,10.2\n\
//!             s1,light,2016-03-01 00:00:00,310\n\
//!             s1,light,2016-03-01 01:00:00,343\n";
//!
//! service.begin_upload("demo", locations, attributes).unwrap();
//! for chunk in split_into_chunks(data, 2) {
//!     service.upload_chunk("demo", &chunk).unwrap();
//! }
//! let (summary, _elapsed) = service.finish_upload("demo").unwrap();
//! assert_eq!(summary.sensors, 2);
//! assert_eq!(summary.records, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod durability;
pub mod message;
pub mod router;
pub mod service;
pub mod shard;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats, Permit};
pub use client::{
    ChaosConfig, ChaosStats, ChaosTransport, ClientError, ClientStats, ResilientClient,
    RetryPolicy, RouterTransport, SwappableRouter, Transport, TransportError,
};
pub use message::{ApiError, ApiRequest, ApiResponse, Method, StatusCode};
pub use router::Router;
pub use service::{
    AppendSession, AppendStatus, AppendSummary, BeginAppendOutcome, ChunkAck, DatasetSummary,
    MineOutcome, MiscelaService, ProtocolStats, ReplayOutcome, SweepOutcome, SweepServed,
    TenantCacheStats, UploadSession, WatchOutcome,
};
pub use shard::{ShardedStore, TenantAdmissionStats, TenantQuota, DEFAULT_SHARDS, DEFAULT_TENANT};
