//! # miscela-server
//!
//! The API layer of Miscela-V. The original system exposes django REST
//! endpoints that the JavaScript front end calls; this crate reproduces that
//! layer as an in-process service so the request flow of Figure 2 —
//! *data upload → parameter input → CAP mining results → interactive
//! re-querying* — can be exercised, tested and benchmarked without a network
//! stack.
//!
//! * [`message`] — request/response envelopes (method, path, JSON body,
//!   status code), mirroring the HTTP shapes of the original API;
//! * [`service`] — [`service::MiscelaService`]: dataset upload (including the
//!   10,000-line chunked `data.csv` protocol), dataset registry backed by the
//!   document store, mining with the parameter-keyed result cache, and
//!   result retrieval;
//! * [`router`] — dispatches requests to the service and serializes responses
//!   as JSON, like the original URL configuration did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod router;
pub mod service;

pub use message::{ApiError, ApiRequest, ApiResponse, Method, StatusCode};
pub use router::Router;
pub use service::{DatasetSummary, MineOutcome, MiscelaService, UploadSession};
