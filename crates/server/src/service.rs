//! The Miscela-V service: uploads, dataset registry, cached mining.
//!
//! This is the component behind the API routes. Since the sharded-store
//! refactor, [`MiscelaService`] is a **stateless facade**: every piece of
//! state lives in one [`ShardedStore`] (see [`crate::shard`]) and the
//! service holds only an `Arc` to it. It still owns the request semantics:
//!
//! * the shared document store ([`Database`]), holding the dataset registry
//!   and the persistent CAP-result cache (Section 3.3: "data and CAPs are
//!   stored in databases");
//! * in-progress chunked uploads ([`UploadSession`]) and append sessions
//!   ([`AppendSession`]), both speaking the 10,000-line `data.csv` chunk
//!   protocol of Section 3.2 — an append session targets an *existing*
//!   dataset and extends it in place instead of building a fresh one;
//! * the sharded dataset table with per-dataset **revision counters**:
//!   once uploaded (or registered directly from a generator), a dataset can
//!   be mined repeatedly "without re-uploading by specifying the dataset
//!   name", and every append bumps the revision so cached results for
//!   superseded content become unreachable by key;
//! * **tenancy**: every operation has a `_in` variant taking a tenant
//!   name. Tenants get disjoint dataset namespaces (keyed `tenant/name` in
//!   the store), their own replay caches, durability directories, quota
//!   ([`TenantQuota`], enforced with typed 403s), and stats slices. The
//!   default tenant ([`DEFAULT_TENANT`]) keeps bare keys, bare URLs and
//!   the root durability directory, so pre-tenancy callers see no change;
//! * the **watch** feed: [`MiscelaService::watch`] long-polls a dataset's
//!   revision on the owning shard's condvar, waking on append, retention
//!   and delete bumps instead of forcing clients to hammer `/mine`.

use miscela_cache::{
    CacheKey, CacheStats, EvolvingSetsCache, ExtractionCacheStats, DEFAULT_KEEP_GENERATIONS,
};
use miscela_core::{CancelToken, Miner, MiningError, MiningParams, MiningResult, SweepStats};
use miscela_csv::chunk::{Chunk, ChunkedUploader};
use miscela_csv::loader::DatasetLoader;
use miscela_csv::location_csv;
use miscela_model::{Dataset, DatasetStats, RetentionPolicy};
use miscela_store::recovery::{DurabilityStats, RecoveryStore};
use miscela_store::wal::SinkOpener;
use miscela_store::{Database, Filter, Json, StoreError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats, Permit};
use crate::durability::{self, WalOp};
use crate::message::ApiError;
use crate::shard::{
    key_tenant, scoped_key, validate_tenant, DatasetEntry, Durability, DurableState, ReplayEntry,
    ShardedStore, TenantAdmissionStats, TenantQuota, DEFAULT_SHARDS, DEFAULT_TENANT, TENANTS_DIR,
};

/// Name of the store collection recording uploaded datasets.
pub const DATASETS_COLLECTION: &str = "datasets";

/// Back-off hint attached to degraded-durability (503) responses, in
/// milliseconds.
pub const DEGRADED_RETRY_AFTER_MS: u64 = 250;

/// Fixed admission cost of applying a finished append session: the apply is
/// O(tail), so it is charged one unit regardless of dataset size.
const APPEND_COST: u64 = 1;

/// Capacity of each tenant's replayed-response cache: the tenant's oldest
/// keyed response is evicted once this many are cached. Retries arrive
/// close behind their originals, so a bounded FIFO is enough — a key
/// evicted here can only be retried so late that the client has long given
/// up. Per-tenant since the sharded-store refactor: one noisy tenant can no
/// longer evict another tenant's keys.
const REPLAY_CACHE_CAPACITY: usize = 512;

/// How many of a dataset's most recent keyed responses are persisted into
/// its snapshot, bounding snapshot growth while keeping every response a
/// reasonable client could still retry replayable across a crash.
const SNAPSHOT_REPLAY_LIMIT: usize = 32;

/// An in-progress chunked upload of one dataset.
#[derive(Debug)]
pub struct UploadSession {
    /// Scoped key (`tenant/name`; bare name for the default tenant) of the
    /// dataset being uploaded.
    pub dataset: String,
    location_csv: String,
    attribute_csv: String,
    uploader: ChunkedUploader,
    started: Instant,
}

/// An in-progress chunked append targeting an existing dataset. No
/// `location.csv`/`attribute.csv` accompany an append — the sensors must
/// already exist; only new `data.csv` rows stream in.
#[derive(Debug)]
pub struct AppendSession {
    /// Scoped key (`tenant/name`; bare name for the default tenant) of the
    /// dataset being appended to.
    pub dataset: String,
    uploader: ChunkedUploader,
    started: Instant,
    /// Session id: durable (per-dataset monotone) on a durable service,
    /// from a service-wide counter otherwise. Chunk requests that carry a
    /// different id are stale (they target a session that no longer
    /// exists) and are rejected with the current watermark.
    session: u64,
    /// The idempotency key the begin carried (if any), kept so a
    /// snapshot-triggered WAL reset re-logs the begin record with it.
    key: Option<String>,
    /// Raw chunks as acknowledged, kept only when durability is enabled so
    /// a snapshot-triggered WAL reset can re-log the in-flight session.
    chunks: Vec<Chunk>,
    /// Highest chunk sequence number acknowledged so far (0 = none). A
    /// sequenced chunk at or below this replays its original ack; one more
    /// than one past it is a gap (typed 412 carrying this watermark).
    acked_seq: u64,
    /// The ack returned when each sequence number was first accepted —
    /// `acks[seq - 1]` is `(chunk index, chunks still missing)` — so a
    /// duplicate delivery replays the byte-identical acknowledgment.
    acks: Vec<(usize, usize)>,
}

/// The outcome of one completed append session.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendSummary {
    /// Dataset name.
    pub name: String,
    /// Grid points the append added.
    pub new_timestamps: usize,
    /// Measurement rows applied.
    pub measurements: usize,
    /// Grid points the dataset's retention policy trimmed right after the
    /// append (0 for unbounded datasets).
    pub trimmed_timestamps: usize,
    /// Total grid points after the append (and trim).
    pub timestamps: usize,
    /// The dataset's revision after the append.
    pub revision: u64,
}

/// The outcome of one retention-policy update.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionSummary {
    /// Dataset name.
    pub name: String,
    /// Grid points trimmed by applying the new policy immediately.
    pub trimmed_timestamps: usize,
    /// Total grid points trimmed from the front over the dataset's life.
    pub trimmed_total: usize,
    /// Total grid points after the trim.
    pub timestamps: usize,
    /// The dataset's revision (bumped when the policy trimmed anything).
    pub revision: u64,
}

/// Summary information about a registered dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of sensors.
    pub sensors: usize,
    /// Number of records.
    pub records: usize,
    /// Attribute names.
    pub attributes: Vec<String>,
}

/// The response payload cached for one caller-supplied idempotency key: a
/// retried mutation whose key is found here replays this outcome instead of
/// re-applying.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayOutcome {
    /// A `begin_upload` — acknowledged, no payload beyond success.
    UploadBegin,
    /// A `begin_append` — replays the session id the begin was assigned.
    Begin {
        /// The session id originally handed out.
        session: u64,
    },
    /// A `finish_append` — replays the full append summary.
    Finish {
        /// The summary originally acknowledged.
        summary: AppendSummary,
        /// Wall-clock nanoseconds of the original session.
        elapsed_ns: u64,
    },
    /// A `set_retention` — replays the retention summary.
    Retention {
        /// The summary originally acknowledged.
        summary: RetentionSummary,
    },
    /// A `finish_upload` / dataset registration — replays the summary.
    Register {
        /// The summary originally acknowledged.
        summary: DatasetSummary,
        /// Wall-clock nanoseconds of the original upload.
        elapsed_ns: u64,
    },
    /// A `delete_dataset` — acknowledged, no payload beyond success.
    Delete,
    /// A keyed `mine/sweep` — replays the serialized response body
    /// verbatim. Kept **in memory only**: `replay_entries_for` excludes
    /// this variant from the snapshot slice (the durability codec has no
    /// encoding for it, deliberately — sweep bodies can be large and are
    /// pure derived data), so after a restart a retried sweep re-mines
    /// instead of replaying. That is safe because a sweep mutates nothing.
    Sweep {
        /// The serialized JSON response body originally returned.
        body: String,
    },
}

/// Counters for the exactly-once request protocol, served by
/// `GET /protocol/stats`. The global view sums every tenant's slice;
/// [`MiscelaService::protocol_stats_in`] serves one tenant's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolStats {
    /// Idempotency keys currently cached with their responses.
    pub cached_keys: usize,
    /// Mutations answered by replaying a cached keyed response.
    pub key_replays: u64,
    /// Duplicate chunk deliveries suppressed by the sequence watermark.
    pub chunk_duplicates: u64,
    /// Chunk deliveries rejected for skipping ahead of the watermark.
    pub sequence_gaps: u64,
    /// Chunk deliveries rejected for targeting a superseded session.
    pub stale_sessions: u64,
}

/// The acknowledgment for one sequenced `append_chunk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkAck {
    /// Index of the chunk this ack covers.
    pub accepted: usize,
    /// Chunks still missing from the session at the time of this ack.
    pub missing: usize,
    /// The session's acknowledged-sequence watermark after this chunk.
    pub acked_seq: u64,
    /// Whether this ack was replayed for a duplicate delivery rather than
    /// freshly produced.
    pub replayed: bool,
}

/// The outcome of a (possibly replayed) `begin_append`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeginAppendOutcome {
    /// The session id the client must echo on every sequenced chunk.
    pub session: u64,
    /// Whether an idempotency-key replay produced this outcome.
    pub replayed: bool,
}

/// The observable state of an in-progress append session, served by
/// `GET /datasets/{name}/append` so a reconnecting client can resume from
/// the server's watermark instead of resending everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendStatus {
    /// The open session's id.
    pub session: u64,
    /// Highest chunk sequence number the server has acknowledged.
    pub acked_seq: u64,
    /// Distinct chunks received so far.
    pub received: usize,
    /// Chunks still missing (0 once the announced total has arrived).
    pub missing: usize,
}

/// The outcome of one mining request.
#[derive(Debug, Clone)]
pub struct MineOutcome {
    /// The mining result (possibly served from the cache).
    pub result: MiningResult,
    /// Whether the CAPs came from the cache.
    pub cache_hit: bool,
    /// The dataset revision the result corresponds to.
    pub revision: u64,
    /// Wall-clock time spent serving the request.
    pub elapsed: Duration,
}

/// The outcome of one freshly served batch sweep
/// ([`MiscelaService::mine_sweep`]).
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-point results, in request order (duplicates share one result).
    pub results: Vec<MiningResult>,
    /// Per-point: whether the CAPs were served from the result cache.
    pub cache_hits: Vec<bool>,
    /// Planner statistics for the freshly mined remainder of the grid
    /// (default when every point was a cache hit).
    pub stats: SweepStats,
    /// The dataset revision all results correspond to.
    pub revision: u64,
    /// Wall-clock time spent serving the request.
    pub elapsed: Duration,
}

/// How a (possibly keyed) sweep submission was served.
#[derive(Debug)]
pub enum SweepServed {
    /// The serialized body of an earlier submission with the same
    /// idempotency key, to be replayed verbatim.
    Replayed(String),
    /// A freshly planned and mined sweep.
    Fresh(SweepOutcome),
}

/// What a `/watch` long-poll observed, served by
/// `GET /datasets/{name}/watch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchOutcome {
    /// The dataset's revision when the watch returned.
    pub revision: u64,
    /// Whether the revision differs from the watcher's `since_revision`
    /// (the envelope carries the new state; `false` means the deadline
    /// expired with nothing new).
    pub changed: bool,
    /// Grid timestamps currently retained.
    pub timestamps: usize,
    /// Total grid points trimmed from the front over the dataset's life.
    pub trimmed_total: usize,
    /// Whether the watch returned because its deadline expired.
    pub deadline_expired: bool,
}

/// One tenant's slice of the cache statistics, served by
/// `GET /tenants/{tenant}/cache/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantCacheStats {
    /// Datasets the tenant has resident in the sharded registry.
    pub datasets: usize,
    /// The tenant's per-dataset extraction caches, aggregated.
    pub extraction: ExtractionCacheStats,
}

/// A validated request scope: the tenant, the tenant-local dataset name,
/// and the scoped store key the pair maps to. Every internal method takes
/// one of these; the public API builds them either unchecked for the
/// default tenant (preserving pre-tenancy behavior bit for bit) or
/// validated for the `_in` variants.
#[derive(Debug, Clone)]
struct Scope {
    tenant: String,
    name: String,
    key: String,
}

impl Scope {
    /// A validated scope: the tenant name must be well-formed and the
    /// dataset name must not contain `/` (reserved as the tenant/dataset
    /// separator in scoped keys — allowing it would let a default-tenant
    /// dataset named `"t/d"` collide with tenant `t`'s dataset `d`).
    fn new(tenant: &str, name: &str) -> Result<Scope, ApiError> {
        validate_tenant(tenant)?;
        if name.contains('/') {
            return Err(ApiError::BadRequest(format!(
                "dataset name {name:?} is invalid: '/' is reserved for tenant scoping"
            )));
        }
        Ok(Scope {
            tenant: tenant.to_string(),
            name: name.to_string(),
            key: scoped_key(tenant, name),
        })
    }

    /// The default tenant's scope for `name`, unchecked: pre-tenancy
    /// callers (and the legacy infallible registration path) accept any
    /// name they always did.
    fn default_tenant(name: &str) -> Scope {
        Scope {
            tenant: DEFAULT_TENANT.to_string(),
            name: name.to_string(),
            key: name.to_string(),
        }
    }
}

/// The Miscela-V application service: a stateless facade over the
/// [`ShardedStore`] holding every piece of state. Cloning the `Arc` (via
/// [`MiscelaService::shared_store`] + [`MiscelaService::with_store`])
/// yields another facade over the same store.
pub struct MiscelaService {
    store: Arc<ShardedStore>,
}

/// Maps a store-layer durability failure into a typed API error. A failed
/// WAL/snapshot write means the dataset can no longer accept durable writes;
/// callers surface this as a retryable 503, and [`MiscelaService::durable`]
/// flips the dataset into read-only degraded mode until a probe re-arms it.
fn wal_err(e: StoreError) -> ApiError {
    ApiError::Unavailable {
        message: format!("durability: {e}"),
        retry_after_ms: DEGRADED_RETRY_AFTER_MS,
    }
}

impl MiscelaService {
    /// Creates a service over a fresh in-memory database.
    pub fn new() -> Self {
        Self::with_database(Arc::new(Database::new()))
    }

    /// Creates a service over an existing (possibly persisted) database.
    pub fn with_database(db: Arc<Database>) -> Self {
        db.create_collection(DATASETS_COLLECTION);
        db.create_index(DATASETS_COLLECTION, "name");
        db.create_index(DATASETS_COLLECTION, "key");
        db.create_index(DATASETS_COLLECTION, "tenant");
        MiscelaService {
            store: Arc::new(ShardedStore::new(
                db,
                AdmissionController::new(AdmissionConfig::default()),
                DEFAULT_SHARDS,
            )),
        }
    }

    /// A facade over an existing store — how request handlers, background
    /// workers and tests share one sharded spine.
    pub fn with_store(store: Arc<ShardedStore>) -> Self {
        MiscelaService { store }
    }

    /// The shared store behind this facade.
    pub fn shared_store(&self) -> Arc<ShardedStore> {
        Arc::clone(&self.store)
    }

    /// Replaces the admission-control configuration (builder style). Call
    /// before the service starts taking requests — and before the store is
    /// shared; once another facade holds the store this is a no-op.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        if let Some(store) = Arc::get_mut(&mut self.store) {
            store.admission = AdmissionController::new(config);
        }
        self
    }

    /// Replaces the shard count (builder style). Call before any dataset is
    /// registered — resharding rebuilds empty shards — and before the store
    /// is shared; once another facade holds the store this is a no-op.
    pub fn with_shards(mut self, shards: usize) -> Self {
        if let Some(store) = Arc::get_mut(&mut self.store) {
            store.reshard(shards);
        }
        self
    }

    /// Creates a durable service over a fresh in-memory database: dataset
    /// registrations and append sessions are persisted to `dir` (snapshot +
    /// write-ahead log per dataset), and any state already under `dir` is
    /// recovered — snapshots reloaded, committed WAL sessions replayed with
    /// revision bumps, uncommitted sessions restored as in-progress.
    pub fn with_durability(dir: impl Into<PathBuf>) -> Result<Self, ApiError> {
        Self::with_database_and_durability(Arc::new(Database::new()), dir)
    }

    /// Like [`MiscelaService::with_durability`] over an existing database.
    pub fn with_database_and_durability(
        db: Arc<Database>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self, ApiError> {
        Self::with_database(db).attach_durability(RecoveryStore::open(dir))
    }

    /// Like [`MiscelaService::with_database_and_durability`], but writing
    /// through an injected [`SinkOpener`] — the hook the fault-injection
    /// harness uses to kill the durable write path at a precise byte.
    pub fn with_durability_opener(
        db: Arc<Database>,
        dir: impl Into<PathBuf>,
        opener: Arc<dyn SinkOpener>,
    ) -> Result<Self, ApiError> {
        Self::with_database(db).attach_durability(RecoveryStore::with_opener(dir, opener))
    }

    /// Recovers every dataset logged under `store` — the default tenant's
    /// at the root, each other tenant's under `tenants/<tenant>/` — and
    /// attaches the durability layer. For each dataset: load the snapshot,
    /// replay the WAL's committed append sessions on top of it (bumping the
    /// revision once per replayed commit, exactly as the live path did),
    /// restore any uncommitted session as in-progress, and garbage-collect
    /// cache entries keyed to the replayed-over revisions. Recovery itself
    /// is read-only unless the replay sealed new blocks or trimmed the
    /// window, in which case it compacts — so startup costs O(snapshot) +
    /// O(rows since last snapshot), never O(full append history).
    fn attach_durability(mut self, store: RecoveryStore) -> Result<Self, ApiError> {
        let replay_err =
            |e: &dyn std::fmt::Display| ApiError::Internal(format!("durability replay: {e}"));
        let mut spaces: Vec<(String, RecoveryStore)> =
            vec![(DEFAULT_TENANT.to_string(), store.clone())];
        if let Ok(entries) = std::fs::read_dir(store.root().join(TENANTS_DIR)) {
            let mut tenants: Vec<String> = entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().to_str().map(|s| s.to_string()))
                .filter(|t| validate_tenant(t).is_ok())
                .collect();
            tenants.sort();
            for tenant in tenants {
                let space = store.namespace(Path::new(TENANTS_DIR).join(&tenant));
                spaces.push((tenant, space));
            }
        }
        for (tenant, space) in spaces {
            for name in space.dataset_names().map_err(wal_err)? {
                let scope = Scope::new(&tenant, &name)?;
                let mut log = space.dataset(&name).map_err(wal_err)?;
                let Some(snapshot) = log.load_snapshot().map_err(wal_err)? else {
                    // A WAL with no snapshot means the very first
                    // registration crashed before its snapshot rename:
                    // nothing was ever acknowledged for this dataset, so
                    // there is nothing to recover.
                    continue;
                };
                let restored = durability::restore_dataset(&snapshot.data)?;
                let applied = restored.applied_session;
                // Reinstall the snapshot's keyed responses first, then
                // layer any the WAL tail re-derives (begin/commit records
                // below) on top — a mutation retried across the crash
                // replays its original response.
                self.reinstall_replay(&scope, restored.replay);
                let mut ds = restored.dataset;
                let mut revision = restored.revision;
                let sealed_at_load = ds.sealed_timestamps();
                let mut max_session = applied;
                let mut watermark = applied;
                let mut replayed_commits = 0u64;
                let mut replayed_trim = false;
                // The in-flight (begun, not committed) session, with its
                // raw chunks. A begin for a session at or below the
                // snapshot's watermark is stale — its outcome is already in
                // the snapshot.
                let mut outstanding: Option<(u64, Vec<Chunk>)> = None;
                let mut outstanding_key: Option<String> = None;
                for record in log.take_replay() {
                    match durability::parse_op(&record)? {
                        WalOp::Begin { session, key } => {
                            max_session = max_session.max(session);
                            outstanding = (session > applied).then_some((session, Vec::new()));
                            outstanding_key = if session > applied { key } else { None };
                            if let Some(k) = &outstanding_key {
                                // A begin retried across the crash must
                                // replay the same session id.
                                self.remember(Some(k), &scope, ReplayOutcome::Begin { session });
                            }
                        }
                        WalOp::Chunk { session, chunk, .. } => {
                            if let Some((current, chunks)) = &mut outstanding {
                                if *current == session {
                                    // A chunk re-accepted after a failed ack
                                    // is logged twice; the later record
                                    // wins, as on the live path.
                                    match chunks.iter_mut().find(|c| c.index == chunk.index) {
                                        Some(slot) => *slot = chunk,
                                        None => chunks.push(chunk),
                                    }
                                }
                            }
                        }
                        WalOp::Commit {
                            session,
                            key,
                            summary,
                            elapsed_ns,
                        } => {
                            max_session = max_session.max(session);
                            let Some((current, chunks)) = outstanding.take() else {
                                continue;
                            };
                            outstanding_key = None;
                            if current != session {
                                continue;
                            }
                            let mut uploader = ChunkedUploader::new();
                            for chunk in &chunks {
                                uploader.accept(chunk).map_err(|e| replay_err(&e))?;
                            }
                            let rows = uploader.finish().map_err(|e| replay_err(&e))?;
                            let stats = DatasetLoader::append(&mut ds, &rows)
                                .map_err(|e| replay_err(&e))?;
                            if stats.trimmed_timestamps > 0 {
                                replayed_trim = true;
                            }
                            revision += 1;
                            replayed_commits += 1;
                            watermark = session;
                            if let (Some(k), Some(mut s)) = (key, summary) {
                                // A finish retried across the crash must
                                // replay the original acknowledgment, not
                                // re-commit.
                                s.name = name.clone();
                                self.remember(
                                    Some(&k),
                                    &scope,
                                    ReplayOutcome::Finish {
                                        summary: s,
                                        elapsed_ns,
                                    },
                                );
                            }
                        }
                    }
                }
                let ds = Arc::new(ds);
                {
                    let shard = self.store.shard(&scope.key);
                    let mut registry = shard.datasets.write();
                    if registry
                        .insert(
                            scope.key.clone(),
                            DatasetEntry {
                                dataset: Arc::clone(&ds),
                                revision,
                            },
                        )
                        .is_none()
                    {
                        self.store
                            .tenant_state(&scope.tenant)
                            .dataset_count
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.store
                    .db
                    .delete_where(DATASETS_COLLECTION, &Filter::eq("key", scope.key.as_str()));
                self.store
                    .db
                    .insert(DATASETS_COLLECTION, dataset_record(&scope, &ds, revision));
                if replayed_commits > 0 {
                    // Revision GC on the replayed revisions: results keyed
                    // to the revisions the replay superseded are
                    // unreachable now.
                    self.store.cache.evict_superseded(&scope.key, revision);
                    for _ in 0..replayed_commits {
                        self.age_extraction(&scope);
                    }
                }
                let mut sealed_at_snapshot = sealed_at_load;
                if replayed_commits > 0
                    && (replayed_trim || ds.sealed_timestamps() > sealed_at_load)
                {
                    // The replay sealed blocks (or trimmed): fold it into a
                    // fresh snapshot and re-log the in-flight session into
                    // the reset WAL so its acked chunks stay durable.
                    log.install_snapshot(&durability::snapshot_data(
                        &ds,
                        revision,
                        watermark,
                        &self.replay_entries_for(&scope),
                    ))
                    .map_err(wal_err)?;
                    sealed_at_snapshot = ds.sealed_timestamps();
                    if let Some((session, chunks)) = &outstanding {
                        log.log(&durability::begin_record(
                            *session,
                            outstanding_key.as_deref(),
                        ))
                        .map_err(wal_err)?;
                        for (i, chunk) in chunks.iter().enumerate() {
                            log.log(&durability::chunk_record(*session, i as u64 + 1, chunk))
                                .map_err(wal_err)?;
                        }
                        log.commit().map_err(wal_err)?;
                    }
                }
                if let Some((session, chunks)) = outstanding {
                    let mut uploader = ChunkedUploader::new();
                    let mut acks = Vec::with_capacity(chunks.len());
                    for chunk in &chunks {
                        uploader.accept(chunk).map_err(|e| replay_err(&e))?;
                        // Rebuild the per-sequence acks exactly as the live
                        // path produced them, so duplicates retried across
                        // the crash still replay identical acknowledgments.
                        acks.push((chunk.index, uploader.missing().len()));
                    }
                    let acked_seq = acks.len() as u64;
                    self.store.shard(&scope.key).appends.lock().insert(
                        scope.key.clone(),
                        AppendSession {
                            dataset: scope.key.clone(),
                            uploader,
                            started: Instant::now(),
                            session,
                            key: outstanding_key,
                            chunks,
                            acked_seq,
                            acks,
                        },
                    );
                }
                self.store.shard(&scope.key).durable.lock().insert(
                    scope.key.clone(),
                    DurableState {
                        log,
                        next_session: max_session + 1,
                        watermark,
                        sealed_at_snapshot,
                        degraded: None,
                    },
                );
            }
        }
        match Arc::get_mut(&mut self.store) {
            Some(inner) => inner.durability = Some(Durability { store }),
            None => {
                return Err(ApiError::Internal(
                    "durability must be attached before the store is shared".to_string(),
                ))
            }
        }
        Ok(self)
    }

    /// Runs `f` against the durable state for `scope` (creating a fresh log
    /// on first use, in the tenant's durability directory). Returns `None`
    /// when durability is disabled.
    ///
    /// Lock discipline: only the owning shard's `durable` mutex is held
    /// while `f` runs; no caller holds the shard's uploads/appends mutex
    /// across this call (though `f` itself may briefly take `appends`, e.g.
    /// to re-log an in-flight session after a snapshot).
    fn durable<R>(
        &self,
        scope: &Scope,
        f: impl FnOnce(&mut DurableState) -> Result<R, ApiError>,
    ) -> Option<Result<R, ApiError>> {
        let d = self.store.durability.as_ref()?;
        let shard = self.store.shard(&scope.key);
        let mut states = shard.durable.lock();
        if !states.contains_key(&scope.key) {
            match d.store_for(&scope.tenant).dataset(&scope.name) {
                Ok(log) => {
                    states.insert(
                        scope.key.clone(),
                        DurableState {
                            log,
                            next_session: 1,
                            watermark: 0,
                            sealed_at_snapshot: 0,
                            degraded: None,
                        },
                    );
                }
                Err(e) => return Some(Err(wal_err(e))),
            }
        }
        let Some(state) = states.get_mut(&scope.key) else {
            // Unreachable (the state was inserted above under this same
            // lock), but the request path must never panic: surface the
            // impossible as a typed error instead.
            return Some(Err(ApiError::Internal(format!(
                "durability state for {:?} vanished while locked",
                scope.key
            ))));
        };
        let result = f(state);
        // A failed durable write flips the dataset into read-only degraded
        // mode; any successful durable write proves the path works again.
        match &result {
            Ok(_) => state.degraded = None,
            Err(ApiError::Unavailable { message, .. }) => state.degraded = Some(message.clone()),
            Err(_) => {}
        }
        Some(result)
    }

    /// Re-logs the in-flight append session for `scope` (if any) into the
    /// WAL — called after a snapshot reset the log, so acknowledged chunks
    /// of a session that has not committed yet stay durable.
    fn relog_inflight(&self, scope: &Scope, state: &mut DurableState) -> Result<(), ApiError> {
        let inflight = {
            let appends = self.store.shard(&scope.key).appends.lock();
            appends
                .get(&scope.key)
                .map(|s| (s.session, s.key.clone(), s.chunks.clone()))
        };
        let Some((session, key, chunks)) = inflight else {
            return Ok(());
        };
        state
            .log
            .log(&durability::begin_record(session, key.as_deref()))
            .map_err(wal_err)?;
        for (i, chunk) in chunks.iter().enumerate() {
            state
                .log
                .log(&durability::chunk_record(session, i as u64 + 1, chunk))
                .map_err(wal_err)?;
        }
        state.log.commit().map_err(wal_err)
    }

    /// Why `name` is in read-only degraded mode, if it is: a WAL/snapshot
    /// write failed and the dataset stopped accepting durable writes until
    /// the recovery probe re-arms it. Reads and mines keep serving.
    pub fn degraded_reason(&self, name: &str) -> Option<String> {
        self.degraded_reason_scoped(&Scope::default_tenant(name))
    }

    /// [`MiscelaService::degraded_reason`] for a tenant's dataset. An
    /// invalid tenant name reads as "not degraded".
    pub fn degraded_reason_in(&self, tenant: &str, name: &str) -> Option<String> {
        self.degraded_reason_scoped(&Scope::new(tenant, name).ok()?)
    }

    fn degraded_reason_scoped(&self, scope: &Scope) -> Option<String> {
        self.store.durability.as_ref()?;
        self.store
            .shard(&scope.key)
            .durable
            .lock()
            .get(&scope.key)
            .and_then(|s| s.degraded.clone())
    }

    /// Re-arms durability for `scope` if it is degraded: probes the write
    /// path by installing a fresh snapshot of the resident dataset and
    /// re-logging the in-flight append session. The snapshot keeps the
    /// existing applied-session watermark — advancing it would make an
    /// in-flight session look stale on replay and drop its acknowledged
    /// chunks. On success the dataset leaves read-only mode (cleared by
    /// [`MiscelaService::durable`]); on failure it stays degraded and the
    /// caller gets the typed retryable error.
    fn ensure_durable_writable(&self, scope: &Scope) -> Result<(), ApiError> {
        if self.degraded_reason_scoped(scope).is_none() {
            return Ok(());
        }
        let entry = self.entry(scope)?;
        match self.durable(scope, |state| {
            if state.degraded.is_none() {
                // Another request's probe won the race; nothing to re-arm.
                return Ok(());
            }
            state
                .log
                .install_snapshot(&durability::snapshot_data(
                    &entry.dataset,
                    entry.revision,
                    state.watermark,
                    &self.replay_entries_for(scope),
                ))
                .map_err(wal_err)?;
            state.sealed_at_snapshot = entry.dataset.sealed_timestamps();
            self.relog_inflight(scope, state)
        }) {
            Some(result) => result,
            None => Ok(()),
        }
    }

    /// Admission-control counters, served by `GET /admission/stats`.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.store.admission.stats()
    }

    /// One tenant's slice of the admission counters, served by
    /// `GET /tenants/{tenant}/admission/stats`. The in-flight budget itself
    /// stays machine-global; this reports how the tenant fared against it.
    pub fn tenant_admission_stats(&self, tenant: &str) -> Result<TenantAdmissionStats, ApiError> {
        validate_tenant(tenant)?;
        Ok(self.store.tenant_state(tenant).admission_stats())
    }

    /// Admits one unit of work for `scope`, charging the tenant's counters
    /// on the way through (or the way out).
    fn admit_scoped(
        &self,
        scope: &Scope,
        cost: u64,
        deadline: Option<Instant>,
    ) -> Result<Permit<'_>, ApiError> {
        let tenant = self.store.tenant_state(&scope.tenant);
        match self.store.admission.admit(&scope.key, cost, deadline) {
            Ok(permit) => {
                tenant.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(permit)
            }
            Err(e) => {
                match &e {
                    ApiError::Overloaded { .. } => tenant.shed.fetch_add(1, Ordering::Relaxed),
                    ApiError::DeadlineExceeded(_) => {
                        tenant.deadline_expired.fetch_add(1, Ordering::Relaxed)
                    }
                    _ => 0,
                };
                Err(e)
            }
        }
    }

    /// WAL/snapshot statistics for one dataset's durability log, served by
    /// `GET /datasets/{name}/durability`.
    pub fn durability_stats(&self, name: &str) -> Result<DurabilityStats, ApiError> {
        self.durability_stats_scoped(&Scope::default_tenant(name))
    }

    /// [`MiscelaService::durability_stats`] for a tenant's dataset.
    pub fn durability_stats_in(
        &self,
        tenant: &str,
        name: &str,
    ) -> Result<DurabilityStats, ApiError> {
        self.durability_stats_scoped(&Scope::new(tenant, name)?)
    }

    fn durability_stats_scoped(&self, scope: &Scope) -> Result<DurabilityStats, ApiError> {
        if self.store.durability.is_none() {
            return Err(ApiError::NotFound(
                "durability is not enabled for this service".to_string(),
            ));
        }
        self.dataset_revision_scoped(scope)?;
        let states = self.store.shard(&scope.key).durable.lock();
        let state = states.get(&scope.key).ok_or_else(|| {
            ApiError::NotFound(format!("dataset {:?} has no durability log", scope.name))
        })?;
        Ok(state.log.stats())
    }

    // ----- exactly-once protocol ----------------------------------------

    /// Counters for the exactly-once request protocol, served by
    /// `GET /protocol/stats` — every tenant's slice summed, so the global
    /// view reads as it did before tenancy existed.
    pub fn protocol_stats(&self) -> ProtocolStats {
        let mut total = ProtocolStats::default();
        for (_, tenant) in self.store.tenant_states() {
            let p = tenant.protocol.lock();
            total.cached_keys += p.entries.len();
            total.key_replays += p.key_replays;
            total.chunk_duplicates += p.chunk_duplicates;
            total.sequence_gaps += p.sequence_gaps;
            total.stale_sessions += p.stale_sessions;
        }
        total
    }

    /// One tenant's slice of the protocol counters, served by
    /// `GET /tenants/{tenant}/protocol/stats`.
    pub fn protocol_stats_in(&self, tenant: &str) -> Result<ProtocolStats, ApiError> {
        validate_tenant(tenant)?;
        let state = self.store.tenant_state(tenant);
        let p = state.protocol.lock();
        Ok(ProtocolStats {
            cached_keys: p.entries.len(),
            key_replays: p.key_replays,
            chunk_duplicates: p.chunk_duplicates,
            sequence_gaps: p.sequence_gaps,
            stale_sessions: p.stale_sessions,
        })
    }

    /// Looks up a caller-supplied idempotency key in the scope's tenant
    /// cache. `Ok(Some(outcome))` means the mutation already ran and the
    /// caller must replay `outcome` verbatim; reusing a key against a
    /// different dataset of the same tenant is a typed conflict.
    fn replay_lookup(
        &self,
        key: Option<&str>,
        scope: &Scope,
    ) -> Result<Option<ReplayOutcome>, ApiError> {
        let Some(key) = key else { return Ok(None) };
        let tenant = self.store.tenant_state(&scope.tenant);
        let mut p = tenant.protocol.lock();
        let Some(entry) = p.entries.get(key) else {
            return Ok(None);
        };
        if entry.dataset != scope.name {
            return Err(ApiError::Conflict(format!(
                "idempotency key {key:?} was already used for dataset {:?}",
                entry.dataset
            )));
        }
        let outcome = entry.outcome.clone();
        p.key_replays += 1;
        Ok(Some(outcome))
    }

    /// The conflict returned when a cached key's outcome is for a
    /// different operation than the one being retried.
    fn key_conflict(key: &str) -> ApiError {
        ApiError::Conflict(format!(
            "idempotency key {key:?} was already used for a different operation"
        ))
    }

    /// Caches the response for a keyed mutation in the scope's tenant cache
    /// (FIFO-bounded per tenant). No-op without a key.
    fn remember(&self, key: Option<&str>, scope: &Scope, outcome: ReplayOutcome) {
        let Some(key) = key else { return };
        let tenant = self.store.tenant_state(&scope.tenant);
        let mut p = tenant.protocol.lock();
        if p.entries
            .insert(
                key.to_string(),
                ReplayEntry {
                    dataset: scope.name.clone(),
                    outcome,
                },
            )
            .is_none()
        {
            p.order.push_back(key.to_string());
        }
        while p.entries.len() > REPLAY_CACHE_CAPACITY {
            let Some(evicted) = p.order.pop_front() else {
                break;
            };
            p.entries.remove(&evicted);
        }
    }

    /// One dataset's slice of its tenant's replayed-response cache, oldest
    /// first, bounded to the most recent [`SNAPSHOT_REPLAY_LIMIT`] — this
    /// is what snapshots persist so keyed replay survives a crash. Sweep
    /// replays ([`ReplayOutcome::Sweep`]) are excluded: they are
    /// memory-only by design, so the durability codec never needs to
    /// encode them.
    fn replay_entries_for(&self, scope: &Scope) -> Vec<(String, ReplayOutcome)> {
        let tenant = self.store.tenant_state(&scope.tenant);
        let p = tenant.protocol.lock();
        let mut slice: Vec<(String, ReplayOutcome)> = p
            .order
            .iter()
            .filter_map(|key| {
                let entry = p.entries.get(key)?;
                (entry.dataset == scope.name
                    && !matches!(entry.outcome, ReplayOutcome::Sweep { .. }))
                .then(|| (key.clone(), entry.outcome.clone()))
            })
            .collect();
        if slice.len() > SNAPSHOT_REPLAY_LIMIT {
            slice.drain(..slice.len() - SNAPSHOT_REPLAY_LIMIT);
        }
        slice
    }

    /// Reinstalls recovered keyed responses (snapshot slice plus WAL-tail
    /// entries) into the tenant's replayed-response cache, oldest first.
    fn reinstall_replay(&self, scope: &Scope, entries: Vec<(String, ReplayOutcome)>) {
        for (key, outcome) in entries {
            self.remember(Some(&key), scope, outcome);
        }
    }

    /// The observable state of the in-progress append session for `name`
    /// (`Ok(None)` when no session is open), so a reconnecting client can
    /// resume from the acked-sequence watermark.
    pub fn append_status(&self, name: &str) -> Result<Option<AppendStatus>, ApiError> {
        self.append_status_scoped(&Scope::default_tenant(name))
    }

    /// [`MiscelaService::append_status`] for a tenant's dataset.
    pub fn append_status_in(
        &self,
        tenant: &str,
        name: &str,
    ) -> Result<Option<AppendStatus>, ApiError> {
        self.append_status_scoped(&Scope::new(tenant, name)?)
    }

    fn append_status_scoped(&self, scope: &Scope) -> Result<Option<AppendStatus>, ApiError> {
        self.dataset_revision_scoped(scope)?;
        let appends = self.store.shard(&scope.key).appends.lock();
        Ok(appends.get(&scope.key).map(|s| AppendStatus {
            session: s.session,
            acked_seq: s.acked_seq,
            received: s.acks.len(),
            missing: s.uploader.missing().len(),
        }))
    }

    /// The extraction cache serving one dataset (created on first use,
    /// sized by the owning tenant's cache-budget quota if one is set).
    fn extraction_for(&self, scope: &Scope) -> Arc<EvolvingSetsCache> {
        let shard = self.store.shard(&scope.key);
        if let Some(cache) = shard.extraction.read().get(&scope.key) {
            return Arc::clone(cache);
        }
        let budget = self
            .store
            .tenant_state(&scope.tenant)
            .quota
            .read()
            .max_cache_entries;
        Arc::clone(
            shard
                .extraction
                .write()
                .entry(scope.key.clone())
                .or_insert_with(|| {
                    Arc::new(match budget {
                        Some(capacity) => EvolvingSetsCache::with_capacity(capacity),
                        None => EvolvingSetsCache::new(),
                    })
                }),
        )
    }

    /// Ages one dataset's extraction cache by one revision and collects
    /// its superseded states.
    fn age_extraction(&self, scope: &Scope) {
        let cache = self.extraction_for(scope);
        cache.bump_generation();
        cache.collect_superseded(DEFAULT_KEEP_GENERATIONS);
    }

    /// The shared document store.
    pub fn database(&self) -> &Arc<Database> {
        &self.store.db
    }

    /// Cache statistics (in-memory tier).
    pub fn cache_stats(&self) -> CacheStats {
        self.store.cache.stats()
    }

    /// Extraction-cache statistics, aggregated over the per-dataset
    /// evolving-sets caches of every shard (and so every tenant).
    pub fn extraction_cache_stats(&self) -> ExtractionCacheStats {
        let mut total = ExtractionCacheStats::default();
        for shard in &self.store.shards {
            for cache in shard.extraction.read().values() {
                let s = cache.stats();
                total.hits += s.hits;
                total.misses += s.misses;
                total.prefix_hits += s.prefix_hits;
                total.prefix_misses += s.prefix_misses;
                total.entries += s.entries;
                total.evicted += s.evicted;
            }
        }
        total
    }

    /// One tenant's slice of the cache statistics — its resident dataset
    /// count plus its extraction caches aggregated — served by
    /// `GET /tenants/{tenant}/cache/stats`.
    pub fn tenant_cache_stats(&self, tenant: &str) -> Result<TenantCacheStats, ApiError> {
        validate_tenant(tenant)?;
        let mut stats = TenantCacheStats::default();
        for shard in &self.store.shards {
            stats.datasets += shard
                .datasets
                .read()
                .keys()
                .filter(|key| key_tenant(key) == tenant)
                .count();
            for (key, cache) in shard.extraction.read().iter() {
                if key_tenant(key) != tenant {
                    continue;
                }
                let s = cache.stats();
                stats.extraction.hits += s.hits;
                stats.extraction.misses += s.misses;
                stats.extraction.prefix_hits += s.prefix_hits;
                stats.extraction.prefix_misses += s.prefix_misses;
                stats.extraction.entries += s.entries;
                stats.extraction.evicted += s.evicted;
            }
        }
        Ok(stats)
    }

    // ----- tenancy -------------------------------------------------------

    /// A tenant's resource limits (all-`None` until set).
    pub fn quota(&self, tenant: &str) -> Result<TenantQuota, ApiError> {
        validate_tenant(tenant)?;
        Ok(*self.store.tenant_state(tenant).quota.read())
    }

    /// Installs a tenant's resource limits. Quotas are in-memory service
    /// policy: they are not persisted by the durability layer and reset on
    /// restart.
    pub fn set_quota(&self, tenant: &str, quota: TenantQuota) -> Result<(), ApiError> {
        validate_tenant(tenant)?;
        *self.store.tenant_state(tenant).quota.write() = quota;
        Ok(())
    }

    /// Enforces the tenant's registration-time quotas: a brand-new dataset
    /// must fit under `max_datasets`, and the registered content must fit
    /// under `max_retained_timestamps`.
    fn check_register_quota(&self, scope: &Scope, dataset: &Dataset) -> Result<(), ApiError> {
        let tenant = self.store.tenant_state(&scope.tenant);
        let quota = *tenant.quota.read();
        if let Some(max) = quota.max_datasets {
            let exists = self
                .store
                .shard(&scope.key)
                .datasets
                .read()
                .contains_key(&scope.key);
            if !exists && tenant.dataset_count.load(Ordering::Relaxed) >= max {
                return Err(ApiError::QuotaExceeded(format!(
                    "tenant {:?} is at its quota of {max} datasets",
                    scope.tenant
                )));
            }
        }
        if let Some(max) = quota.max_retained_timestamps {
            if dataset.timestamp_count() > max {
                return Err(ApiError::QuotaExceeded(format!(
                    "dataset {:?} would retain {} timestamps, over the tenant quota of {max}",
                    scope.name,
                    dataset.timestamp_count()
                )));
            }
        }
        Ok(())
    }

    /// Enforces `max_retained_timestamps` against an already-built dataset
    /// state (the append and retention paths).
    fn check_retained_quota(&self, scope: &Scope, timestamps: usize) -> Result<(), ApiError> {
        let quota = *self.store.tenant_state(&scope.tenant).quota.read();
        if let Some(max) = quota.max_retained_timestamps {
            if timestamps > max {
                return Err(ApiError::QuotaExceeded(format!(
                    "dataset {:?} would retain {timestamps} timestamps, over the tenant quota \
                     of {max}",
                    scope.name
                )));
            }
        }
        Ok(())
    }

    // ----- dataset registry --------------------------------------------

    /// Registers an already-built dataset (the path used by the synthetic
    /// generators and by completed uploads). Re-registering a name replaces
    /// the dataset, bumps its revision and invalidates its cached results.
    ///
    /// On a durable service the registration is snapshotted; a snapshot
    /// failure is swallowed here (the in-memory registration stands) — use
    /// [`MiscelaService::register_dataset_checked`] when the caller needs
    /// the durable acknowledgment. This legacy path is infallible by
    /// signature, so it is also the one registration path that bypasses
    /// tenant quotas (it serves trusted in-process generators; every
    /// router-reachable path goes through the checked variants).
    pub fn register_dataset(&self, dataset: Dataset) -> DatasetSummary {
        let scope = Scope::default_tenant(dataset.name());
        let (summary, _durable) = self.register_dataset_impl(&scope, dataset, None, 0);
        summary
    }

    /// Like [`MiscelaService::register_dataset`], but surfaces a durable
    /// snapshot failure as an error: on `Ok` the registration is on disk
    /// and survives a crash.
    pub fn register_dataset_checked(&self, dataset: Dataset) -> Result<DatasetSummary, ApiError> {
        let scope = Scope::default_tenant(dataset.name());
        self.check_register_quota(&scope, &dataset)?;
        let (summary, durable) = self.register_dataset_impl(&scope, dataset, None, 0);
        durable.map(|()| summary)
    }

    /// Like [`MiscelaService::register_dataset_checked`], with an optional
    /// idempotency key: a retry that carries the same key replays the
    /// original summary (`replayed = true`) instead of re-registering —
    /// re-registering would bump the revision and invalidate caches twice.
    pub fn register_dataset_keyed(
        &self,
        dataset: Dataset,
        key: Option<&str>,
    ) -> Result<(DatasetSummary, bool), ApiError> {
        let scope = Scope::default_tenant(dataset.name());
        self.register_dataset_scoped(&scope, dataset, key)
    }

    /// [`MiscelaService::register_dataset_keyed`] into a tenant's
    /// namespace.
    pub fn register_dataset_keyed_in(
        &self,
        tenant: &str,
        dataset: Dataset,
        key: Option<&str>,
    ) -> Result<(DatasetSummary, bool), ApiError> {
        let scope = Scope::new(tenant, dataset.name())?;
        self.register_dataset_scoped(&scope, dataset, key)
    }

    fn register_dataset_scoped(
        &self,
        scope: &Scope,
        dataset: Dataset,
        key: Option<&str>,
    ) -> Result<(DatasetSummary, bool), ApiError> {
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::Register { summary, .. } => Ok((summary, true)),
                _ => Err(Self::key_conflict(key.unwrap_or_default())),
            };
        }
        self.check_register_quota(scope, &dataset)?;
        let (summary, durable) = self.register_dataset_impl(scope, dataset, key, 0);
        durable.map(|()| (summary, false))
    }

    fn register_dataset_impl(
        &self,
        scope: &Scope,
        dataset: Dataset,
        key: Option<&str>,
        elapsed_ns: u64,
    ) -> (DatasetSummary, Result<(), ApiError>) {
        self.store.cache.invalidate_dataset(&scope.key);
        // A re-registration is a revision bump like any other: age this
        // dataset's extraction tier so states of the replaced content can
        // be collected once nothing touches them anymore.
        self.age_extraction(scope);
        let dataset = Arc::new(dataset);
        let shard = self.store.shard(&scope.key);
        let revision = {
            let mut registry = shard.datasets.write();
            let revision = registry.get(&scope.key).map(|e| e.revision).unwrap_or(0) + 1;
            if registry
                .insert(
                    scope.key.clone(),
                    DatasetEntry {
                        dataset: Arc::clone(&dataset),
                        revision,
                    },
                )
                .is_none()
            {
                self.store
                    .tenant_state(&scope.tenant)
                    .dataset_count
                    .fetch_add(1, Ordering::Relaxed);
            }
            revision
        };
        self.store
            .db
            .delete_where(DATASETS_COLLECTION, &Filter::eq("key", scope.key.as_str()));
        self.store.db.insert(
            DATASETS_COLLECTION,
            dataset_record(scope, &dataset, revision),
        );
        // The registry and store record moved: wake this shard's watchers
        // (the datasets lock is released; see the shard lock order).
        shard.notify_watchers();
        let summary = DatasetSummary {
            name: scope.name.clone(),
            sensors: dataset.sensor_count(),
            records: dataset.record_count(),
            attributes: dataset
                .attributes()
                .names()
                .map(|s| s.to_string())
                .collect(),
        };
        // Cache the keyed response before the durable snapshot below, so
        // the snapshot persists it and a retry replayed across a crash
        // still finds it.
        self.remember(
            key,
            scope,
            ReplayOutcome::Register {
                summary: summary.clone(),
                elapsed_ns,
            },
        );
        let durable = match self.durable(scope, |state| {
            // The replaced content makes any in-flight append session
            // meaningless (its begin/chunk records would not survive the
            // snapshot's WAL reset), so drop it: its `finish_append` will
            // report "no append in progress" instead of silently applying
            // to the new dataset while losing durability.
            drop(shard.appends.lock().remove(&scope.key));
            state.watermark = state.next_session - 1;
            state
                .log
                .install_snapshot(&durability::snapshot_data(
                    &dataset,
                    revision,
                    state.watermark,
                    &self.replay_entries_for(scope),
                ))
                .map_err(wal_err)?;
            state.sealed_at_snapshot = dataset.sealed_timestamps();
            Ok(())
        }) {
            Some(result) => result,
            None => Ok(()),
        };
        (summary, durable)
    }

    /// Fetches a registered dataset by name.
    pub fn dataset(&self, name: &str) -> Result<Arc<Dataset>, ApiError> {
        self.entry(&Scope::default_tenant(name)).map(|e| e.dataset)
    }

    /// [`MiscelaService::dataset`] in a tenant's namespace.
    pub fn dataset_in(&self, tenant: &str, name: &str) -> Result<Arc<Dataset>, ApiError> {
        self.entry(&Scope::new(tenant, name)?).map(|e| e.dataset)
    }

    /// The current revision counter of a registered dataset. Revisions
    /// start at 1 and bump on every re-registration and every completed
    /// append; the mining cache keys results by them. Datasets whose
    /// series are not resident (a reloaded store from a previous session)
    /// resolve through their store record, so cached results stay
    /// servable without a re-upload.
    pub fn dataset_revision(&self, name: &str) -> Result<u64, ApiError> {
        self.dataset_revision_scoped(&Scope::default_tenant(name))
    }

    /// [`MiscelaService::dataset_revision`] in a tenant's namespace.
    pub fn dataset_revision_in(&self, tenant: &str, name: &str) -> Result<u64, ApiError> {
        self.dataset_revision_scoped(&Scope::new(tenant, name)?)
    }

    fn dataset_revision_scoped(&self, scope: &Scope) -> Result<u64, ApiError> {
        if let Some(e) = self.store.shard(&scope.key).datasets.read().get(&scope.key) {
            return Ok(e.revision);
        }
        self.store
            .db
            .find_one(DATASETS_COLLECTION, &Filter::eq("key", scope.key.as_str()))
            .and_then(|doc| doc.get("revision").and_then(|r| r.as_i64()))
            .map(|r| r as u64)
            .ok_or_else(|| {
                ApiError::NotFound(format!("dataset {:?} is not registered", scope.name))
            })
    }

    /// Resolves `(revision, trimmed)` for a dataset whose series are not
    /// resident, from its store record (datasets recorded before the trim
    /// field existed resolve as untrimmed).
    fn stored_version(&self, scope: &Scope) -> Result<(u64, u64), ApiError> {
        let doc = self
            .store
            .db
            .find_one(DATASETS_COLLECTION, &Filter::eq("key", scope.key.as_str()))
            .ok_or_else(|| {
                ApiError::NotFound(format!("dataset {:?} is not registered", scope.name))
            })?;
        let revision = doc
            .get("revision")
            .and_then(|r| r.as_i64())
            .ok_or_else(|| {
                ApiError::NotFound(format!("dataset {:?} is not registered", scope.name))
            })?;
        let trimmed = doc.get("trimmed").and_then(|t| t.as_i64()).unwrap_or(0);
        Ok((revision as u64, trimmed as u64))
    }

    fn entry(&self, scope: &Scope) -> Result<DatasetEntry, ApiError> {
        self.store
            .shard(&scope.key)
            .datasets
            .read()
            .get(&scope.key)
            .cloned()
            .ok_or_else(|| {
                ApiError::NotFound(format!("dataset {:?} is not registered", scope.name))
            })
    }

    // ----- sliding-window retention --------------------------------------

    /// The retention policy of a resident dataset.
    pub fn retention(&self, name: &str) -> Result<RetentionPolicy, ApiError> {
        Ok(*self
            .entry(&Scope::default_tenant(name))?
            .dataset
            .retention())
    }

    /// [`MiscelaService::retention`] in a tenant's namespace.
    pub fn retention_in(&self, tenant: &str, name: &str) -> Result<RetentionPolicy, ApiError> {
        Ok(*self.entry(&Scope::new(tenant, name)?)?.dataset.retention())
    }

    /// Installs a sliding-window retention policy on a registered dataset
    /// and applies it immediately. The policy then re-applies on every
    /// subsequent append.
    ///
    /// Like `finish_append`, the mutation happens on a copy-on-extend clone
    /// outside any lock (cheap: `Arc`-shared blocks) and is swapped in
    /// under a brief write lock with a revision re-check. When the
    /// immediate trim dropped anything the revision is bumped — trimmed
    /// content must never be served from cache — and superseded cache
    /// generations are collected.
    pub fn set_retention(
        &self,
        name: &str,
        policy: RetentionPolicy,
    ) -> Result<RetentionSummary, ApiError> {
        self.set_retention_keyed(name, policy, None).map(|(s, _)| s)
    }

    /// Like [`MiscelaService::set_retention`], with an optional idempotency
    /// key: a retry carrying the same key replays the original summary
    /// (`replayed = true`) instead of re-applying — a blind retry would
    /// observe `trimmed_timestamps = 0` and a different revision.
    pub fn set_retention_keyed(
        &self,
        name: &str,
        policy: RetentionPolicy,
        key: Option<&str>,
    ) -> Result<(RetentionSummary, bool), ApiError> {
        self.set_retention_scoped(&Scope::default_tenant(name), policy, key)
    }

    /// [`MiscelaService::set_retention_keyed`] in a tenant's namespace.
    pub fn set_retention_keyed_in(
        &self,
        tenant: &str,
        name: &str,
        policy: RetentionPolicy,
        key: Option<&str>,
    ) -> Result<(RetentionSummary, bool), ApiError> {
        self.set_retention_scoped(&Scope::new(tenant, name)?, policy, key)
    }

    fn set_retention_scoped(
        &self,
        scope: &Scope,
        policy: RetentionPolicy,
        key: Option<&str>,
    ) -> Result<(RetentionSummary, bool), ApiError> {
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::Retention { summary } => Ok((summary, true)),
                _ => Err(Self::key_conflict(key.unwrap_or_default())),
            };
        }
        // A retention change is durable only through a snapshot write, so a
        // degraded dataset refuses it (typed, retryable) until re-armed.
        self.ensure_durable_writable(scope)?;
        let base = self.entry(scope)?;
        let mut ds = (*base.dataset).clone();
        ds.set_retention(policy);
        let trimmed = ds.trim_expired();
        // Retention time is also quota-check time: a window that still
        // retains more than the tenant's budget is a typed 403.
        self.check_retained_quota(scope, ds.timestamp_count())?;
        let ds = Arc::new(ds);
        let shard = self.store.shard(&scope.key);
        let summary = {
            let mut registry = shard.datasets.write();
            let entry = registry.get_mut(&scope.key).ok_or_else(|| {
                ApiError::NotFound(format!("dataset {:?} is not registered", scope.name))
            })?;
            if entry.revision != base.revision {
                return Err(ApiError::BadRequest(format!(
                    "dataset {:?} changed while the retention policy was being applied \
                     (revision {} -> {}); retry",
                    scope.name, base.revision, entry.revision
                )));
            }
            if trimmed > 0 {
                entry.revision += 1;
            }
            entry.dataset = Arc::clone(&ds);
            RetentionSummary {
                name: scope.name.clone(),
                trimmed_timestamps: trimmed,
                trimmed_total: ds.trimmed(),
                timestamps: ds.timestamp_count(),
                revision: entry.revision,
            }
        };
        if trimmed > 0 {
            self.store
                .cache
                .evict_superseded(&scope.key, summary.revision);
            self.age_extraction(scope);
            self.store
                .db
                .delete_where(DATASETS_COLLECTION, &Filter::eq("key", scope.key.as_str()));
            self.store.db.insert(
                DATASETS_COLLECTION,
                dataset_record(scope, &ds, summary.revision),
            );
            // The trim bumped the revision: wake this shard's watchers.
            shard.notify_watchers();
        }
        // Cache the keyed response before the durable snapshot so the
        // snapshot persists it for replay across a crash.
        self.remember(
            key,
            scope,
            ReplayOutcome::Retention {
                summary: summary.clone(),
            },
        );
        // A retention change is only durable through a snapshot (there is
        // no WAL record for it), and a retention *trim* is exactly when the
        // WAL should compact — the trimmed history must not be replayed.
        if let Some(result) = self.durable(scope, |state| {
            state
                .log
                .install_snapshot(&durability::snapshot_data(
                    &ds,
                    summary.revision,
                    state.watermark,
                    &self.replay_entries_for(scope),
                ))
                .map_err(wal_err)?;
            state.sealed_at_snapshot = ds.sealed_timestamps();
            self.relog_inflight(scope, state)
        }) {
            result?;
        }
        Ok((summary, false))
    }

    /// Lists the default tenant's registered datasets (from the store, so
    /// names uploaded by previous sessions appear even if their series are
    /// not resident).
    pub fn list_datasets(&self) -> Vec<DatasetSummary> {
        self.list_datasets_tenant(DEFAULT_TENANT)
    }

    /// Lists a tenant's registered datasets.
    pub fn list_datasets_in(&self, tenant: &str) -> Result<Vec<DatasetSummary>, ApiError> {
        validate_tenant(tenant)?;
        Ok(self.list_datasets_tenant(tenant))
    }

    fn list_datasets_tenant(&self, tenant: &str) -> Vec<DatasetSummary> {
        self.store
            .db
            .find(DATASETS_COLLECTION, &Filter::eq("tenant", tenant))
            .into_iter()
            .filter_map(|doc| {
                Some(DatasetSummary {
                    name: doc.get("name")?.as_str()?.to_string(),
                    sensors: doc.get("sensors")?.as_i64()? as usize,
                    records: doc.get("records")?.as_i64()? as usize,
                    attributes: doc
                        .get("attributes")?
                        .as_array()?
                        .iter()
                        .filter_map(|a| a.as_str().map(|s| s.to_string()))
                        .collect(),
                })
            })
            .collect()
    }

    /// Removes a dataset and its cached results (including its extraction
    /// cache, whose states can never be valid for another dataset name),
    /// along with any in-flight upload/append session targeting it and its
    /// on-disk durability log.
    pub fn delete_dataset(&self, name: &str) -> Result<(), ApiError> {
        self.delete_dataset_keyed(name, None).map(|_| ())
    }

    /// Like [`MiscelaService::delete_dataset`], with an optional
    /// idempotency key: a retry carrying the same key replays the original
    /// acknowledgment (`replayed = true`) instead of reporting 404 for the
    /// already-deleted dataset. The delete entry lives only in the
    /// in-memory cache — the durability log is removed with the dataset —
    /// so across a crash a retried delete falls back to 404, which clients
    /// treat as confirmation.
    pub fn delete_dataset_keyed(&self, name: &str, key: Option<&str>) -> Result<bool, ApiError> {
        self.delete_dataset_scoped(&Scope::default_tenant(name), key)
    }

    /// [`MiscelaService::delete_dataset_keyed`] in a tenant's namespace.
    pub fn delete_dataset_keyed_in(
        &self,
        tenant: &str,
        name: &str,
        key: Option<&str>,
    ) -> Result<bool, ApiError> {
        self.delete_dataset_scoped(&Scope::new(tenant, name)?, key)
    }

    fn delete_dataset_scoped(&self, scope: &Scope, key: Option<&str>) -> Result<bool, ApiError> {
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::Delete => Ok(true),
                _ => Err(Self::key_conflict(key.unwrap_or_default())),
            };
        }
        let shard = self.store.shard(&scope.key);
        let existed = shard.datasets.write().remove(&scope.key).is_some();
        if existed {
            self.store
                .tenant_state(&scope.tenant)
                .dataset_count
                .fetch_sub(1, Ordering::Relaxed);
        }
        shard.extraction.write().remove(&scope.key);
        shard.uploads.lock().remove(&scope.key);
        shard.appends.lock().remove(&scope.key);
        if let Some(d) = &self.store.durability {
            shard.durable.lock().remove(&scope.key);
            d.store_for(&scope.tenant)
                .remove_dataset(&scope.name)
                .map_err(wal_err)?;
        }
        let stored = self
            .store
            .db
            .delete_where(DATASETS_COLLECTION, &Filter::eq("key", scope.key.as_str()));
        self.store.cache.invalidate_dataset(&scope.key);
        if existed {
            // Wake parked watchers: they re-read the registry, find the
            // dataset gone, and return the typed `NotFound` close instead
            // of idling until their deadline.
            shard.notify_watchers();
        }
        if existed || stored > 0 {
            self.remember(key, scope, ReplayOutcome::Delete);
            Ok(false)
        } else {
            Err(ApiError::NotFound(format!(
                "dataset {:?} is not registered",
                scope.name
            )))
        }
    }

    // ----- chunked upload ------------------------------------------------

    /// Starts a chunked upload: the client sends `location.csv` and
    /// `attribute.csv` up front, then streams `data.csv` chunks.
    pub fn begin_upload(
        &self,
        dataset: &str,
        location_csv_text: &str,
        attribute_csv_text: &str,
    ) -> Result<(), ApiError> {
        self.begin_upload_keyed(dataset, location_csv_text, attribute_csv_text, None)
            .map(|_| ())
    }

    /// Like [`MiscelaService::begin_upload`], with an optional idempotency
    /// key: a retry carrying the same key acknowledges without resetting
    /// the session (`replayed = true`) — a blind retried begin would
    /// discard every chunk accepted since the original.
    pub fn begin_upload_keyed(
        &self,
        dataset: &str,
        location_csv_text: &str,
        attribute_csv_text: &str,
        key: Option<&str>,
    ) -> Result<bool, ApiError> {
        self.begin_upload_scoped(
            &Scope::default_tenant(dataset),
            location_csv_text,
            attribute_csv_text,
            key,
        )
    }

    /// [`MiscelaService::begin_upload_keyed`] in a tenant's namespace.
    pub fn begin_upload_keyed_in(
        &self,
        tenant: &str,
        dataset: &str,
        location_csv_text: &str,
        attribute_csv_text: &str,
        key: Option<&str>,
    ) -> Result<bool, ApiError> {
        self.begin_upload_scoped(
            &Scope::new(tenant, dataset)?,
            location_csv_text,
            attribute_csv_text,
            key,
        )
    }

    fn begin_upload_scoped(
        &self,
        scope: &Scope,
        location_csv_text: &str,
        attribute_csv_text: &str,
        key: Option<&str>,
    ) -> Result<bool, ApiError> {
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::UploadBegin => Ok(true),
                _ => Err(Self::key_conflict(key.unwrap_or_default())),
            };
        }
        // Validate the two small files immediately so a typo fails fast.
        location_csv::parse_document(location_csv_text)
            .map_err(|e| ApiError::BadRequest(format!("location.csv: {e}")))?;
        miscela_csv::attribute_csv::parse_document(attribute_csv_text)
            .map_err(|e| ApiError::BadRequest(format!("attribute.csv: {e}")))?;
        let mut uploads = self.store.shard(&scope.key).uploads.lock();
        uploads.insert(
            scope.key.clone(),
            UploadSession {
                dataset: scope.key.clone(),
                location_csv: location_csv_text.to_string(),
                attribute_csv: attribute_csv_text.to_string(),
                uploader: ChunkedUploader::new(),
                started: Instant::now(),
            },
        );
        drop(uploads);
        self.remember(key, scope, ReplayOutcome::UploadBegin);
        Ok(false)
    }

    /// Accepts one `data.csv` chunk for an upload in progress. Returns the
    /// number of chunks still missing.
    pub fn upload_chunk(&self, dataset: &str, chunk: &Chunk) -> Result<usize, ApiError> {
        self.upload_chunk_scoped(&Scope::default_tenant(dataset), chunk)
    }

    /// [`MiscelaService::upload_chunk`] in a tenant's namespace.
    pub fn upload_chunk_in(
        &self,
        tenant: &str,
        dataset: &str,
        chunk: &Chunk,
    ) -> Result<usize, ApiError> {
        self.upload_chunk_scoped(&Scope::new(tenant, dataset)?, chunk)
    }

    fn upload_chunk_scoped(&self, scope: &Scope, chunk: &Chunk) -> Result<usize, ApiError> {
        let mut uploads = self.store.shard(&scope.key).uploads.lock();
        let session = uploads.get_mut(&scope.key).ok_or_else(|| {
            ApiError::NotFound(format!("no upload in progress for {:?}", scope.name))
        })?;
        session
            .uploader
            .accept(chunk)
            .map_err(|e| ApiError::BadRequest(format!("chunk {}: {e}", chunk.index)))?;
        Ok(session.uploader.missing().len())
    }

    /// Completes an upload: assembles the chunks, builds the dataset and
    /// registers it. Returns the dataset summary and the upload duration.
    pub fn finish_upload(&self, dataset: &str) -> Result<(DatasetSummary, Duration), ApiError> {
        self.finish_upload_keyed(dataset, None)
            .map(|(s, d, _)| (s, d))
    }

    /// Like [`MiscelaService::finish_upload`], with an optional idempotency
    /// key: a retry carrying the same key replays the original summary
    /// (`replayed = true`) instead of reporting "no upload in progress" —
    /// the original finish consumed the session.
    pub fn finish_upload_keyed(
        &self,
        dataset: &str,
        key: Option<&str>,
    ) -> Result<(DatasetSummary, Duration, bool), ApiError> {
        self.finish_upload_scoped(&Scope::default_tenant(dataset), key)
    }

    /// [`MiscelaService::finish_upload_keyed`] in a tenant's namespace.
    pub fn finish_upload_keyed_in(
        &self,
        tenant: &str,
        dataset: &str,
        key: Option<&str>,
    ) -> Result<(DatasetSummary, Duration, bool), ApiError> {
        self.finish_upload_scoped(&Scope::new(tenant, dataset)?, key)
    }

    fn finish_upload_scoped(
        &self,
        scope: &Scope,
        key: Option<&str>,
    ) -> Result<(DatasetSummary, Duration, bool), ApiError> {
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::Register {
                    summary,
                    elapsed_ns,
                } => Ok((summary, Duration::from_nanos(elapsed_ns), true)),
                _ => Err(Self::key_conflict(key.unwrap_or_default())),
            };
        }
        let session = self
            .store
            .shard(&scope.key)
            .uploads
            .lock()
            .remove(&scope.key)
            .ok_or_else(|| {
                ApiError::NotFound(format!("no upload in progress for {:?}", scope.name))
            })?;
        let elapsed = session.started.elapsed();
        let rows = session
            .uploader
            .finish()
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        let locations = location_csv::parse_document(&session.location_csv)
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        let attributes = miscela_csv::attribute_csv::parse_document(&session.attribute_csv)
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        let ds = DatasetLoader::new(&scope.name)
            .assemble(&attributes, &locations, &rows)
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        self.check_register_quota(scope, &ds)?;
        let (summary, durable) =
            self.register_dataset_impl(scope, ds, key, elapsed.as_nanos() as u64);
        durable.map(|()| (summary, elapsed, false))
    }

    // ----- chunked append -----------------------------------------------

    /// Starts an append session for an already-registered dataset: the
    /// client then streams `data.csv` chunks of new rows through
    /// [`MiscelaService::append_chunk`]. Unlike an upload, no
    /// `location.csv`/`attribute.csv` are sent — the sensors must already
    /// exist.
    pub fn begin_append(&self, dataset: &str) -> Result<(), ApiError> {
        self.begin_append_keyed(dataset, None).map(|_| ())
    }

    /// Like [`MiscelaService::begin_append`], with an optional idempotency
    /// key, returning the session id the client must echo on every
    /// sequenced chunk. A retry carrying the same key replays the original
    /// session id (`replayed = true`) instead of reporting a conflict with
    /// the session it itself opened.
    pub fn begin_append_keyed(
        &self,
        dataset: &str,
        key: Option<&str>,
    ) -> Result<BeginAppendOutcome, ApiError> {
        self.begin_append_scoped(&Scope::default_tenant(dataset), key)
    }

    /// [`MiscelaService::begin_append_keyed`] in a tenant's namespace.
    pub fn begin_append_keyed_in(
        &self,
        tenant: &str,
        dataset: &str,
        key: Option<&str>,
    ) -> Result<BeginAppendOutcome, ApiError> {
        self.begin_append_scoped(&Scope::new(tenant, dataset)?, key)
    }

    fn begin_append_scoped(
        &self,
        scope: &Scope,
        key: Option<&str>,
    ) -> Result<BeginAppendOutcome, ApiError> {
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::Begin { session } => Ok(BeginAppendOutcome {
                    session,
                    replayed: true,
                }),
                _ => Err(Self::key_conflict(key.unwrap_or_default())),
            };
        }
        // Fail fast when the target does not exist.
        self.entry(scope)?;
        // A degraded dataset is read-only; probe the durable write path
        // (and re-arm it if it recovered) before opening a session.
        self.ensure_durable_writable(scope)?;
        let shard = self.store.shard(&scope.key);
        // Reserve the session slot atomically: a second begin while one is
        // open is a typed conflict, not a silent replacement that would
        // orphan the first session's acknowledged chunks. The placeholder
        // (session id 0) is filled in — or removed — once the durable begin
        // record settles; the appends lock cannot be held across `durable`
        // (relog_inflight takes it inside the states lock), and a relogged
        // placeholder is benign on replay because session 0 is never above
        // the snapshot watermark.
        {
            let mut appends = shard.appends.lock();
            if appends.contains_key(&scope.key) {
                return Err(ApiError::Conflict(format!(
                    "an append session is already open for {:?}; \
                     finish it before beginning another",
                    scope.name
                )));
            }
            appends.insert(
                scope.key.clone(),
                AppendSession {
                    dataset: scope.key.clone(),
                    uploader: ChunkedUploader::new(),
                    started: Instant::now(),
                    session: 0,
                    key: key.map(|k| k.to_string()),
                    chunks: Vec::new(),
                    acked_seq: 0,
                    acks: Vec::new(),
                },
            );
        }
        // On a durable service the session id and its begin record are made
        // durable before any chunk is accepted: a crash right after this
        // call restores the (empty) session on recovery.
        let session = match self.durable(scope, |state| {
            let id = state.next_session;
            state
                .log
                .log(&durability::begin_record(id, key))
                .map_err(wal_err)?;
            state.log.commit().map_err(wal_err)?;
            state.next_session = id + 1;
            Ok(id)
        }) {
            Some(Ok(id)) => id,
            Some(Err(e)) => {
                shard.appends.lock().remove(&scope.key);
                return Err(e);
            }
            // Without durability, session ids come from the service-wide
            // counter: still unique, so a stale client is still detected.
            None => self.store.session_ids.fetch_add(1, Ordering::Relaxed),
        };
        if let Some(s) = shard.appends.lock().get_mut(&scope.key) {
            s.session = session;
        }
        self.remember(key, scope, ReplayOutcome::Begin { session });
        Ok(BeginAppendOutcome {
            session,
            replayed: false,
        })
    }

    /// Accepts one `data.csv` chunk for an append in progress — the same
    /// chunk envelope and parsing as [`MiscelaService::upload_chunk`].
    /// Returns the number of chunks still missing.
    ///
    /// On a durable service the chunk is logged to the WAL and fsynced
    /// *before* this returns `Ok`: an acknowledged chunk survives a crash
    /// at any later point, recoverable into the restored session.
    pub fn append_chunk(&self, dataset: &str, chunk: &Chunk) -> Result<usize, ApiError> {
        self.append_chunk_scoped(&Scope::default_tenant(dataset), chunk)
    }

    /// [`MiscelaService::append_chunk`] in a tenant's namespace.
    pub fn append_chunk_in(
        &self,
        tenant: &str,
        dataset: &str,
        chunk: &Chunk,
    ) -> Result<usize, ApiError> {
        self.append_chunk_scoped(&Scope::new(tenant, dataset)?, chunk)
    }

    fn append_chunk_scoped(&self, scope: &Scope, chunk: &Chunk) -> Result<usize, ApiError> {
        // A degraded dataset stops acknowledging chunks; the probe re-arms
        // the write path (re-logging every previously acknowledged chunk)
        // before any new chunk is accepted.
        self.ensure_durable_writable(scope)?;
        let durable = self.store.durability.is_some();
        let (missing, session_id, seq) = {
            let mut appends = self.store.shard(&scope.key).appends.lock();
            let session = appends.get_mut(&scope.key).ok_or_else(|| {
                ApiError::NotFound(format!("no append in progress for {:?}", scope.name))
            })?;
            session
                .uploader
                .accept(chunk)
                .map_err(|e| ApiError::BadRequest(format!("chunk {}: {e}", chunk.index)))?;
            if durable {
                // A chunk re-sent after a lost ack replaces its earlier
                // copy (the uploader already did), so the re-log list never
                // grows duplicates.
                match session.chunks.iter_mut().find(|c| c.index == chunk.index) {
                    Some(slot) => *slot = chunk.clone(),
                    None => session.chunks.push(chunk.clone()),
                }
            }
            (
                session.uploader.missing().len(),
                session.session,
                session.chunks.len() as u64,
            )
        };
        if let Some(result) = self.durable(scope, |state| {
            state
                .log
                .log(&durability::chunk_record(session_id, seq, chunk))
                .map_err(wal_err)?;
            state.log.commit().map_err(wal_err)
        }) {
            result?;
        }
        Ok(missing)
    }

    /// Sequenced [`MiscelaService::append_chunk`]: the client numbers each
    /// chunk delivery 1, 2, 3… within the session and echoes the session id
    /// from [`MiscelaService::begin_append_keyed`]. This makes chunk
    /// delivery exactly-once under loss, duplication and reordering:
    ///
    /// * `seq` at or below the acked watermark → the chunk was already
    ///   accepted (the ack got lost); the original acknowledgment is
    ///   replayed byte-identically and nothing is re-applied or re-logged;
    /// * `seq` more than one past the watermark → a gap (an earlier chunk
    ///   is still in flight); typed 412 carrying the watermark so the
    ///   client rewinds instead of blindly retrying;
    /// * a session id other than the open session's → the session is stale
    ///   (the server restarted it, or a registration dropped it); typed
    ///   412 telling the client which session is current.
    pub fn append_chunk_seq(
        &self,
        dataset: &str,
        session_id: u64,
        seq: u64,
        chunk: &Chunk,
    ) -> Result<ChunkAck, ApiError> {
        self.append_chunk_seq_scoped(&Scope::default_tenant(dataset), session_id, seq, chunk)
    }

    /// [`MiscelaService::append_chunk_seq`] in a tenant's namespace.
    pub fn append_chunk_seq_in(
        &self,
        tenant: &str,
        dataset: &str,
        session_id: u64,
        seq: u64,
        chunk: &Chunk,
    ) -> Result<ChunkAck, ApiError> {
        self.append_chunk_seq_scoped(&Scope::new(tenant, dataset)?, session_id, seq, chunk)
    }

    fn append_chunk_seq_scoped(
        &self,
        scope: &Scope,
        session_id: u64,
        seq: u64,
        chunk: &Chunk,
    ) -> Result<ChunkAck, ApiError> {
        if seq == 0 {
            return Err(ApiError::BadRequest(
                "chunk sequence numbers start at 1".to_string(),
            ));
        }
        self.ensure_durable_writable(scope)?;
        let durable = self.store.durability.is_some();
        let shard = self.store.shard(&scope.key);
        {
            let mut appends = shard.appends.lock();
            let session = appends.get_mut(&scope.key).ok_or_else(|| {
                ApiError::NotFound(format!("no append in progress for {:?}", scope.name))
            })?;
            if session.session != session_id {
                let expected_session = session.session;
                let expected_seq = session.acked_seq + 1;
                drop(appends);
                self.store
                    .tenant_state(&scope.tenant)
                    .protocol
                    .lock()
                    .stale_sessions += 1;
                return Err(ApiError::SequenceGap {
                    message: format!(
                        "append session {session_id} for {:?} is stale; \
                         the open session is {expected_session}",
                        scope.name
                    ),
                    expected_session,
                    expected_seq,
                });
            }
            if seq <= session.acked_seq {
                // Duplicate delivery: replay the original ack verbatim.
                let (accepted, missing) = session.acks[(seq - 1) as usize];
                let acked_seq = session.acked_seq;
                drop(appends);
                self.store
                    .tenant_state(&scope.tenant)
                    .protocol
                    .lock()
                    .chunk_duplicates += 1;
                return Ok(ChunkAck {
                    accepted,
                    missing,
                    acked_seq,
                    replayed: true,
                });
            }
            if seq > session.acked_seq + 1 {
                let expected_session = session.session;
                let expected_seq = session.acked_seq + 1;
                drop(appends);
                self.store
                    .tenant_state(&scope.tenant)
                    .protocol
                    .lock()
                    .sequence_gaps += 1;
                return Err(ApiError::SequenceGap {
                    message: format!(
                        "chunk sequence gap for {:?}: got {seq}, expected {expected_seq}",
                        scope.name
                    ),
                    expected_session,
                    expected_seq,
                });
            }
            session
                .uploader
                .accept(chunk)
                .map_err(|e| ApiError::BadRequest(format!("chunk {}: {e}", chunk.index)))?;
            if durable {
                match session.chunks.iter_mut().find(|c| c.index == chunk.index) {
                    Some(slot) => *slot = chunk.clone(),
                    None => session.chunks.push(chunk.clone()),
                }
            }
        }
        // The WAL write happens outside the appends lock (same discipline
        // as the unsequenced path); the ack — and the watermark bump — only
        // after it fsyncs, so an acknowledged sequence number is always
        // durable.
        if let Some(result) = self.durable(scope, |state| {
            state
                .log
                .log(&durability::chunk_record(session_id, seq, chunk))
                .map_err(wal_err)?;
            state.log.commit().map_err(wal_err)
        }) {
            result?;
        }
        let mut appends = shard.appends.lock();
        let session = appends.get_mut(&scope.key).ok_or_else(|| {
            ApiError::NotFound(format!("no append in progress for {:?}", scope.name))
        })?;
        let missing = session.uploader.missing().len();
        if session.acked_seq < seq {
            session.acked_seq = seq;
            session.acks.push((chunk.index, missing));
        }
        Ok(ChunkAck {
            accepted: chunk.index,
            missing,
            acked_seq: session.acked_seq,
            replayed: false,
        })
    }

    /// Completes an append: applies the assembled rows to the registered
    /// dataset in place (grid and every series extended with missing-value
    /// fill), bumps the dataset revision, and drops cached results of the
    /// superseded revisions. Returns the summary and the session duration.
    pub fn finish_append(&self, dataset: &str) -> Result<(AppendSummary, Duration), ApiError> {
        self.finish_append_keyed(dataset, None)
            .map(|(s, d, _)| (s, d))
    }

    /// Like [`MiscelaService::finish_append`], with an optional idempotency
    /// key: a retry carrying the same key replays the original summary
    /// (`replayed = true`) instead of re-applying — the original finish
    /// consumed the session, so a blind retry would double-apply (or
    /// report "no append in progress" and leave the client unable to tell
    /// whether its rows committed). The keyed response is also carried in
    /// the session's WAL commit record, so the replay survives a crash
    /// between the commit and the retry.
    pub fn finish_append_keyed(
        &self,
        dataset: &str,
        key: Option<&str>,
    ) -> Result<(AppendSummary, Duration, bool), ApiError> {
        self.finish_append_scoped(&Scope::default_tenant(dataset), key)
    }

    /// [`MiscelaService::finish_append_keyed`] in a tenant's namespace.
    pub fn finish_append_keyed_in(
        &self,
        tenant: &str,
        dataset: &str,
        key: Option<&str>,
    ) -> Result<(AppendSummary, Duration, bool), ApiError> {
        self.finish_append_scoped(&Scope::new(tenant, dataset)?, key)
    }

    fn finish_append_scoped(
        &self,
        scope: &Scope,
        key: Option<&str>,
    ) -> Result<(AppendSummary, Duration, bool), ApiError> {
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::Finish {
                    summary,
                    elapsed_ns,
                } => Ok((summary, Duration::from_nanos(elapsed_ns), true)),
                _ => Err(Self::key_conflict(key.unwrap_or_default())),
            };
        }
        self.ensure_durable_writable(scope)?;
        // Applying the assembled rows is real work: it holds an admission
        // permit (fixed cost — the apply is O(tail)) so an append storm
        // cannot starve mines of budget. Admission happens before the
        // session is consumed, so a shed finish leaves the session intact
        // for a retry.
        let _permit = self.admit_scoped(scope, APPEND_COST, None)?;
        let shard = self.store.shard(&scope.key);
        let session = shard.appends.lock().remove(&scope.key).ok_or_else(|| {
            ApiError::NotFound(format!("no append in progress for {:?}", scope.name))
        })?;
        let elapsed = session.started.elapsed();
        let session_id = session.session;
        let rows = session
            .uploader
            .finish()
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        // Clone the Arc under a read lock and apply the append outside any
        // lock — the clone is a copy-on-extend view (series blocks stay
        // `Arc`-shared; only the mutable tails are copied), so this costs
        // O(tail), not O(dataset), no matter how old the dataset is. The
        // brief write lock at the end swaps the new dataset in, re-checking
        // the revision so a concurrent re-registration (or racing append)
        // is detected instead of silently overwritten.
        let base = self.entry(scope)?;
        let mut ds = (*base.dataset).clone();
        let append = DatasetLoader::append(&mut ds, &rows)
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        // Append time is quota-check time: content over the tenant's
        // retained-timestamps budget is a typed 403. The session was
        // already consumed — the client trims (or raises the quota) and
        // begins a new append.
        self.check_retained_quota(scope, ds.timestamp_count())?;
        let ds = Arc::new(ds);
        let summary = {
            let mut registry = shard.datasets.write();
            let entry = registry.get_mut(&scope.key).ok_or_else(|| {
                ApiError::NotFound(format!("dataset {:?} is not registered", scope.name))
            })?;
            if entry.revision != base.revision {
                return Err(ApiError::BadRequest(format!(
                    "dataset {:?} changed while the append was being applied \
                     (revision {} -> {}); retry the append",
                    scope.name, base.revision, entry.revision
                )));
            }
            entry.revision += 1;
            entry.dataset = Arc::clone(&ds);
            AppendSummary {
                name: scope.name.clone(),
                new_timestamps: append.new_timestamps,
                measurements: append.measurements,
                trimmed_timestamps: append.trimmed_timestamps,
                timestamps: ds.timestamp_count(),
                revision: entry.revision,
            }
        };
        // The revision bump already makes superseded results unreachable by
        // key; garbage-collecting them too keeps the store collection from
        // growing one dead generation per append, and aging this dataset's
        // extraction tier lets superseded prefix states be reclaimed once
        // no mining pass touches them anymore. (Everything here — including
        // the store record below — reads only O(1) dataset accessors, so
        // the whole service append stays O(tail).)
        self.store
            .cache
            .evict_superseded(&scope.key, summary.revision);
        self.age_extraction(scope);
        self.store
            .db
            .delete_where(DATASETS_COLLECTION, &Filter::eq("key", scope.key.as_str()));
        self.store.db.insert(
            DATASETS_COLLECTION,
            dataset_record(scope, &ds, summary.revision),
        );
        // The new revision is visible: wake this shard's watchers (the
        // datasets lock is released; the durable commit below does not
        // change what a watcher observes).
        shard.notify_watchers();
        // The append is applied: cache the keyed response *before* the
        // durable commit, so even a retry that arrives while the commit
        // record is still being written (or after it failed and the
        // dataset degraded) replays this outcome instead of re-applying.
        self.remember(
            key,
            scope,
            ReplayOutcome::Finish {
                summary: summary.clone(),
                elapsed_ns: elapsed.as_nanos() as u64,
            },
        );
        // Durable commit: the session's commit record is fsynced before the
        // ack. When the append sealed new 256-point blocks (or trimmed the
        // window) a snapshot follows, compacting the WAL so recovery stays
        // O(rows since last snapshot).
        if let Some(result) = self.durable(scope, |state| {
            state
                .log
                .log(&durability::commit_record(
                    session_id,
                    key,
                    &summary,
                    elapsed.as_nanos() as u64,
                ))
                .map_err(wal_err)?;
            state.log.commit().map_err(wal_err)?;
            state.watermark = session_id;
            if summary.trimmed_timestamps > 0 || ds.sealed_timestamps() > state.sealed_at_snapshot {
                state
                    .log
                    .install_snapshot(&durability::snapshot_data(
                        &ds,
                        summary.revision,
                        state.watermark,
                        &self.replay_entries_for(scope),
                    ))
                    .map_err(wal_err)?;
                state.sealed_at_snapshot = ds.sealed_timestamps();
                self.relog_inflight(scope, state)?;
            }
            Ok(())
        }) {
            result?;
        }
        Ok((summary, elapsed, false))
    }

    /// Convenience wrapper: appends a full `data.csv` document of new rows
    /// by splitting it into paper-sized chunks and driving the append-chunk
    /// protocol.
    pub fn append_documents(
        &self,
        dataset: &str,
        data_csv_text: &str,
        chunk_lines: usize,
    ) -> Result<AppendSummary, ApiError> {
        self.begin_append(dataset)?;
        for chunk in miscela_csv::split_into_chunks(data_csv_text, chunk_lines) {
            self.append_chunk(dataset, &chunk)?;
        }
        let (summary, _) = self.finish_append(dataset)?;
        Ok(summary)
    }

    /// [`MiscelaService::append_documents`] in a tenant's namespace.
    pub fn append_documents_in(
        &self,
        tenant: &str,
        dataset: &str,
        data_csv_text: &str,
        chunk_lines: usize,
    ) -> Result<AppendSummary, ApiError> {
        self.begin_append_keyed_in(tenant, dataset, None)?;
        for chunk in miscela_csv::split_into_chunks(data_csv_text, chunk_lines) {
            self.append_chunk_in(tenant, dataset, &chunk)?;
        }
        let (summary, _, _) = self.finish_append_keyed_in(tenant, dataset, None)?;
        Ok(summary)
    }

    /// Convenience wrapper: uploads a full `data.csv` document by splitting
    /// it into paper-sized chunks and driving the chunk protocol.
    pub fn upload_documents(
        &self,
        dataset: &str,
        data_csv_text: &str,
        location_csv_text: &str,
        attribute_csv_text: &str,
        chunk_lines: usize,
    ) -> Result<DatasetSummary, ApiError> {
        self.begin_upload(dataset, location_csv_text, attribute_csv_text)?;
        for chunk in miscela_csv::split_into_chunks(data_csv_text, chunk_lines) {
            self.upload_chunk(dataset, &chunk)?;
        }
        let (summary, _) = self.finish_upload(dataset)?;
        Ok(summary)
    }

    /// [`MiscelaService::upload_documents`] in a tenant's namespace.
    pub fn upload_documents_in(
        &self,
        tenant: &str,
        dataset: &str,
        data_csv_text: &str,
        location_csv_text: &str,
        attribute_csv_text: &str,
        chunk_lines: usize,
    ) -> Result<DatasetSummary, ApiError> {
        self.begin_upload_keyed_in(tenant, dataset, location_csv_text, attribute_csv_text, None)?;
        for chunk in miscela_csv::split_into_chunks(data_csv_text, chunk_lines) {
            self.upload_chunk_in(tenant, dataset, &chunk)?;
        }
        let (summary, _, _) = self.finish_upload_keyed_in(tenant, dataset, None)?;
        Ok(summary)
    }

    // ----- mining ---------------------------------------------------------

    /// Mines a registered dataset with the given parameters, consulting the
    /// cache first (Section 3.3). The cache key carries the dataset's
    /// current revision, so results mined before an append can never be
    /// served for the appended content.
    pub fn mine(&self, dataset: &str, params: &MiningParams) -> Result<MineOutcome, ApiError> {
        self.mine_cancellable(dataset, params, None, &CancelToken::never())
    }

    /// [`MiscelaService::mine`] in a tenant's namespace.
    pub fn mine_in(
        &self,
        tenant: &str,
        dataset: &str,
        params: &MiningParams,
    ) -> Result<MineOutcome, ApiError> {
        self.mine_scoped(
            &Scope::new(tenant, dataset)?,
            params,
            None,
            &CancelToken::never(),
        )
    }

    /// Like [`MiscelaService::mine`], with a wall-clock deadline: the
    /// request fails with [`ApiError::DeadlineExceeded`] if it is still
    /// queued for admission at the deadline, and an in-flight mine aborts
    /// cooperatively within a bounded stride once the deadline passes.
    /// Cache hits are served even past the deadline — they cost nothing.
    pub fn mine_with_deadline(
        &self,
        dataset: &str,
        params: &MiningParams,
        deadline: Option<Instant>,
    ) -> Result<MineOutcome, ApiError> {
        self.mine_cancellable(dataset, params, deadline, &CancelToken::never())
    }

    /// The full serving path under overload protection: cache lookup →
    /// cost-weighted admission (bounded queue, immediate shedding beyond
    /// it) → cancellable mine.
    ///
    /// `cancel` lets a caller abort the mine from another thread; `deadline`
    /// additionally bounds both queueing and mining time. A cancelled or
    /// timed-out mine writes nothing into the result cache (only
    /// content-keyed per-series extraction states, which are valid for any
    /// retry), so a subsequent identical request recomputes and caches the
    /// complete result.
    pub fn mine_cancellable(
        &self,
        dataset: &str,
        params: &MiningParams,
        deadline: Option<Instant>,
        cancel: &CancelToken,
    ) -> Result<MineOutcome, ApiError> {
        self.mine_scoped(&Scope::default_tenant(dataset), params, deadline, cancel)
    }

    /// [`MiscelaService::mine_cancellable`] in a tenant's namespace.
    pub fn mine_cancellable_in(
        &self,
        tenant: &str,
        dataset: &str,
        params: &MiningParams,
        deadline: Option<Instant>,
        cancel: &CancelToken,
    ) -> Result<MineOutcome, ApiError> {
        self.mine_scoped(&Scope::new(tenant, dataset)?, params, deadline, cancel)
    }

    fn mine_scoped(
        &self,
        scope: &Scope,
        params: &MiningParams,
        deadline: Option<Instant>,
        cancel: &CancelToken,
    ) -> Result<MineOutcome, ApiError> {
        let started = Instant::now();
        params
            .validate()
            .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        // One registry snapshot drives both the cache key and the content
        // that is mined: deriving the revision and the dataset Arc from the
        // same `DatasetEntry` means a concurrent append can never make this
        // request cache one revision's CAPs under another revision's key
        // (its bumped entry simply is not this snapshot). Datasets whose
        // series are not resident (a reloaded store) have no entry but
        // still resolve a revision through their store record, so their
        // persisted results can be served from the cache without a
        // re-upload.
        let entry = self.entry(scope).ok();
        let (revision, trimmed) = match &entry {
            Some(e) => (e.revision, e.dataset.trimmed() as u64),
            None => self.stored_version(scope)?,
        };
        let key = CacheKey::for_state(&scope.key, revision, trimmed, params);
        if let Some(caps) = self.store.cache.get(&key) {
            let result = MiningResult {
                caps,
                delayed: Vec::new(),
                report: Default::default(),
            };
            return Ok(MineOutcome {
                result,
                cache_hit: true,
                revision,
                elapsed: started.elapsed(),
            });
        }
        let entry = entry.ok_or_else(|| {
            ApiError::NotFound(format!(
                "dataset {:?} is not resident; re-upload it",
                scope.name
            ))
        })?;
        // A cache miss does real work: hold a cost-weighted admission
        // permit for the rest of the request, shedding (typed, retryable)
        // instead of queueing without bound.
        let cost = AdmissionController::mine_cost(&entry.dataset);
        let _permit = self.admit_scoped(scope, cost, deadline)?;
        // An identical request may have filled the cache while this one
        // waited for admission; serving it now keeps the work bounded.
        if let Some(caps) = self.store.cache.get(&key) {
            let result = MiningResult {
                caps,
                delayed: Vec::new(),
                report: Default::default(),
            };
            return Ok(MineOutcome {
                result,
                cache_hit: true,
                revision,
                elapsed: started.elapsed(),
            });
        }
        let miner = Miner::new(params.clone()).map_err(|e| ApiError::BadRequest(e.to_string()))?;
        // The full-result cache missed, but the per-series extraction cache
        // still lets unchanged series skip steps (1)+(2) — the common case
        // when only search-side parameters (ψ, η, μ) were tweaked — and
        // appended series resume from their cached prefix states instead of
        // re-extracting from scratch.
        let extraction = self.extraction_for(scope);
        let token = match deadline {
            Some(d) => cancel.with_deadline(d),
            None => cancel.clone(),
        };
        let result = miner
            .mine_cancellable(&entry.dataset, Some(&*extraction), &token)
            .map_err(|e| match e {
                MiningError::Cancelled => {
                    ApiError::DeadlineExceeded(format!("mine of {:?} was cancelled", scope.name))
                }
                MiningError::DeadlineExceeded => ApiError::DeadlineExceeded(format!(
                    "mine of {:?} passed its deadline before completing",
                    scope.name
                )),
                other => ApiError::Internal(other.to_string()),
            })?;
        self.store.cache.put(&key, &result.caps);
        Ok(MineOutcome {
            result,
            cache_hit: false,
            revision: entry.revision,
            elapsed: started.elapsed(),
        })
    }

    /// Serves a batch parameter sweep: the whole ψ/η/μ grid as **one**
    /// scheduled job ([`Miner::mine_sweep`]) instead of one request per
    /// point.
    ///
    /// The serving path mirrors [`MiscelaService::mine_cancellable`], batch
    /// style: a keyed retry replays the original response body; duplicate
    /// grid points are deduplicated server-side; each distinct point is
    /// probed against the revision-aware result cache; and only the misses
    /// are mined — under a **single** admission permit charged at the
    /// per-mine cost scaled by the number of points actually mined (an
    /// all-hit sweep is admission-free, like a solo cache hit). Freshly
    /// mined points are written back to the result cache individually, so
    /// a later solo mine of any grid point is a cache hit.
    ///
    /// The caller is responsible for serializing the fresh outcome and
    /// handing the body to [`MiscelaService::remember_sweep`] so retries
    /// can replay it.
    pub fn mine_sweep(
        &self,
        dataset: &str,
        points: &[MiningParams],
        deadline: Option<Instant>,
        cancel: &CancelToken,
        key: Option<&str>,
    ) -> Result<SweepServed, ApiError> {
        self.mine_sweep_scoped(
            &Scope::default_tenant(dataset),
            points,
            deadline,
            cancel,
            key,
        )
    }

    /// [`MiscelaService::mine_sweep`] in a tenant's namespace.
    pub fn mine_sweep_in(
        &self,
        tenant: &str,
        dataset: &str,
        points: &[MiningParams],
        deadline: Option<Instant>,
        cancel: &CancelToken,
        key: Option<&str>,
    ) -> Result<SweepServed, ApiError> {
        self.mine_sweep_scoped(&Scope::new(tenant, dataset)?, points, deadline, cancel, key)
    }

    fn mine_sweep_scoped(
        &self,
        scope: &Scope,
        points: &[MiningParams],
        deadline: Option<Instant>,
        cancel: &CancelToken,
        key: Option<&str>,
    ) -> Result<SweepServed, ApiError> {
        let started = Instant::now();
        if let Some(outcome) = self.replay_lookup(key, scope)? {
            return match outcome {
                ReplayOutcome::Sweep { body } => Ok(SweepServed::Replayed(body)),
                _ => Err(Self::key_conflict(key.expect("replay hit requires a key"))),
            };
        }
        if points.is_empty() {
            return Err(ApiError::BadRequest(
                "sweep requires at least one grid point".into(),
            ));
        }
        for p in points {
            p.validate()
                .map_err(|e| ApiError::BadRequest(e.to_string()))?;
        }
        let entry = self.entry(scope).ok();
        let (revision, trimmed) = match &entry {
            Some(e) => (e.revision, e.dataset.trimmed() as u64),
            None => self.stored_version(scope)?,
        };
        // Server-side dedup: repeated grid points cost one cache probe and
        // at most one mine, and always share one result.
        let mut unique: Vec<&MiningParams> = Vec::new();
        let mut point_of: Vec<usize> = Vec::with_capacity(points.len());
        {
            let mut by_sig: HashMap<String, usize> = HashMap::new();
            for p in points {
                let idx = *by_sig.entry(p.signature()).or_insert_with(|| {
                    unique.push(p);
                    unique.len() - 1
                });
                point_of.push(idx);
            }
        }
        let probe = |i: usize| -> Option<MiningResult> {
            let ck = CacheKey::for_state(&scope.key, revision, trimmed, unique[i]);
            self.store.cache.get(&ck).map(|caps| MiningResult {
                caps,
                delayed: Vec::new(),
                report: Default::default(),
            })
        };
        let mut results: Vec<Option<MiningResult>> = (0..unique.len()).map(probe).collect();
        let was_cached: Vec<bool> = results.iter().map(|r| r.is_some()).collect();
        let missing: Vec<usize> = (0..unique.len())
            .filter(|&i| results[i].is_none())
            .collect();
        let mut stats = SweepStats::default();
        if !missing.is_empty() {
            let entry = entry.ok_or_else(|| {
                ApiError::NotFound(format!(
                    "dataset {:?} is not resident; re-upload it",
                    scope.name
                ))
            })?;
            // One admission charge for the whole job, scaled by the grid
            // points that actually need mining.
            let cost =
                AdmissionController::mine_cost(&entry.dataset).saturating_mul(missing.len() as u64);
            let _permit = self.admit_scoped(scope, cost, deadline)?;
            // Identical requests may have filled entries while this one
            // waited for admission.
            let still: Vec<usize> = missing
                .into_iter()
                .filter(|&i| match probe(i) {
                    Some(result) => {
                        results[i] = Some(result);
                        false
                    }
                    None => true,
                })
                .collect();
            if !still.is_empty() {
                let grid: Vec<MiningParams> = still.iter().map(|&i| unique[i].clone()).collect();
                let extraction = self.extraction_for(scope);
                let token = match deadline {
                    Some(d) => cancel.with_deadline(d),
                    None => cancel.clone(),
                };
                let out = Miner::mine_sweep(&entry.dataset, &grid, Some(&*extraction), &token)
                    .map_err(|e| match e {
                        MiningError::Cancelled => ApiError::DeadlineExceeded(format!(
                            "sweep of {:?} was cancelled",
                            scope.name
                        )),
                        MiningError::DeadlineExceeded => ApiError::DeadlineExceeded(format!(
                            "sweep of {:?} passed its deadline before completing",
                            scope.name
                        )),
                        other => ApiError::Internal(other.to_string()),
                    })?;
                stats = out.stats;
                for (&i, result) in still.iter().zip(out.results) {
                    let ck = CacheKey::for_state(&scope.key, revision, trimmed, unique[i]);
                    self.store.cache.put(&ck, &result.caps);
                    results[i] = Some(result);
                }
            }
        }
        // The miner only saw the cache-missing subset of the grid; report
        // the request's true shape (work counters stay as performed).
        stats.requested_points = points.len();
        stats.unique_points = unique.len();
        Ok(SweepServed::Fresh(SweepOutcome {
            cache_hits: point_of.iter().map(|&ui| was_cached[ui]).collect(),
            results: point_of
                .iter()
                .map(|&ui| results[ui].clone().expect("every unique point resolved"))
                .collect(),
            stats,
            revision,
            elapsed: started.elapsed(),
        }))
    }

    /// Caches the serialized response body of a keyed sweep so an
    /// identical retry replays it verbatim ([`ReplayOutcome::Sweep`];
    /// memory-only — excluded from snapshot persistence). No-op without a
    /// key.
    pub fn remember_sweep(&self, key: Option<&str>, dataset: &str, body: String) {
        self.remember(
            key,
            &Scope::default_tenant(dataset),
            ReplayOutcome::Sweep { body },
        );
    }

    /// [`MiscelaService::remember_sweep`] in a tenant's namespace. An
    /// invalid tenant name is a no-op (the serving call already rejected
    /// it).
    pub fn remember_sweep_in(&self, tenant: &str, dataset: &str, key: Option<&str>, body: String) {
        if let Ok(scope) = Scope::new(tenant, dataset) {
            self.remember(key, &scope, ReplayOutcome::Sweep { body });
        }
    }

    // ----- watch ---------------------------------------------------------

    /// Long-polls a dataset's revision: returns immediately when the
    /// current revision differs from `since_revision` (pass 0 — no real
    /// revision — to observe the current state), otherwise parks on the
    /// owning shard's condvar until an append, retention trim, delete or
    /// re-registration bumps it, or `deadline` passes (`changed = false`).
    /// A delete wakes parked watchers with the typed `NotFound` close.
    pub fn watch(
        &self,
        name: &str,
        since_revision: u64,
        deadline: Instant,
    ) -> Result<WatchOutcome, ApiError> {
        self.watch_scoped(&Scope::default_tenant(name), since_revision, deadline)
    }

    /// [`MiscelaService::watch`] in a tenant's namespace.
    pub fn watch_in(
        &self,
        tenant: &str,
        name: &str,
        since_revision: u64,
        deadline: Instant,
    ) -> Result<WatchOutcome, ApiError> {
        self.watch_scoped(&Scope::new(tenant, name)?, since_revision, deadline)
    }

    fn watch_scoped(
        &self,
        scope: &Scope,
        since_revision: u64,
        deadline: Instant,
    ) -> Result<WatchOutcome, ApiError> {
        let shard = self.store.shard(&scope.key);
        // Classic condvar discipline: hold `watch_seq` from predicate check
        // to park, so a bump (which takes `watch_seq` to increment it)
        // cannot slip between the registry read and the wait — the watcher
        // either sees the new revision now or is parked when the notify
        // lands. Comparison is `!=`, not `>`: a delete + re-register resets
        // revisions, and "different from what the watcher saw" is the
        // change signal.
        let mut seq = shard.watch_seq.lock();
        loop {
            let snapshot = shard
                .datasets
                .read()
                .get(&scope.key)
                .map(|e| (e.revision, e.dataset.timestamp_count(), e.dataset.trimmed()));
            let Some((revision, timestamps, trimmed_total)) = snapshot else {
                // The dataset is gone (or never existed): the typed close a
                // deleted dataset's watchers are woken into.
                return Err(ApiError::NotFound(format!(
                    "dataset {:?} is not registered (watch closed)",
                    scope.name
                )));
            };
            if revision != since_revision {
                return Ok(WatchOutcome {
                    revision,
                    changed: true,
                    timestamps,
                    trimmed_total,
                    deadline_expired: false,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(WatchOutcome {
                    revision,
                    changed: false,
                    timestamps,
                    trimmed_total,
                    deadline_expired: true,
                });
            }
            let (guard, _timed_out) = shard.watch_cv.wait_timeout(seq, deadline - now);
            seq = guard;
        }
    }

    /// Dataset statistics for a registered dataset.
    pub fn dataset_stats(&self, name: &str) -> Result<DatasetStats, ApiError> {
        Ok(self.dataset(name)?.stats())
    }

    /// [`MiscelaService::dataset_stats`] in a tenant's namespace.
    pub fn dataset_stats_in(&self, tenant: &str, name: &str) -> Result<DatasetStats, ApiError> {
        Ok(self.dataset_in(tenant, name)?.stats())
    }
}

impl Default for MiscelaService {
    fn default() -> Self {
        Self::new()
    }
}

/// The registry document for one dataset revision. Reads only O(1) dataset
/// accessors — no per-value scans — so writing it on the append path keeps
/// the service append O(tail). `name` stays the tenant-local dataset name;
/// `tenant` and the scoped `key` make the record addressable per namespace.
fn dataset_record(scope: &Scope, ds: &Dataset, revision: u64) -> Json {
    let mut doc = Json::object();
    doc.set("name", Json::from(ds.name()));
    doc.set("tenant", Json::from(scope.tenant.as_str()));
    doc.set("key", Json::from(scope.key.as_str()));
    doc.set("revision", Json::from(revision as i64));
    doc.set("trimmed", Json::from(ds.trimmed()));
    doc.set("sensors", Json::from(ds.sensor_count()));
    doc.set("records", Json::from(ds.record_count()));
    doc.set("timestamps", Json::from(ds.timestamp_count()));
    doc.set(
        "attributes",
        Json::Array(ds.attributes().names().map(Json::from).collect()),
    );
    doc
}
#[cfg(test)]
mod tests {
    use super::*;
    use miscela_csv::DatasetWriter;
    use miscela_datagen::SantanderGenerator;

    fn small_dataset() -> Dataset {
        SantanderGenerator::small().with_scale(0.02).generate()
    }

    fn quick_params() -> MiningParams {
        MiningParams::new()
            .with_epsilon(0.4)
            .with_eta_km(0.5)
            .with_psi(20)
            .with_mu(3)
            .with_segmentation(false)
    }

    #[test]
    fn register_list_delete() {
        let svc = MiscelaService::new();
        assert!(svc.list_datasets().is_empty());
        let summary = svc.register_dataset(small_dataset());
        assert_eq!(summary.name, "santander");
        assert!(summary.sensors > 0);
        let listed = svc.list_datasets();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0], summary);
        assert!(svc.dataset("santander").is_ok());
        assert!(svc.dataset_stats("santander").is_ok());
        svc.delete_dataset("santander").unwrap();
        assert!(svc.dataset("santander").is_err());
        assert!(svc.delete_dataset("santander").is_err());
    }

    #[test]
    fn mine_uses_cache_on_repeat_requests() {
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        let params = quick_params();
        let first = svc.mine("santander", &params).unwrap();
        assert!(!first.cache_hit);
        let second = svc.mine("santander", &params).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.result.caps, first.result.caps);
        // A different parameter setting misses the cache.
        let third = svc.mine("santander", &params.clone().with_psi(21)).unwrap();
        assert!(!third.cache_hit);
        // Unknown dataset and invalid parameters are rejected.
        assert!(svc.mine("nope", &params).is_err());
        assert!(svc
            .mine("santander", &MiningParams::new().with_psi(0))
            .is_err());
    }

    #[test]
    fn extraction_cache_skips_front_end_on_parameter_tweaks() {
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        let params = quick_params();
        let first = svc.mine("santander", &params).unwrap();
        assert_eq!(first.result.report.extraction_cache_hits, 0);
        let sensors = svc.dataset("santander").unwrap().sensor_count();
        let stats = svc.extraction_cache_stats();
        // Two entries per series: the content key, plus the salted
        // origin-anchored alias that lets trimmed descendants recover the
        // pre-trim state.
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (0, sensors, 2 * sensors)
        );
        // A ψ tweak misses the result cache but hits the extraction cache
        // for every series — steps (1)+(2) are skipped entirely.
        let tweaked = svc.mine("santander", &params.clone().with_psi(25)).unwrap();
        assert!(!tweaked.cache_hit);
        assert_eq!(tweaked.result.report.extraction_cache_hits, sensors);
        // The cached front-end must not change the mined CAPs.
        let direct = Miner::new(params.clone().with_psi(25))
            .unwrap()
            .mine(&svc.dataset("santander").unwrap())
            .unwrap();
        assert_eq!(tweaked.result.caps, direct.caps);
        // An ε change re-extracts (different extraction key).
        let new_eps = svc
            .mine("santander", &params.clone().with_epsilon(0.7))
            .unwrap();
        assert_eq!(new_eps.result.report.extraction_cache_hits, 0);
    }

    #[test]
    fn reregistering_invalidates_cache() {
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        let params = quick_params();
        let _ = svc.mine("santander", &params).unwrap();
        assert!(svc.mine("santander", &params).unwrap().cache_hit);
        // New upload under the same name: cached results must not survive.
        svc.register_dataset(small_dataset());
        assert!(!svc.mine("santander", &params).unwrap().cache_hit);
    }

    #[test]
    fn chunked_upload_round_trip() {
        let generated = small_dataset();
        let writer = DatasetWriter::new();
        let data = writer.data_csv(&generated);
        let locations = writer.location_csv(&generated);
        let attributes = writer.attribute_csv(&generated);

        let svc = MiscelaService::new();
        svc.begin_upload("uploaded", &locations, &attributes)
            .unwrap();
        let chunks = miscela_csv::split_into_chunks(&data, 1_000);
        assert!(chunks.len() > 1);
        for (i, chunk) in chunks.iter().enumerate() {
            let missing = svc.upload_chunk("uploaded", chunk).unwrap();
            assert_eq!(missing, chunks.len() - i - 1);
        }
        let (summary, _elapsed) = svc.finish_upload("uploaded").unwrap();
        assert_eq!(summary.sensors, generated.sensor_count());
        let uploaded = svc.dataset("uploaded").unwrap();
        assert_eq!(uploaded.timestamp_count(), generated.timestamp_count());
        assert_eq!(uploaded.present_count(), generated.present_count());
    }

    #[test]
    fn upload_error_paths() {
        let svc = MiscelaService::new();
        // Chunk for an unknown upload.
        let chunk = miscela_csv::split_into_chunks("id,attribute,time,data\n", 10)
            .into_iter()
            .next();
        assert!(chunk.is_none() || svc.upload_chunk("ghost", &chunk.unwrap()).is_err());
        // Malformed location.csv fails at begin_upload.
        assert!(svc
            .begin_upload("bad", "not,a,valid", "temperature\n")
            .is_err());
        // Finishing an upload that never started.
        assert!(svc.finish_upload("ghost").is_err());
        // Incomplete upload cannot be finished.
        let generated = small_dataset();
        let writer = DatasetWriter::new();
        svc.begin_upload(
            "partial",
            &writer.location_csv(&generated),
            &writer.attribute_csv(&generated),
        )
        .unwrap();
        let chunks = miscela_csv::split_into_chunks(&writer.data_csv(&generated), 2_000);
        svc.upload_chunk("partial", &chunks[0]).unwrap();
        assert!(svc.finish_upload("partial").is_err());
    }

    #[test]
    fn append_session_extends_dataset_and_bumps_revision() {
        let full = small_dataset();
        let writer = DatasetWriter::new();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 24).unwrap();
        let start = full.grid().start();
        let end = full.grid().range().end;
        let prefix = full.slice_time(start, split_t).unwrap();
        let tail = full.slice_time(split_t, end).unwrap();

        // Register the prefix through the real upload path, then stream the
        // tail through the append-chunk protocol.
        let svc = MiscelaService::new();
        svc.upload_documents(
            "santander",
            &writer.data_csv(&prefix),
            &writer.location_csv(&prefix),
            &writer.attribute_csv(&prefix),
            5_000,
        )
        .unwrap();
        assert_eq!(svc.dataset_revision("santander").unwrap(), 1);
        let params = quick_params();
        let before = svc.mine("santander", &params).unwrap();
        assert_eq!(before.revision, 1);
        assert!(svc.mine("santander", &params).unwrap().cache_hit);

        svc.begin_append("santander").unwrap();
        let chunks = miscela_csv::split_into_chunks(&writer.data_csv(&tail), 100);
        assert!(chunks.len() > 1);
        for (i, chunk) in chunks.iter().enumerate() {
            let missing = svc.append_chunk("santander", chunk).unwrap();
            assert_eq!(missing, chunks.len() - i - 1);
        }
        let (summary, _elapsed) = svc.finish_append("santander").unwrap();
        assert_eq!(summary.new_timestamps, 24);
        assert_eq!(summary.timestamps, n);
        assert_eq!(summary.revision, 2);
        assert_eq!(svc.dataset_revision("santander").unwrap(), 2);

        // The revision bump makes the pre-append cached result unreachable,
        // and the re-mine resumes extraction from cached prefix states.
        let after = svc.mine("santander", &params).unwrap();
        assert!(!after.cache_hit);
        assert_eq!(after.revision, 2);
        let report = &after.result.report;
        assert_eq!(
            report.extraction_cache_hits + report.extraction_prefix_hits,
            svc.dataset("santander").unwrap().sensor_count()
        );
        assert!(report.extraction_prefix_hits > 0);
        assert!(svc.extraction_cache_stats().prefix_hits > 0);
        // Equivalence: identical CAPs to a cold mine of the full upload.
        let cold = MiscelaService::new();
        cold.upload_documents(
            "santander",
            &writer.data_csv(&full),
            &writer.location_csv(&full),
            &writer.attribute_csv(&full),
            5_000,
        )
        .unwrap();
        assert_eq!(
            after.result.caps,
            cold.mine("santander", &params).unwrap().result.caps
        );
        // The appended revision is itself cached now.
        assert!(svc.mine("santander", &params).unwrap().cache_hit);
    }

    #[test]
    fn append_error_paths() {
        let svc = MiscelaService::new();
        // Appending to an unregistered dataset fails at begin.
        assert!(svc.begin_append("ghost").is_err());
        svc.register_dataset(small_dataset());
        // Chunk/finish without a session in progress.
        let chunk = miscela_csv::split_into_chunks("id,attribute,time,data\n", 10).pop();
        assert!(chunk.is_none() || svc.append_chunk("santander", &chunk.unwrap()).is_err());
        assert!(svc.finish_append("santander").is_err());
        // Rows inside the existing grid are rejected at finish and leave
        // the dataset untouched.
        let writer = DatasetWriter::new();
        let ds = svc.dataset("santander").unwrap();
        let n = ds.timestamp_count();
        let stale_csv = writer.data_csv(&ds);
        drop(ds);
        assert!(svc
            .append_documents("santander", &stale_csv, 10_000)
            .is_err());
        assert_eq!(svc.dataset("santander").unwrap().timestamp_count(), n);
        assert_eq!(svc.dataset_revision("santander").unwrap(), 1);
    }

    #[test]
    fn finish_append_shares_prefix_blocks_with_the_previous_revision() {
        // The deep-clone-per-append regression test: the dataset swapped in
        // by finish_append must share every pre-existing sealed series
        // block with the previous revision by pointer (`Arc::ptr_eq`
        // through `shares_blocks_with`) — appends extend, they never copy
        // the stable prefix.
        let full = SantanderGenerator::small().with_scale(0.04).generate();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 8).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();

        let svc = MiscelaService::new();
        svc.upload_documents(
            "santander",
            &writer.data_csv(&prefix),
            &writer.location_csv(&prefix),
            &writer.attribute_csv(&prefix),
            10_000,
        )
        .unwrap();
        let before = svc.dataset("santander").unwrap();
        assert!(
            before.iter().next().unwrap().series.block_count() > 0,
            "fixture must be long enough to have sealed blocks"
        );
        let summary = svc
            .append_documents("santander", &writer.data_csv(&tail), 10_000)
            .unwrap();
        assert_eq!(summary.new_timestamps, 8);
        assert_eq!(summary.trimmed_timestamps, 0);
        let after = svc.dataset("santander").unwrap();
        for idx in before.indices() {
            let old = before.series(idx);
            let new = after.series(idx);
            assert_eq!(
                new.shares_blocks_with(old),
                old.block_count(),
                "append deep-copied the prefix of sensor {idx:?}"
            );
        }
    }

    #[test]
    fn retention_policy_trims_bumps_revision_and_stays_equivalent() {
        use miscela_model::{RetentionPolicy, SERIES_BLOCK_LEN};

        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        let params = quick_params();
        let before = svc.mine("santander", &params).unwrap();
        assert_eq!(before.revision, 1);

        // A policy that trims nothing yet does not bump the revision.
        let n = svc.dataset("santander").unwrap().timestamp_count();
        assert!(n > SERIES_BLOCK_LEN, "fixture must span multiple blocks");
        let noop = svc
            .set_retention("santander", RetentionPolicy::keep_last(n))
            .unwrap();
        assert_eq!(noop.trimmed_timestamps, 0);
        assert_eq!(noop.revision, 1);
        assert!(svc.mine("santander", &params).unwrap().cache_hit);

        // A tight window trims whole blocks, bumps the revision, and makes
        // the pre-trim cached result unreachable.
        let tight = svc
            .set_retention("santander", RetentionPolicy::keep_last(16))
            .unwrap();
        assert_eq!(tight.trimmed_timestamps, SERIES_BLOCK_LEN);
        assert_eq!(tight.trimmed_total, SERIES_BLOCK_LEN);
        assert_eq!(tight.timestamps, n - SERIES_BLOCK_LEN);
        assert_eq!(tight.revision, 2);
        assert_eq!(
            svc.retention("santander").unwrap(),
            RetentionPolicy::keep_last(16)
        );
        let after = svc.mine("santander", &params).unwrap();
        assert!(!after.cache_hit);
        assert_eq!(after.revision, 2);
        // Equivalence: the trimmed window mines identically to a cold
        // re-chunked copy of the same content.
        let ds = svc.dataset("santander").unwrap();
        let twin = ds
            .slice_time(ds.grid().start(), ds.grid().range().end)
            .unwrap();
        let cold = Miner::new(params.clone()).unwrap().mine(&twin).unwrap();
        assert_eq!(after.result.caps, cold.caps);
        // The stale revision was garbage-collected from the result cache.
        assert!(svc.cache_stats().evicted > 0);
    }

    #[test]
    fn append_sessions_apply_retention_and_stay_equivalent() {
        use miscela_model::{RetentionPolicy, SERIES_BLOCK_LEN};

        // Stream a long waveform through a retained window over the *real*
        // upload/retention/append-session routes: after every append (with
        // its policy-driven trims), mining must equal a cold mine of the
        // retained window, and dead revisions must be collected instead of
        // accumulating.
        let source = SantanderGenerator::small().with_scale(0.12).generate();
        let total = source.timestamp_count();
        let window_end = SERIES_BLOCK_LEN + 40;
        let rounds = 8usize;
        let batch = 32usize;
        assert!(
            total > window_end + rounds * batch,
            "source too short: {total}"
        );
        let writer = DatasetWriter::new();
        let initial = source
            .slice_time(source.grid().start(), source.grid().at(window_end).unwrap())
            .unwrap();

        let svc = MiscelaService::new();
        svc.upload_documents(
            "stream",
            &writer.data_csv(&initial),
            &writer.location_csv(&initial),
            &writer.attribute_csv(&initial),
            10_000,
        )
        .unwrap();
        svc.set_retention("stream", RetentionPolicy::keep_last(SERIES_BLOCK_LEN))
            .unwrap();
        let params = quick_params();
        svc.mine("stream", &params).unwrap();

        let mut appended_through = window_end;
        let mut mirror_len = window_end;
        let mut total_trimmed = 0usize;
        for round in 0..rounds {
            let tail = source
                .slice_time(
                    source.grid().at(appended_through).unwrap(),
                    source.grid().at(appended_through + batch).unwrap(),
                )
                .unwrap();
            appended_through += batch;
            let summary = svc
                .append_documents("stream", &writer.data_csv(&tail), 10_000)
                .unwrap();
            assert_eq!(summary.new_timestamps, batch);
            // Mirror the policy: trims are block-granular over the excess.
            mirror_len += batch;
            let expired = mirror_len - SERIES_BLOCK_LEN;
            let expect_trim = expired - expired % SERIES_BLOCK_LEN;
            assert_eq!(summary.trimmed_timestamps, expect_trim, "round {round}");
            mirror_len -= expect_trim;
            total_trimmed += expect_trim;
            assert_eq!(summary.timestamps, mirror_len);
            let warm = svc.mine("stream", &params).unwrap();
            assert_eq!(warm.revision, summary.revision);
            let ds = svc.dataset("stream").unwrap();
            let twin = ds
                .slice_time(ds.grid().start(), ds.grid().range().end)
                .unwrap();
            let cold = Miner::new(params.clone()).unwrap().mine(&twin).unwrap();
            assert_eq!(
                warm.result.caps, cold.caps,
                "round {round} diverged from the cold window"
            );
            // The in-memory window stays bounded by the policy plus one
            // partial block.
            assert!(ds.timestamp_count() < 2 * SERIES_BLOCK_LEN + batch);
        }
        // The stream actually slid (at least one block-granular trim ran).
        assert!(total_trimmed >= SERIES_BLOCK_LEN);
        assert_eq!(svc.dataset("stream").unwrap().trimmed(), total_trimmed);
        // Dead revisions were garbage-collected from the result cache: only
        // the live revision's entry remains stored.
        assert_eq!(svc.store.cache.stored_results(), 1);
        assert!(svc.cache_stats().evicted > 0);
    }

    #[test]
    fn busy_feeds_do_not_evict_quiet_datasets_extraction_states() {
        use miscela_datagen::{ChinaGenerator, ChinaProfile};

        // Extraction caches are per dataset: revision churn on one feed
        // must never garbage-collect the still-valid extraction states of
        // a quiet dataset.
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset()); // busy feed "santander"
        let quiet = ChinaGenerator::small(ChinaProfile::China6)
            .with_scale(0.006)
            .generate();
        let quiet_sensors = quiet.sensor_count();
        svc.register_dataset(quiet); // quiet dataset "china6"
        let params = quick_params();
        svc.mine("china6", &params).unwrap();

        // Churn the busy feed far past DEFAULT_KEEP_GENERATIONS.
        for _ in 0..(2 * miscela_cache::DEFAULT_KEEP_GENERATIONS + 2) {
            svc.register_dataset(small_dataset());
        }

        // A psi tweak forces the extraction path for the quiet dataset:
        // every one of its series must still hit its cached state.
        let outcome = svc.mine("china6", &params.clone().with_psi(21)).unwrap();
        assert_eq!(
            outcome.result.report.extraction_cache_hits, quiet_sensors,
            "churn on the busy feed evicted the quiet dataset's states"
        );
    }

    #[test]
    fn retention_can_trim_to_a_tail_only_window() {
        use miscela_model::{RetentionPolicy, SERIES_BLOCK_LEN};

        // Edge fixture: a window tighter than one block trims *every*
        // sealed block, leaving only the mutable tail — the dataset must
        // survive (retention never empties the grid) and keep mining.
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        let n = svc.dataset("santander").unwrap().timestamp_count();
        let summary = svc
            .set_retention("santander", RetentionPolicy::keep_last(1))
            .unwrap();
        let ds = svc.dataset("santander").unwrap();
        assert_eq!(ds.iter().next().unwrap().series.block_count(), 0);
        assert_eq!(ds.timestamp_count(), n - summary.trimmed_timestamps);
        assert_eq!(ds.timestamp_count(), n % SERIES_BLOCK_LEN);
        assert!(ds.timestamp_count() > 0);
        // The tail-only window still mines (equivalently to its cold twin).
        let params = quick_params();
        let warm = svc.mine("santander", &params).unwrap();
        let twin = ds
            .slice_time(ds.grid().start(), ds.grid().range().end)
            .unwrap();
        let cold = Miner::new(params.clone()).unwrap().mine(&twin).unwrap();
        assert_eq!(warm.result.caps, cold.caps);
    }

    #[test]
    fn upload_documents_convenience() {
        let generated = small_dataset();
        let writer = DatasetWriter::new();
        let svc = MiscelaService::new();
        let summary = svc
            .upload_documents(
                "conv",
                &writer.data_csv(&generated),
                &writer.location_csv(&generated),
                &writer.attribute_csv(&generated),
                miscela_csv::DEFAULT_CHUNK_LINES,
            )
            .unwrap();
        assert_eq!(summary.sensors, generated.sensor_count());
        assert_eq!(svc.list_datasets().len(), 1);
    }

    #[test]
    fn finish_append_without_a_session_is_a_typed_not_found() {
        // Regression: finishing an append that was never begun must be a
        // typed NotFound, never a panic — including after the session was
        // cleared out from under the client by a delete or re-register.
        let svc = MiscelaService::new();
        let err = svc.finish_append("ghost").unwrap_err();
        assert!(matches!(err, ApiError::NotFound(_)), "{err:?}");
        svc.register_dataset(small_dataset());
        let err = svc.finish_append("santander").unwrap_err();
        assert!(matches!(err, ApiError::NotFound(_)), "{err:?}");
        // delete_dataset clears the in-flight session.
        svc.begin_append("santander").unwrap();
        svc.delete_dataset("santander").unwrap();
        svc.register_dataset(small_dataset());
        let err = svc.finish_append("santander").unwrap_err();
        assert!(matches!(err, ApiError::NotFound(_)), "{err:?}");
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("miscela-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_service_replays_committed_appends_after_restart() {
        let full = small_dataset();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 12).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();
        let tail_csv = writer.data_csv(&tail);
        let params = quick_params();

        let dir = durable_dir("replay");
        let before_caps;
        {
            let svc = MiscelaService::with_durability(&dir).unwrap();
            svc.upload_documents(
                "santander",
                &writer.data_csv(&prefix),
                &writer.location_csv(&prefix),
                &writer.attribute_csv(&prefix),
                10_000,
            )
            .unwrap();
            let summary = svc.append_documents("santander", &tail_csv, 100).unwrap();
            assert_eq!(summary.revision, 2);
            before_caps = svc.mine("santander", &params).unwrap().result.caps;
            // Drop without any shutdown hook: durability must not rely on one.
        }
        let svc = MiscelaService::with_durability(&dir).unwrap();
        assert_eq!(svc.dataset_revision("santander").unwrap(), 2);
        assert_eq!(svc.dataset("santander").unwrap().timestamp_count(), n);
        // The 12-point tail sealed no new block, so the session survived in
        // the WAL (not a snapshot) and was replayed record by record.
        let stats = svc.durability_stats("santander").unwrap();
        assert!(stats.replayed_records >= 3, "{stats:?}");
        assert_eq!(stats.snapshot_generation, 1);
        assert_eq!(stats.torn_bytes, 0);
        // Byte-identical mining outcome on the recovered dataset.
        let after = svc.mine("santander", &params).unwrap();
        assert!(!after.cache_hit);
        assert_eq!(after.revision, 2);
        assert_eq!(after.result.caps, before_caps);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_service_restores_uncommitted_sessions_across_restart() {
        use miscela_model::RetentionPolicy;

        let full = small_dataset();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 12).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();
        let chunks = miscela_csv::split_into_chunks(&writer.data_csv(&tail), 50);
        assert!(chunks.len() >= 2, "fixture must span several chunks");
        let params = quick_params();

        let dir = durable_dir("inflight");
        {
            let svc = MiscelaService::with_durability(&dir).unwrap();
            svc.upload_documents(
                "santander",
                &writer.data_csv(&prefix),
                &writer.location_csv(&prefix),
                &writer.attribute_csv(&prefix),
                10_000,
            )
            .unwrap();
            svc.begin_append("santander").unwrap();
            let (first, rest) = chunks.split_at(chunks.len() / 2);
            for chunk in first {
                svc.append_chunk("santander", chunk).unwrap();
            }
            // A mid-session retention snapshot resets the WAL; the acked
            // chunks must be re-logged into it (relog_inflight) or the
            // session would be silently lost below.
            svc.set_retention("santander", RetentionPolicy::keep_last(n))
                .unwrap();
            for chunk in rest {
                svc.append_chunk("santander", chunk).unwrap();
            }
            // Crash before finish_append.
        }
        let svc = MiscelaService::with_durability(&dir).unwrap();
        assert_eq!(svc.dataset_revision("santander").unwrap(), 1);
        let (summary, _elapsed) = svc.finish_append("santander").unwrap();
        assert_eq!(summary.new_timestamps, 12);
        assert_eq!(summary.timestamps, n);
        assert_eq!(summary.revision, 2);
        // The restored session produced the same dataset (and CAPs) as an
        // uninterrupted twin driving the same appends.
        let twin = MiscelaService::new();
        twin.upload_documents(
            "santander",
            &writer.data_csv(&prefix),
            &writer.location_csv(&prefix),
            &writer.attribute_csv(&prefix),
            10_000,
        )
        .unwrap();
        twin.append_documents("santander", &writer.data_csv(&tail), 50)
            .unwrap();
        assert_eq!(
            svc.mine("santander", &params).unwrap().result.caps,
            twin.mine("santander", &params).unwrap().result.caps
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn begin_append_while_open_is_a_typed_conflict() {
        let full = small_dataset();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 12).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();

        let svc = MiscelaService::new();
        svc.upload_documents(
            "santander",
            &writer.data_csv(&prefix),
            &writer.location_csv(&prefix),
            &writer.attribute_csv(&prefix),
            10_000,
        )
        .unwrap();
        svc.begin_append("santander").unwrap();
        let chunks = miscela_csv::split_into_chunks(&writer.data_csv(&tail), 50);
        svc.append_chunk("santander", &chunks[0]).unwrap();
        // A second begin must not silently replace the open session (which
        // would orphan its acknowledged chunks).
        let err = svc.begin_append("santander").unwrap_err();
        assert!(matches!(err, ApiError::Conflict(_)), "{err:?}");
        assert!(!err.is_retryable());
        assert_eq!(err.status().as_u16(), 409);
        // The open session survived the rejected begin and finishes with
        // every chunk it acknowledged.
        for chunk in &chunks[1..] {
            svc.append_chunk("santander", chunk).unwrap();
        }
        let (summary, _elapsed) = svc.finish_append("santander").unwrap();
        assert_eq!(summary.new_timestamps, 12);
        // After the finish, a new session opens cleanly.
        svc.begin_append("santander").unwrap();
    }

    #[test]
    fn expired_deadline_is_typed_and_cache_hits_still_serve() {
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        let params = quick_params();
        // A cold mine whose deadline already passed is refused before any
        // work happens (typed, retryable).
        let expired = Some(Instant::now());
        let err = svc
            .mine_with_deadline("santander", &params, expired)
            .unwrap_err();
        assert!(matches!(err, ApiError::DeadlineExceeded(_)), "{err:?}");
        assert!(err.is_retryable());
        // Nothing was cached by the refused request.
        let warm = svc.mine("santander", &params).unwrap();
        assert!(!warm.cache_hit);
        // A cache hit costs nothing, so it is served even past a deadline.
        let hit = svc
            .mine_with_deadline("santander", &params, Some(Instant::now()))
            .unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.result.caps, warm.result.caps);
    }

    #[test]
    fn cancelled_mine_leaves_cache_and_revisions_consistent() {
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        let params = quick_params();
        let revision = svc.dataset_revision("santander").unwrap();

        let cancelled = CancelToken::never();
        cancelled.cancel();
        let err = svc
            .mine_cancellable("santander", &params, None, &cancelled)
            .unwrap_err();
        assert!(matches!(err, ApiError::DeadlineExceeded(_)), "{err:?}");

        // The aborted mine wrote nothing: no revision moved, no result was
        // cached, and an identical retry produces the same CAPs as a cold
        // twin service that never saw a cancellation.
        assert_eq!(svc.dataset_revision("santander").unwrap(), revision);
        let retry = svc.mine("santander", &params).unwrap();
        assert!(!retry.cache_hit);
        let twin = MiscelaService::new();
        twin.register_dataset(small_dataset());
        assert_eq!(
            retry.result.caps,
            twin.mine("santander", &params).unwrap().result.caps
        );
    }

    #[test]
    fn durable_paths_stay_typed_after_delete_and_reregister() {
        // Regression for the converted `expect("state just ensured")` site:
        // durable state is dropped by delete_dataset and lazily re-created
        // by the next durable write; every step must answer with typed
        // results, never a panic.
        let full = small_dataset();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 12).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();
        let upload = |svc: &MiscelaService| {
            svc.upload_documents(
                "santander",
                &writer.data_csv(&prefix),
                &writer.location_csv(&prefix),
                &writer.attribute_csv(&prefix),
                10_000,
            )
            .unwrap();
        };

        let dir = durable_dir("relazy");
        let svc = MiscelaService::with_durability(&dir).unwrap();
        upload(&svc);
        svc.begin_append("santander").unwrap();
        svc.delete_dataset("santander").unwrap();
        // The delete cleared the session and the durable state.
        let err = svc.begin_append("santander").unwrap_err();
        assert!(matches!(err, ApiError::NotFound(_)), "{err:?}");
        // Re-registering re-creates durable state on demand; append flows
        // work again end to end.
        upload(&svc);
        let summary = svc
            .append_documents("santander", &writer.data_csv(&tail), 100)
            .unwrap();
        assert_eq!(summary.revision, 2);
        assert_eq!(summary.new_timestamps, 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_durability_serves_reads_and_recovers_without_losing_rows() {
        use miscela_store::wal::{FailPoint, FailingOpener};

        let full = small_dataset();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 12).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();
        let chunks = miscela_csv::split_into_chunks(&writer.data_csv(&tail), 30);
        assert!(chunks.len() >= 3, "fixture must span several chunks");
        let params = quick_params();

        let dir = durable_dir("degraded");
        let fail = FailPoint::unlimited();
        let opener = std::sync::Arc::new(FailingOpener::new(fail.clone()));
        let svc = MiscelaService::with_durability_opener(Arc::new(Database::new()), &dir, opener)
            .unwrap();
        svc.upload_documents(
            "santander",
            &writer.data_csv(&prefix),
            &writer.location_csv(&prefix),
            &writer.attribute_csv(&prefix),
            10_000,
        )
        .unwrap();
        svc.begin_append("santander").unwrap();
        svc.append_chunk("santander", &chunks[0]).unwrap();

        // The disk dies between two acknowledged writes.
        fail.exhaust();
        let err = svc.append_chunk("santander", &chunks[1]).unwrap_err();
        assert!(matches!(err, ApiError::Unavailable { .. }), "{err:?}");
        assert!(err.is_retryable());
        assert!(err.retry_after_ms().is_some());
        assert!(svc.degraded_reason("santander").is_some());

        // Read-only degraded mode: mines and reads keep serving...
        assert!(!svc.mine("santander", &params).unwrap().cache_hit);
        assert!(svc.dataset_stats("santander").is_ok());
        // ...while every durable write path answers typed and retryable.
        let err = svc.append_chunk("santander", &chunks[1]).unwrap_err();
        assert!(matches!(err, ApiError::Unavailable { .. }), "{err:?}");
        let err = svc
            .set_retention("santander", miscela_model::RetentionPolicy::keep_last(n))
            .unwrap_err();
        assert!(matches!(err, ApiError::Unavailable { .. }), "{err:?}");
        let err = svc.finish_append("santander").unwrap_err();
        assert!(matches!(err, ApiError::Unavailable { .. }), "{err:?}");
        assert!(svc.degraded_reason("santander").is_some());

        // The disk recovers: the next write probes the path, re-arms
        // durability (re-snapshotting and re-logging the acked chunks) and
        // proceeds. No acknowledged row was lost.
        fail.heal();
        svc.append_chunk("santander", &chunks[1]).unwrap();
        assert!(svc.degraded_reason("santander").is_none());
        for chunk in &chunks[2..] {
            svc.append_chunk("santander", chunk).unwrap();
        }
        let (summary, _elapsed) = svc.finish_append("santander").unwrap();
        assert_eq!(summary.new_timestamps, 12);
        assert_eq!(summary.revision, 2);
        drop(svc);

        // A restart replays the episode's outcome: every acknowledged row
        // is present and the CAPs match an undisturbed twin byte for byte.
        let svc = MiscelaService::with_durability(&dir).unwrap();
        assert_eq!(svc.dataset_revision("santander").unwrap(), 2);
        assert_eq!(svc.dataset("santander").unwrap().timestamp_count(), n);
        let twin = MiscelaService::new();
        twin.register_dataset(small_dataset());
        assert_eq!(
            svc.mine("santander", &params).unwrap().result.caps,
            twin.mine("santander", &params).unwrap().result.caps
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenants_are_isolated() {
        let svc = MiscelaService::new();
        svc.register_dataset_keyed_in("alice", small_dataset(), None)
            .unwrap();
        svc.register_dataset_keyed_in("bob", small_dataset(), None)
            .unwrap();
        svc.register_dataset(small_dataset());
        // Each namespace lists only its own datasets.
        assert_eq!(svc.list_datasets_in("alice").unwrap().len(), 1);
        assert_eq!(svc.list_datasets_in("bob").unwrap().len(), 1);
        assert_eq!(svc.list_datasets().len(), 1);
        // Deleting bob's copy touches neither alice's nor the default one.
        svc.delete_dataset_keyed_in("bob", "santander", None)
            .unwrap();
        assert!(svc.dataset_in("bob", "santander").is_err());
        assert!(svc.dataset_in("alice", "santander").is_ok());
        assert!(svc.dataset("santander").is_ok());
        // The result cache is namespaced too: alice's warm entry does not
        // serve the identical default-tenant dataset.
        let params = quick_params();
        assert!(
            !svc.mine_in("alice", "santander", &params)
                .unwrap()
                .cache_hit
        );
        assert!(
            svc.mine_in("alice", "santander", &params)
                .unwrap()
                .cache_hit
        );
        assert!(!svc.mine("santander", &params).unwrap().cache_hit);
        // Invalid tenant names and scoped dataset names are typed 400s.
        assert!(matches!(
            svc.list_datasets_in("no/pe"),
            Err(ApiError::BadRequest(_))
        ));
        assert!(matches!(
            svc.dataset_in("alice", "a/b"),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn quotas_are_enforced_with_typed_errors() {
        let generated = small_dataset();
        let writer = DatasetWriter::new();
        let svc = MiscelaService::new();
        svc.set_quota(
            "capped",
            TenantQuota {
                max_datasets: Some(1),
                ..TenantQuota::default()
            },
        )
        .unwrap();
        svc.register_dataset_keyed_in("capped", small_dataset(), None)
            .unwrap();
        // Replacing the existing dataset is not a new dataset: allowed.
        svc.register_dataset_keyed_in("capped", small_dataset(), None)
            .unwrap();
        // A second distinct dataset trips the count quota on the upload
        // path (the quota check runs at finish, against assembled content).
        svc.begin_upload_keyed_in(
            "capped",
            "second",
            &writer.location_csv(&generated),
            &writer.attribute_csv(&generated),
            None,
        )
        .unwrap();
        for chunk in miscela_csv::split_into_chunks(&writer.data_csv(&generated), 5_000) {
            svc.upload_chunk_in("capped", "second", &chunk).unwrap();
        }
        let err = svc
            .finish_upload_keyed_in("capped", "second", None)
            .unwrap_err();
        assert!(matches!(err, ApiError::QuotaExceeded(_)), "{err:?}");
        assert_eq!(err.status(), crate::StatusCode::Forbidden);
        // A retained-timestamps budget smaller than the dataset rejects the
        // register outright.
        svc.set_quota(
            "tiny",
            TenantQuota {
                max_retained_timestamps: Some(generated.timestamp_count() - 1),
                ..TenantQuota::default()
            },
        )
        .unwrap();
        let err = svc
            .register_dataset_keyed_in("tiny", small_dataset(), None)
            .unwrap_err();
        assert!(matches!(err, ApiError::QuotaExceeded(_)), "{err:?}");
        // Raising the budget unblocks the same register.
        svc.set_quota("tiny", TenantQuota::default()).unwrap();
        svc.register_dataset_keyed_in("tiny", small_dataset(), None)
            .unwrap();
        // The default tenant is unlimited unless configured, and quota
        // reads round-trip.
        assert_eq!(svc.quota("capped").unwrap().max_datasets, Some(1));
        assert_eq!(svc.quota(DEFAULT_TENANT).unwrap(), TenantQuota::default());
    }

    #[test]
    fn per_tenant_replay_cache_is_isolated() {
        let svc = MiscelaService::new();
        // The same idempotency key in two tenants names two independent
        // operations; each replays only within its own namespace.
        let (_, replayed) = svc
            .register_dataset_keyed_in("a", small_dataset(), Some("k1"))
            .unwrap();
        assert!(!replayed);
        let (_, replayed) = svc
            .register_dataset_keyed_in("b", small_dataset(), Some("k1"))
            .unwrap();
        assert!(!replayed, "tenant b must not see tenant a's replay entry");
        let (_, replayed) = svc
            .register_dataset_keyed_in("a", small_dataset(), Some("k1"))
            .unwrap();
        assert!(replayed);
        // Protocol stats slice per tenant: only tenant a recorded a replay.
        assert_eq!(svc.protocol_stats_in("a").unwrap().key_replays, 1);
        assert_eq!(svc.protocol_stats_in("b").unwrap().key_replays, 0);
        // The service-wide view still sums across tenants.
        assert_eq!(svc.protocol_stats().key_replays, 1);
    }

    #[test]
    fn watch_sees_append_bump_without_polling() {
        let full = small_dataset();
        let writer = DatasetWriter::new();
        let n = full.timestamp_count();
        let split_t = full.grid().at(n - 24).unwrap();
        let start = full.grid().start();
        let end = full.grid().range().end;
        let prefix = full.slice_time(start, split_t).unwrap();
        let tail = full.slice_time(split_t, end).unwrap();
        let svc = MiscelaService::new();
        svc.upload_documents(
            "santander",
            &writer.data_csv(&prefix),
            &writer.location_csv(&prefix),
            &writer.attribute_csv(&prefix),
            5_000,
        )
        .unwrap();
        std::thread::scope(|s| {
            let watcher =
                s.spawn(|| svc.watch("santander", 1, Instant::now() + Duration::from_secs(10)));
            // Give the watcher a moment to park; even if it has not parked
            // yet, it observes the bumped revision on its first predicate
            // check, so this cannot flake either way.
            std::thread::sleep(Duration::from_millis(50));
            let summary = svc
                .append_documents("santander", &writer.data_csv(&tail), 1_000)
                .unwrap();
            assert_eq!(summary.revision, 2);
            let out = watcher.join().unwrap().unwrap();
            assert!(out.changed);
            assert_eq!(out.revision, 2);
            assert!(!out.deadline_expired);
        });
    }

    #[test]
    fn watch_immediate_paths_and_deadline() {
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        // since_revision 0 never matches a real revision: immediate reply
        // carrying the current state.
        let out = svc.watch("santander", 0, Instant::now()).unwrap();
        assert!(out.changed);
        assert_eq!(out.revision, 1);
        assert!(out.timestamps > 0);
        // An up-to-date watcher with an expired deadline reports unchanged.
        let out = svc.watch("santander", 1, Instant::now()).unwrap();
        assert!(!out.changed);
        assert!(out.deadline_expired);
        assert_eq!(out.revision, 1);
        // A short real deadline parks and then times out.
        let before = Instant::now();
        let out = svc
            .watch("santander", 1, before + Duration::from_millis(40))
            .unwrap();
        assert!(!out.changed);
        assert!(out.deadline_expired);
        assert!(before.elapsed() >= Duration::from_millis(40));
        // An unregistered dataset is the typed close.
        assert!(matches!(
            svc.watch("ghost", 0, Instant::now()),
            Err(ApiError::NotFound(_))
        ));
    }

    #[test]
    fn delete_wakes_parked_watchers_with_typed_close() {
        let svc = MiscelaService::new();
        svc.register_dataset(small_dataset());
        std::thread::scope(|s| {
            let watcher =
                s.spawn(|| svc.watch("santander", 1, Instant::now() + Duration::from_secs(10)));
            std::thread::sleep(Duration::from_millis(50));
            svc.delete_dataset("santander").unwrap();
            let err = watcher.join().unwrap().unwrap_err();
            assert!(matches!(err, ApiError::NotFound(_)), "{err:?}");
        });
    }

    #[test]
    fn durable_tenant_namespaces_survive_restart() {
        let dir = durable_dir("tenant-ns");
        let generated = small_dataset();
        let writer = DatasetWriter::new();
        let data = writer.data_csv(&generated);
        let locations = writer.location_csv(&generated);
        let attributes = writer.attribute_csv(&generated);
        {
            let svc = MiscelaService::with_durability(&dir).unwrap();
            svc.upload_documents_in("alice", "santander", &data, &locations, &attributes, 5_000)
                .unwrap();
            svc.upload_documents("santander", &data, &locations, &attributes, 5_000)
                .unwrap();
        }
        // A fresh service over the same directory restores both namespaces
        // — alice's replica under tenants/alice, the default at the root —
        // without cross-listing.
        let svc = MiscelaService::with_durability(&dir).unwrap();
        assert_eq!(svc.list_datasets_in("alice").unwrap().len(), 1);
        assert_eq!(svc.list_datasets().len(), 1);
        assert_eq!(svc.dataset_revision_in("alice", "santander").unwrap(), 1);
        assert_eq!(
            svc.dataset_in("alice", "santander").unwrap().record_count(),
            generated.record_count()
        );
        assert_eq!(
            svc.dataset("santander").unwrap().record_count(),
            generated.record_count()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
