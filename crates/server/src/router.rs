//! Request routing: maps API requests onto [`MiscelaService`] calls and
//! serializes the outcomes as JSON responses.
//!
//! Routes (mirroring the original django URL configuration):
//!
//! | Method | Path | Purpose |
//! |--------|------|---------|
//! | GET    | `/datasets` | list registered datasets |
//! | GET    | `/datasets/{name}` | dataset statistics |
//! | DELETE | `/datasets/{name}` | remove a dataset and its cached results |
//! | POST   | `/datasets/{name}/upload/begin` | start a chunked upload (`location_csv`, `attribute_csv` in the body) |
//! | POST   | `/datasets/{name}/upload/chunk` | submit one `data.csv` chunk (`index`, `total`, `content`) |
//! | POST   | `/datasets/{name}/upload/finish` | assemble and register the dataset |
//! | POST   | `/datasets/{name}/append/begin` | start a chunked append of new rows to an existing dataset |
//! | POST   | `/datasets/{name}/append/chunk` | submit one append `data.csv` chunk (`index`, `total`, `content`, optional `session` + `seq`) |
//! | POST   | `/datasets/{name}/append/finish` | apply the appended rows in place and bump the revision |
//! | GET    | `/datasets/{name}/append` | in-progress append session status (session id, acked-sequence watermark) |
//! | GET    | `/datasets/{name}/retention` | current retention policy and window position |
//! | POST   | `/datasets/{name}/retention` | install a sliding-window retention policy |
//! | POST   | `/datasets/{name}/mine` | run CAP mining with the parameters in the body (revision-aware) |
//! | POST   | `/datasets/{name}/mine/sweep` | batch-mine a whole parameter grid (`points` array of parameter objects in the body; deduplicated server-side; admission-charged once for the job) |
//! | GET    | `/datasets/{name}/durability` | WAL/snapshot statistics (incl. degraded state) for a durable dataset |
//! | GET    | `/datasets/{name}/watch` | long-poll for a revision change (`since_revision`, optional `deadline_ms`) |
//! | GET    | `/admission/stats` | service-wide admission-control counters (admitted / shed / queued) |
//! | GET    | `/protocol/stats` | service-wide exactly-once protocol counters (key replays, duplicate suppression) |
//! | GET    | `/cache/stats` | service-wide result- and extraction-cache hit/miss statistics |
//!
//! # Tenancy
//!
//! Every route above (except the three service-wide stats routes) also
//! exists under a `/tenants/{tenant}` prefix and then operates on that
//! tenant's namespace: `POST /tenants/acme/datasets/d/mine` mines `acme`'s
//! dataset `d`, invisible to every other tenant. A bare path addresses the
//! built-in default tenant, so all pre-tenancy URLs keep working
//! unchanged. Tenant-scoped additions:
//!
//! | Method | Path | Purpose |
//! |--------|------|---------|
//! | GET    | `/tenants/{t}/quota` | the tenant's quota (`null` caps = unlimited) |
//! | POST   | `/tenants/{t}/quota` | set the quota (`max_datasets`, `max_retained_timestamps`, `max_cache_entries`) |
//! | GET    | `/tenants/{t}/admission/stats` | the tenant's slice of the admission counters |
//! | GET    | `/tenants/{t}/protocol/stats` | the tenant's exactly-once protocol counters |
//! | GET    | `/tenants/{t}/cache/stats` | the tenant's dataset count and extraction-cache counters |
//!
//! Quota violations are typed `403` responses; an invalid tenant name
//! (anything outside `[A-Za-z0-9_-]+`) is a `400`.
//!
//! # Retries and exactly-once mutations
//!
//! Every mutating route accepts an optional `idempotency_key` (string body
//! field; also honored as a query parameter on `DELETE`). Retrying a keyed
//! mutation replays the original response — flagged `"replayed": true` —
//! instead of applying twice. Append chunks are additionally protected by
//! per-session sequence numbers: a chunk body carrying `session` (from the
//! begin response) and `seq` (1, 2, 3… per delivery) gets its original ack
//! replayed when duplicated, and a typed `412` carrying `expected_session` /
//! `expected_seq` when it skips ahead or targets a superseded session, so a
//! reconnecting client resumes from the server's watermark.
//!
//! # Deadlines and overload responses
//!
//! `POST .../mine` accepts an optional `deadline_ms` query parameter: the
//! request must complete within that many milliseconds or it fails with
//! `504 deadline_exceeded` (cache hits are still served — they cost
//! nothing). Under load the serving path answers with typed errors rather
//! than queueing without bound:
//!
//! * `429` — admission control shed the request (budget/queue full);
//! * `503` — the dataset is in read-only degraded mode (durable writes
//!   failing); reads and mines keep serving;
//! * `504` — the request's deadline expired first;
//! * `409` — the request conflicts with current state (e.g. an append
//!   session is already open).
//!
//! Retryable responses (`429`/`503`) carry a `retry_after_ms` back-off hint
//! in the body, the JSON analogue of HTTP's `Retry-After` header.

use crate::message::{ApiError, ApiRequest, ApiResponse, Method};
use crate::service::{MiscelaService, SweepServed};
use crate::shard::{TenantQuota, DEFAULT_TENANT};
use miscela_cache::codec::capset_to_json;
use miscela_core::{CancelToken, MiningParams};
use miscela_csv::chunk::Chunk;
use miscela_store::Json;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long `GET .../watch` parks when the request carries no
/// `deadline_ms`: a bounded default long-poll window, so an abandoned
/// watcher never pins a thread forever.
const DEFAULT_WATCH_DEADLINE: Duration = Duration::from_secs(30);

/// The API router.
pub struct Router {
    service: Arc<MiscelaService>,
}

impl Router {
    /// Creates a router over a service.
    pub fn new(service: Arc<MiscelaService>) -> Self {
        Router { service }
    }

    /// The underlying service.
    pub fn service(&self) -> &Arc<MiscelaService> {
        &self.service
    }

    /// Handles one request.
    pub fn handle(&self, request: &ApiRequest) -> ApiResponse {
        match self.dispatch(request) {
            Ok(resp) => resp,
            Err(e) => ApiResponse::from_error(&e),
        }
    }

    fn dispatch(&self, request: &ApiRequest) -> Result<ApiResponse, ApiError> {
        let segments = request.segments();
        // The service-wide stats routes are matched on the raw path first:
        // they aggregate across every tenant and take no tenant prefix.
        match (request.method, segments.as_slice()) {
            (Method::Get, ["admission", "stats"]) => return Ok(self.admission_stats()),
            (Method::Get, ["protocol", "stats"]) => return Ok(self.protocol_stats()),
            (Method::Get, ["cache", "stats"]) => return Ok(self.cache_stats()),
            _ => {}
        }
        // Every other route lives in a tenant namespace: a `/tenants/{t}`
        // prefix selects it, its absence selects the default tenant — so
        // every pre-tenancy URL keeps working unchanged.
        let (tenant, rest) = match segments.as_slice() {
            ["tenants", tenant, rest @ ..] => (*tenant, rest),
            rest => (DEFAULT_TENANT, rest),
        };
        self.dispatch_in(tenant, rest, request)
    }

    fn dispatch_in(
        &self,
        tenant: &str,
        segments: &[&str],
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        match (request.method, segments) {
            (Method::Get, ["datasets"]) => self.list_datasets(tenant),
            (Method::Get, ["datasets", name]) => self.dataset_stats(tenant, name),
            (Method::Delete, ["datasets", name]) => {
                let replayed = self.service.delete_dataset_keyed_in(
                    tenant,
                    name,
                    key_from_request(request),
                )?;
                Ok(ApiResponse::ok(Json::from_pairs([
                    ("deleted", Json::from(*name)),
                    ("replayed", Json::from(replayed)),
                ])))
            }
            (Method::Post, ["datasets", name, "upload", "begin"]) => {
                self.begin_upload(tenant, name, request)
            }
            (Method::Post, ["datasets", name, "upload", "chunk"]) => {
                self.upload_chunk(tenant, name, request)
            }
            (Method::Post, ["datasets", name, "upload", "finish"]) => {
                self.finish_upload(tenant, name, request)
            }
            (Method::Post, ["datasets", name, "append", "begin"]) => {
                let outcome =
                    self.service
                        .begin_append_keyed_in(tenant, name, key_from_request(request))?;
                Ok(ApiResponse::created(Json::from_pairs([
                    ("append", Json::from(*name)),
                    ("session", Json::from(outcome.session as i64)),
                    ("replayed", Json::from(outcome.replayed)),
                ])))
            }
            (Method::Post, ["datasets", name, "append", "chunk"]) => {
                self.append_chunk(tenant, name, request)
            }
            (Method::Post, ["datasets", name, "append", "finish"]) => {
                self.finish_append(tenant, name, request)
            }
            (Method::Get, ["datasets", name, "append"]) => self.append_status(tenant, name),
            (Method::Get, ["datasets", name, "retention"]) => self.get_retention(tenant, name),
            (Method::Post, ["datasets", name, "retention"]) => {
                self.set_retention(tenant, name, request)
            }
            (Method::Get, ["datasets", name, "durability"]) => self.durability(tenant, name),
            (Method::Get, ["datasets", name, "watch"]) => self.watch(tenant, name, request),
            (Method::Post, ["datasets", name, "mine"]) => self.mine(tenant, name, request),
            (Method::Post, ["datasets", name, "mine", "sweep"]) => {
                self.mine_sweep(tenant, name, request)
            }
            (Method::Get, ["quota"]) => self.get_quota(tenant),
            (Method::Post, ["quota"]) => self.set_quota(tenant, request),
            (Method::Get, ["admission", "stats"]) => self.tenant_admission_stats(tenant),
            (Method::Get, ["protocol", "stats"]) => self.tenant_protocol_stats(tenant),
            (Method::Get, ["cache", "stats"]) => self.tenant_cache_stats(tenant),
            _ => Err(ApiError::NotFound(format!(
                "no route for {:?} {}",
                request.method, request.path
            ))),
        }
    }

    fn list_datasets(&self, tenant: &str) -> Result<ApiResponse, ApiError> {
        let datasets: Vec<Json> = self
            .service
            .list_datasets_in(tenant)?
            .into_iter()
            .map(|d| {
                Json::from_pairs([
                    ("name", Json::from(d.name)),
                    ("sensors", Json::from(d.sensors)),
                    ("records", Json::from(d.records)),
                    (
                        "attributes",
                        Json::Array(d.attributes.into_iter().map(Json::from).collect()),
                    ),
                ])
            })
            .collect();
        Ok(ApiResponse::ok(Json::from_pairs([(
            "datasets",
            Json::Array(datasets),
        )])))
    }

    fn dataset_stats(&self, tenant: &str, name: &str) -> Result<ApiResponse, ApiError> {
        let stats = self.service.dataset_stats_in(tenant, name)?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("name", Json::from(stats.name)),
            ("sensors", Json::from(stats.sensors)),
            ("records", Json::from(stats.records)),
            ("timestamps", Json::from(stats.timestamps)),
            ("mean_coverage", Json::from(stats.mean_coverage)),
            (
                "attributes",
                Json::Array(stats.attribute_names.into_iter().map(Json::from).collect()),
            ),
        ])))
    }

    fn begin_upload(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let location = body_str(request, "location_csv")?;
        let attributes = body_str(request, "attribute_csv")?;
        let replayed = self.service.begin_upload_keyed_in(
            tenant,
            name,
            location,
            attributes,
            key_from_request(request),
        )?;
        Ok(ApiResponse::created(Json::from_pairs([
            ("upload", Json::from(name)),
            ("replayed", Json::from(replayed)),
        ])))
    }

    fn upload_chunk(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let chunk = chunk_from_body(request)?;
        let missing = self.service.upload_chunk_in(tenant, name, &chunk)?;
        Ok(chunk_accepted(&chunk, missing))
    }

    fn finish_upload(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let (summary, elapsed, replayed) =
            self.service
                .finish_upload_keyed_in(tenant, name, key_from_request(request))?;
        Ok(ApiResponse::created(Json::from_pairs([
            ("name", Json::from(summary.name)),
            ("sensors", Json::from(summary.sensors)),
            ("records", Json::from(summary.records)),
            ("upload_seconds", Json::from(elapsed.as_secs_f64())),
            ("replayed", Json::from(replayed)),
        ])))
    }

    fn append_chunk(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let chunk = chunk_from_body(request)?;
        // A chunk carrying a sequence number speaks the exactly-once
        // protocol: its session id is required and its ack is replayable.
        if request.body.get("seq").is_some() {
            let session = body_u64(request, "session")?;
            let seq = body_u64(request, "seq")?;
            let ack = self
                .service
                .append_chunk_seq_in(tenant, name, session, seq, &chunk)?;
            return Ok(ApiResponse::ok(Json::from_pairs([
                ("accepted", Json::from(ack.accepted)),
                ("missing_chunks", Json::from(ack.missing)),
                ("acked_seq", Json::from(ack.acked_seq as i64)),
                ("replayed", Json::from(ack.replayed)),
            ])));
        }
        let missing = self.service.append_chunk_in(tenant, name, &chunk)?;
        Ok(chunk_accepted(&chunk, missing))
    }

    fn finish_append(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let (summary, elapsed, replayed) =
            self.service
                .finish_append_keyed_in(tenant, name, key_from_request(request))?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("name", Json::from(summary.name)),
            ("new_timestamps", Json::from(summary.new_timestamps)),
            ("measurements", Json::from(summary.measurements)),
            ("trimmed_timestamps", Json::from(summary.trimmed_timestamps)),
            ("timestamps", Json::from(summary.timestamps)),
            ("revision", Json::from(summary.revision as i64)),
            ("append_seconds", Json::from(elapsed.as_secs_f64())),
            ("replayed", Json::from(replayed)),
        ])))
    }

    fn append_status(&self, tenant: &str, name: &str) -> Result<ApiResponse, ApiError> {
        let status = self.service.append_status_in(tenant, name)?;
        Ok(match status {
            Some(s) => ApiResponse::ok(Json::from_pairs([
                ("name", Json::from(name)),
                ("open", Json::from(true)),
                ("session", Json::from(s.session as i64)),
                ("acked_seq", Json::from(s.acked_seq as i64)),
                ("received", Json::from(s.received)),
                ("missing_chunks", Json::from(s.missing)),
            ])),
            None => ApiResponse::ok(Json::from_pairs([
                ("name", Json::from(name)),
                ("open", Json::from(false)),
            ])),
        })
    }

    fn get_retention(&self, tenant: &str, name: &str) -> Result<ApiResponse, ApiError> {
        let policy = self.service.retention_in(tenant, name)?;
        let ds = self.service.dataset_in(tenant, name)?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("name", Json::from(name)),
            (
                "max_timestamps",
                policy.max_timestamps.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "max_age_seconds",
                policy
                    .max_age
                    .map(|a| Json::from(a.as_secs()))
                    .unwrap_or(Json::Null),
            ),
            ("trimmed_total", Json::from(ds.trimmed())),
            ("timestamps", Json::from(ds.timestamp_count())),
        ])))
    }

    fn set_retention(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let policy = retention_from_json(&request.body)?;
        let (summary, replayed) =
            self.service
                .set_retention_keyed_in(tenant, name, policy, key_from_request(request))?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("name", Json::from(summary.name)),
            ("trimmed_timestamps", Json::from(summary.trimmed_timestamps)),
            ("trimmed_total", Json::from(summary.trimmed_total)),
            ("timestamps", Json::from(summary.timestamps)),
            ("revision", Json::from(summary.revision as i64)),
            ("replayed", Json::from(replayed)),
        ])))
    }

    fn durability(&self, tenant: &str, name: &str) -> Result<ApiResponse, ApiError> {
        let stats = self.service.durability_stats_in(tenant, name)?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("name", Json::from(name)),
            ("wal_records", Json::from(stats.wal_records as i64)),
            ("wal_bytes", Json::from(stats.wal_bytes as i64)),
            ("wal_pending", Json::from(stats.wal_pending as i64)),
            ("wal_syncs", Json::from(stats.wal_syncs as i64)),
            (
                "replayed_records",
                Json::from(stats.replayed_records as i64),
            ),
            ("torn_bytes", Json::from(stats.torn_bytes as i64)),
            (
                "snapshot_generation",
                Json::from(stats.snapshot_generation as i64),
            ),
            ("compactions", Json::from(stats.compactions as i64)),
            (
                "degraded",
                self.service
                    .degraded_reason_in(tenant, name)
                    .map(Json::from)
                    .unwrap_or(Json::Null),
            ),
        ])))
    }

    fn mine(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let params = params_from_json(&request.body)?;
        let deadline = deadline_from_query(request)?;
        let outcome = self.service.mine_cancellable_in(
            tenant,
            name,
            &params,
            deadline,
            &CancelToken::never(),
        )?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("dataset", Json::from(name)),
            ("revision", Json::from(outcome.revision as i64)),
            ("cache_hit", Json::from(outcome.cache_hit)),
            (
                "extraction_cache_hits",
                Json::from(outcome.result.report.extraction_cache_hits),
            ),
            (
                "extraction_prefix_hits",
                Json::from(outcome.result.report.extraction_prefix_hits),
            ),
            ("cap_count", Json::from(outcome.result.caps.len())),
            ("elapsed_seconds", Json::from(outcome.elapsed.as_secs_f64())),
            ("caps", capset_to_json(&outcome.result.caps)),
        ])))
    }

    fn mine_sweep(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let raw = request
            .body
            .get("points")
            .and_then(|p| p.as_array())
            .ok_or_else(|| {
                ApiError::BadRequest("body must carry a `points` array of parameter objects".into())
            })?;
        let points = raw
            .iter()
            .map(params_from_json)
            .collect::<Result<Vec<MiningParams>, ApiError>>()?;
        let deadline = deadline_from_query(request)?;
        let key = key_from_request(request);
        let served = self.service.mine_sweep_in(
            tenant,
            name,
            &points,
            deadline,
            &CancelToken::never(),
            key,
        )?;
        let outcome = match served {
            SweepServed::Replayed(body) => {
                let mut doc = Json::parse(&body)
                    .map_err(|e| ApiError::Internal(format!("corrupt sweep replay body: {e}")))?;
                doc.set("replayed", Json::from(true));
                return Ok(ApiResponse::ok(doc));
            }
            SweepServed::Fresh(outcome) => outcome,
        };
        let results: Vec<Json> = outcome
            .results
            .iter()
            .zip(&outcome.cache_hits)
            .map(|(result, &hit)| {
                Json::from_pairs([
                    ("cache_hit", Json::from(hit)),
                    ("cap_count", Json::from(result.caps.len())),
                    ("delayed_count", Json::from(result.delayed.len())),
                    ("caps", capset_to_json(&result.caps)),
                ])
            })
            .collect();
        let doc = Json::from_pairs([
            ("dataset", Json::from(name)),
            ("revision", Json::from(outcome.revision as i64)),
            ("requested_points", Json::from(points.len())),
            ("unique_points", Json::from(outcome.stats.unique_points)),
            (
                "extraction_classes",
                Json::from(outcome.stats.extraction_classes),
            ),
            ("graphs_built", Json::from(outcome.stats.graphs_built)),
            ("search_groups", Json::from(outcome.stats.search_groups)),
            ("elapsed_seconds", Json::from(outcome.elapsed.as_secs_f64())),
            ("replayed", Json::from(false)),
            ("results", Json::Array(results)),
        ]);
        self.service
            .remember_sweep_in(tenant, name, key, doc.to_string_compact());
        Ok(ApiResponse::ok(doc))
    }

    fn watch(
        &self,
        tenant: &str,
        name: &str,
        request: &ApiRequest,
    ) -> Result<ApiResponse, ApiError> {
        let since = match request.query.get("since_revision") {
            Some(raw) => raw.parse().map_err(|_| {
                ApiError::BadRequest("since_revision must be a non-negative integer".into())
            })?,
            None => 0,
        };
        // A long poll always has a bound: an omitted deadline defaults to
        // the standard long-poll window rather than parking forever.
        let deadline = deadline_from_query(request)?
            .unwrap_or_else(|| Instant::now() + DEFAULT_WATCH_DEADLINE);
        let out = self.service.watch_in(tenant, name, since, deadline)?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("dataset", Json::from(name)),
            ("revision", Json::from(out.revision as i64)),
            ("changed", Json::from(out.changed)),
            ("timestamps", Json::from(out.timestamps)),
            ("trimmed_total", Json::from(out.trimmed_total)),
            ("deadline_expired", Json::from(out.deadline_expired)),
        ])))
    }

    fn get_quota(&self, tenant: &str) -> Result<ApiResponse, ApiError> {
        let quota = self.service.quota(tenant)?;
        Ok(ApiResponse::ok(quota_doc(tenant, &quota)))
    }

    fn set_quota(&self, tenant: &str, request: &ApiRequest) -> Result<ApiResponse, ApiError> {
        let quota = quota_from_json(&request.body)?;
        self.service.set_quota(tenant, quota)?;
        Ok(ApiResponse::ok(quota_doc(tenant, &quota)))
    }

    fn tenant_admission_stats(&self, tenant: &str) -> Result<ApiResponse, ApiError> {
        let stats = self.service.tenant_admission_stats(tenant)?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("tenant", Json::from(tenant)),
            ("admitted", Json::from(stats.admitted as i64)),
            ("shed", Json::from(stats.shed as i64)),
            (
                "deadline_expired",
                Json::from(stats.deadline_expired as i64),
            ),
        ])))
    }

    fn tenant_protocol_stats(&self, tenant: &str) -> Result<ApiResponse, ApiError> {
        let stats = self.service.protocol_stats_in(tenant)?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("tenant", Json::from(tenant)),
            ("cached_keys", Json::from(stats.cached_keys)),
            ("key_replays", Json::from(stats.key_replays as i64)),
            (
                "chunk_duplicates",
                Json::from(stats.chunk_duplicates as i64),
            ),
            ("sequence_gaps", Json::from(stats.sequence_gaps as i64)),
            ("stale_sessions", Json::from(stats.stale_sessions as i64)),
        ])))
    }

    fn tenant_cache_stats(&self, tenant: &str) -> Result<ApiResponse, ApiError> {
        let stats = self.service.tenant_cache_stats(tenant)?;
        Ok(ApiResponse::ok(Json::from_pairs([
            ("tenant", Json::from(tenant)),
            ("datasets", Json::from(stats.datasets)),
            (
                "extraction",
                Json::from_pairs([
                    ("hits", Json::from(stats.extraction.hits)),
                    ("misses", Json::from(stats.extraction.misses)),
                    ("prefix_hits", Json::from(stats.extraction.prefix_hits)),
                    ("prefix_misses", Json::from(stats.extraction.prefix_misses)),
                    ("entries", Json::from(stats.extraction.entries)),
                    ("evicted", Json::from(stats.extraction.evicted)),
                ]),
            ),
        ])))
    }

    fn admission_stats(&self) -> ApiResponse {
        let stats = self.service.admission_stats();
        ApiResponse::ok(Json::from_pairs([
            ("admitted", Json::from(stats.admitted as i64)),
            ("shed", Json::from(stats.shed as i64)),
            (
                "deadline_expired",
                Json::from(stats.deadline_expired as i64),
            ),
            ("in_flight", Json::from(stats.in_flight)),
            ("in_flight_cost", Json::from(stats.in_flight_cost as i64)),
            ("queued", Json::from(stats.queued)),
        ]))
    }

    fn protocol_stats(&self) -> ApiResponse {
        let stats = self.service.protocol_stats();
        ApiResponse::ok(Json::from_pairs([
            ("cached_keys", Json::from(stats.cached_keys)),
            ("key_replays", Json::from(stats.key_replays as i64)),
            (
                "chunk_duplicates",
                Json::from(stats.chunk_duplicates as i64),
            ),
            ("sequence_gaps", Json::from(stats.sequence_gaps as i64)),
            ("stale_sessions", Json::from(stats.stale_sessions as i64)),
        ]))
    }

    fn cache_stats(&self) -> ApiResponse {
        let stats = self.service.cache_stats();
        let extraction = self.service.extraction_cache_stats();
        ApiResponse::ok(Json::from_pairs([
            ("hits", Json::from(stats.hits)),
            ("misses", Json::from(stats.misses)),
            ("entries", Json::from(stats.entries)),
            ("evicted", Json::from(stats.evicted)),
            ("hit_rate", Json::from(stats.hit_rate())),
            (
                "extraction",
                Json::from_pairs([
                    ("hits", Json::from(extraction.hits)),
                    ("misses", Json::from(extraction.misses)),
                    ("prefix_hits", Json::from(extraction.prefix_hits)),
                    ("prefix_misses", Json::from(extraction.prefix_misses)),
                    ("entries", Json::from(extraction.entries)),
                    ("evicted", Json::from(extraction.evicted)),
                ]),
            ),
        ]))
    }
}

/// Parses mining parameters from a JSON body; unspecified fields keep the
/// defaults of [`MiningParams`].
pub fn params_from_json(body: &Json) -> Result<MiningParams, ApiError> {
    let mut params = MiningParams::default();
    if let Some(v) = body.get("epsilon") {
        params.epsilon = v
            .as_f64()
            .ok_or_else(|| ApiError::BadRequest("epsilon must be a number".into()))?;
    }
    if let Some(v) = body.get("eta_km") {
        params.eta_km = v
            .as_f64()
            .ok_or_else(|| ApiError::BadRequest("eta_km must be a number".into()))?;
    }
    if let Some(v) = body.get("mu") {
        params.mu = v
            .as_i64()
            .filter(|n| *n >= 0)
            .ok_or_else(|| ApiError::BadRequest("mu must be a non-negative integer".into()))?
            as usize;
    }
    if let Some(v) = body.get("psi") {
        params.psi = v
            .as_i64()
            .filter(|n| *n >= 0)
            .ok_or_else(|| ApiError::BadRequest("psi must be a non-negative integer".into()))?
            as usize;
    }
    if let Some(v) = body.get("min_attributes") {
        params.min_attributes = v.as_i64().filter(|n| *n >= 0).ok_or_else(|| {
            ApiError::BadRequest("min_attributes must be a non-negative integer".into())
        })? as usize;
    }
    if let Some(v) = body.get("segmentation") {
        params.segmentation = v
            .as_bool()
            .ok_or_else(|| ApiError::BadRequest("segmentation must be a boolean".into()))?;
    }
    if let Some(v) = body.get("max_delay") {
        params.max_delay = v.as_i64().filter(|n| *n >= 0).ok_or_else(|| {
            ApiError::BadRequest("max_delay must be a non-negative integer".into())
        })? as usize;
    }
    params
        .validate()
        .map_err(|e| ApiError::BadRequest(e.to_string()))?;
    Ok(params)
}

/// Parses a retention policy from a JSON body: optional `max_timestamps`
/// (positive integer) and `max_age_seconds` (non-negative integer); an
/// empty body means unbounded (retention disabled).
pub fn retention_from_json(body: &Json) -> Result<miscela_model::RetentionPolicy, ApiError> {
    let mut policy = miscela_model::RetentionPolicy::unbounded();
    if let Some(v) = body.get("max_timestamps") {
        let n = v.as_i64().filter(|n| *n > 0).ok_or_else(|| {
            ApiError::BadRequest("max_timestamps must be a positive integer".into())
        })?;
        policy.max_timestamps = Some(n as usize);
    }
    if let Some(v) = body.get("max_age_seconds") {
        let n = v.as_i64().filter(|n| *n >= 0).ok_or_else(|| {
            ApiError::BadRequest("max_age_seconds must be a non-negative integer".into())
        })?;
        policy.max_age = Some(miscela_model::Duration::seconds(n));
    }
    Ok(policy)
}

/// The JSON rendering of one tenant's quota: `null` means unlimited.
fn quota_doc(tenant: &str, quota: &TenantQuota) -> Json {
    let opt = |v: Option<usize>| v.map(Json::from).unwrap_or(Json::Null);
    Json::from_pairs([
        ("tenant", Json::from(tenant)),
        ("max_datasets", opt(quota.max_datasets)),
        (
            "max_retained_timestamps",
            opt(quota.max_retained_timestamps),
        ),
        ("max_cache_entries", opt(quota.max_cache_entries)),
    ])
}

/// Parses a tenant quota from a JSON body: each of `max_datasets`,
/// `max_retained_timestamps` and `max_cache_entries` is an optional
/// non-negative integer; absent or `null` means unlimited, so posting an
/// empty body clears every cap.
fn quota_from_json(body: &Json) -> Result<TenantQuota, ApiError> {
    let field = |name: &str| -> Result<Option<usize>, ApiError> {
        match body.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => {
                let n = v.as_i64().filter(|n| *n >= 0).ok_or_else(|| {
                    ApiError::BadRequest(format!("{name} must be a non-negative integer"))
                })?;
                Ok(Some(n as usize))
            }
        }
    };
    Ok(TenantQuota {
        max_datasets: field("max_datasets")?,
        max_retained_timestamps: field("max_retained_timestamps")?,
        max_cache_entries: field("max_cache_entries")?,
    })
}

/// Parses the optional `deadline_ms` query parameter into an absolute
/// deadline: the request must complete within that many milliseconds of
/// now, or it fails with a 504.
fn deadline_from_query(request: &ApiRequest) -> Result<Option<Instant>, ApiError> {
    let Some(raw) = request.query.get("deadline_ms") else {
        return Ok(None);
    };
    let ms: u64 = raw
        .parse()
        .map_err(|_| ApiError::BadRequest("deadline_ms must be a non-negative integer".into()))?;
    Ok(Some(Instant::now() + Duration::from_millis(ms)))
}

/// The optional idempotency key of a mutating request: the
/// `idempotency_key` string body field, or (for bodyless requests like
/// `DELETE`) the query parameter of the same name.
fn key_from_request(request: &ApiRequest) -> Option<&str> {
    request
        .body
        .get("idempotency_key")
        .and_then(|k| k.as_str())
        .or_else(|| request.query.get("idempotency_key").map(|k| k.as_str()))
}

/// Parses the shared chunk envelope (`index`, `total`, `content`) used by
/// both the upload and append chunk routes.
fn chunk_from_body(request: &ApiRequest) -> Result<Chunk, ApiError> {
    Ok(Chunk {
        index: body_u64(request, "index")? as usize,
        total: body_u64(request, "total")? as usize,
        content: body_str(request, "content")?.to_string(),
    })
}

/// The shared response for an accepted chunk.
fn chunk_accepted(chunk: &Chunk, missing: usize) -> ApiResponse {
    ApiResponse::ok(Json::from_pairs([
        ("accepted", Json::from(chunk.index)),
        ("missing_chunks", Json::from(missing)),
    ]))
}

fn body_str<'a>(request: &'a ApiRequest, field: &str) -> Result<&'a str, ApiError> {
    request
        .body
        .get(field)
        .and_then(|v| v.as_str())
        .ok_or_else(|| ApiError::BadRequest(format!("missing string field {field:?}")))
}

fn body_u64(request: &ApiRequest, field: &str) -> Result<u64, ApiError> {
    request
        .body
        .get(field)
        .and_then(|v| v.as_i64())
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| ApiError::BadRequest(format!("missing integer field {field:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::StatusCode;
    use miscela_csv::DatasetWriter;
    use miscela_datagen::SantanderGenerator;

    fn router_with_dataset() -> Router {
        let service = Arc::new(MiscelaService::new());
        service.register_dataset(SantanderGenerator::small().with_scale(0.02).generate());
        Router::new(Arc::new(MiscelaService::new()));
        Router::new(service)
    }

    fn mine_body(psi: usize) -> Json {
        Json::from_pairs([
            ("epsilon", Json::from(0.4)),
            ("eta_km", Json::from(0.5)),
            ("mu", Json::from(3i64)),
            ("psi", Json::from(psi)),
            ("segmentation", Json::from(false)),
        ])
    }

    #[test]
    fn list_and_stats_routes() {
        let router = router_with_dataset();
        let resp = router.handle(&ApiRequest::get("/datasets"));
        assert!(resp.is_success());
        assert_eq!(
            resp.body.get("datasets").unwrap().as_array().unwrap().len(),
            1
        );
        let resp = router.handle(&ApiRequest::get("/datasets/santander"));
        assert!(resp.is_success());
        assert!(resp.body.get("sensors").unwrap().as_i64().unwrap() > 0);
        let resp = router.handle(&ApiRequest::get("/datasets/ghost"));
        assert_eq!(resp.status, StatusCode::NotFound);
    }

    #[test]
    fn mine_route_reports_cache_hits() {
        let router = router_with_dataset();
        let req = ApiRequest::post("/datasets/santander/mine", mine_body(20));
        let first = router.handle(&req);
        assert!(first.is_success(), "{:?}", first.body);
        assert_eq!(first.body.get("cache_hit").unwrap().as_bool(), Some(false));
        let second = router.handle(&req);
        assert_eq!(second.body.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            first.body.get("cap_count").unwrap().as_i64(),
            second.body.get("cap_count").unwrap().as_i64()
        );
        // Cache stats route reflects the hit.
        let stats = router.handle(&ApiRequest::get("/cache/stats"));
        assert!(stats.body.get("hits").unwrap().as_i64().unwrap() >= 1);
        // Invalid parameters produce a 400.
        let bad = router.handle(&ApiRequest::post(
            "/datasets/santander/mine",
            Json::from_pairs([("psi", Json::from(0i64))]),
        ));
        assert_eq!(bad.status, StatusCode::BadRequest);
    }

    #[test]
    fn sweep_route_matches_solo_mines_dedupes_and_replays() {
        let router = router_with_dataset();
        // One grid point is pre-mined solo, so the sweep finds it cached.
        let solo25 = router.handle(&ApiRequest::post("/datasets/santander/mine", mine_body(25)));
        assert!(solo25.is_success(), "{:?}", solo25.body);
        let sweep_body = || {
            Json::from_pairs([
                (
                    "points",
                    Json::Array(vec![mine_body(20), mine_body(25), mine_body(20)]),
                ),
                ("idempotency_key", Json::from("sweep-route-1")),
            ])
        };
        let req = ApiRequest::post("/datasets/santander/mine/sweep", sweep_body());
        let first = router.handle(&req);
        assert!(first.is_success(), "{:?}", first.body);
        assert_eq!(first.body.get("replayed").unwrap().as_bool(), Some(false));
        assert_eq!(
            first.body.get("requested_points").unwrap().as_i64(),
            Some(3)
        );
        // The duplicate ψ=20 point is deduplicated server-side.
        assert_eq!(first.body.get("unique_points").unwrap().as_i64(), Some(2));
        let results = first.body.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(results[1].get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            results[0].to_string_compact(),
            results[2].to_string_compact()
        );
        // Per-point payloads are byte-identical to independent mines, and
        // the sweep populated the result cache for later solo mines.
        let solo20 = router.handle(&ApiRequest::post("/datasets/santander/mine", mine_body(20)));
        assert_eq!(solo20.body.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            results[0].get("caps").unwrap().to_string_compact(),
            solo20.body.get("caps").unwrap().to_string_compact()
        );
        assert_eq!(
            results[1].get("caps").unwrap().to_string_compact(),
            solo25.body.get("caps").unwrap().to_string_compact()
        );
        // A keyed retry replays the original body verbatim.
        let retry = router.handle(&ApiRequest::post(
            "/datasets/santander/mine/sweep",
            sweep_body(),
        ));
        assert!(retry.is_success(), "{:?}", retry.body);
        assert_eq!(retry.body.get("replayed").unwrap().as_bool(), Some(true));
        assert_eq!(
            retry.body.get("results").unwrap().to_string_compact(),
            first.body.get("results").unwrap().to_string_compact()
        );
        let stats = router.handle(&ApiRequest::get("/protocol/stats"));
        assert!(stats.body.get("key_replays").unwrap().as_i64().unwrap() >= 1);
    }

    #[test]
    fn sweep_route_deadline_admission_and_validation() {
        let router = router_with_dataset();
        // Missing / empty / invalid grids are 400s before any work.
        let bad = router.handle(&ApiRequest::post(
            "/datasets/santander/mine/sweep",
            Json::object(),
        ));
        assert_eq!(bad.status, StatusCode::BadRequest);
        let empty = router.handle(&ApiRequest::post(
            "/datasets/santander/mine/sweep",
            Json::from_pairs([("points", Json::Array(Vec::new()))]),
        ));
        assert_eq!(empty.status, StatusCode::BadRequest);
        let invalid = router.handle(&ApiRequest::post(
            "/datasets/santander/mine/sweep",
            Json::from_pairs([("points", Json::Array(vec![mine_body(0)]))]),
        ));
        assert_eq!(invalid.status, StatusCode::BadRequest);
        // An already-expired deadline on a cold sweep is a 504.
        let late = router.handle(
            &ApiRequest::post(
                "/datasets/santander/mine/sweep",
                Json::from_pairs([("points", Json::Array(vec![mine_body(20)]))]),
            )
            .with_query("deadline_ms", "0"),
        );
        assert_eq!(late.status, StatusCode::GatewayTimeout);
        // A whole grid is admitted as one job: the admission counter moves
        // by exactly one for a two-point cold sweep.
        let before = router
            .handle(&ApiRequest::get("/admission/stats"))
            .body
            .get("admitted")
            .unwrap()
            .as_i64()
            .unwrap();
        let fresh = router.handle(&ApiRequest::post(
            "/datasets/santander/mine/sweep",
            Json::from_pairs([("points", Json::Array(vec![mine_body(20), mine_body(30)]))]),
        ));
        assert!(fresh.is_success(), "{:?}", fresh.body);
        let after = router
            .handle(&ApiRequest::get("/admission/stats"))
            .body
            .get("admitted")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(after, before + 1);
        // An all-cache-hit sweep is served without an admission charge,
        // even under an expired deadline (cache hits cost nothing).
        let warm = router.handle(
            &ApiRequest::post(
                "/datasets/santander/mine/sweep",
                Json::from_pairs([("points", Json::Array(vec![mine_body(20), mine_body(30)]))]),
            )
            .with_query("deadline_ms", "0"),
        );
        assert!(warm.is_success(), "{:?}", warm.body);
        let results = warm.body.get("results").unwrap().as_array().unwrap();
        assert!(results
            .iter()
            .all(|r| { r.get("cache_hit").unwrap().as_bool() == Some(true) }));
        let final_admitted = router
            .handle(&ApiRequest::get("/admission/stats"))
            .body
            .get("admitted")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(final_admitted, after);
        // Unknown datasets are a 404.
        let ghost = router.handle(&ApiRequest::post(
            "/datasets/ghost/mine/sweep",
            Json::from_pairs([("points", Json::Array(vec![mine_body(20)]))]),
        ));
        assert_eq!(ghost.status, StatusCode::NotFound);
    }

    #[test]
    fn unknown_route_is_404() {
        let router = router_with_dataset();
        let resp = router.handle(&ApiRequest::get("/nope"));
        assert_eq!(resp.status, StatusCode::NotFound);
        let resp = router.handle(&ApiRequest::delete("/datasets/santander"));
        assert!(resp.is_success());
        let resp = router.handle(&ApiRequest::get("/datasets/santander"));
        assert_eq!(resp.status, StatusCode::NotFound);
    }

    #[test]
    fn upload_routes_round_trip() {
        let generated = SantanderGenerator::small().with_scale(0.02).generate();
        let writer = DatasetWriter::new();
        let data = writer.data_csv(&generated);
        let service = Arc::new(MiscelaService::new());
        let router = Router::new(service);

        let begin = router.handle(&ApiRequest::post(
            "/datasets/uploaded/upload/begin",
            Json::from_pairs([
                ("location_csv", Json::from(writer.location_csv(&generated))),
                (
                    "attribute_csv",
                    Json::from(writer.attribute_csv(&generated)),
                ),
            ]),
        ));
        assert_eq!(begin.status, StatusCode::Created);

        let chunks = miscela_csv::split_into_chunks(&data, 5_000);
        for chunk in &chunks {
            let resp = router.handle(&ApiRequest::post(
                "/datasets/uploaded/upload/chunk",
                Json::from_pairs([
                    ("index", Json::from(chunk.index)),
                    ("total", Json::from(chunk.total)),
                    ("content", Json::from(chunk.content.clone())),
                ]),
            ));
            assert!(resp.is_success(), "{:?}", resp.body);
        }
        let finish = router.handle(&ApiRequest::post(
            "/datasets/uploaded/upload/finish",
            Json::object(),
        ));
        assert_eq!(finish.status, StatusCode::Created);
        assert_eq!(
            finish.body.get("sensors").unwrap().as_i64().unwrap() as usize,
            generated.sensor_count()
        );
        // The uploaded dataset is now minable.
        let mined = router.handle(&ApiRequest::post("/datasets/uploaded/mine", mine_body(20)));
        assert!(mined.is_success());
        // Missing body fields produce a 400.
        let bad = router.handle(&ApiRequest::post(
            "/datasets/x/upload/chunk",
            Json::from_pairs([("index", Json::from(0i64))]),
        ));
        assert_eq!(bad.status, StatusCode::BadRequest);
    }

    #[test]
    fn append_routes_round_trip() {
        let full = SantanderGenerator::small().with_scale(0.02).generate();
        let split_t = full.grid().at(full.timestamp_count() - 12).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();

        let service = Arc::new(MiscelaService::new());
        let router = Router::new(service);
        // Appending before the dataset exists is a 404.
        let missing = router.handle(&ApiRequest::post(
            "/datasets/santander/append/begin",
            Json::object(),
        ));
        assert_eq!(missing.status, StatusCode::NotFound);

        router
            .service()
            .upload_documents(
                "santander",
                &writer.data_csv(&prefix),
                &writer.location_csv(&prefix),
                &writer.attribute_csv(&prefix),
                10_000,
            )
            .unwrap();
        let mined = router.handle(&ApiRequest::post("/datasets/santander/mine", mine_body(20)));
        assert_eq!(mined.body.get("revision").unwrap().as_i64(), Some(1));

        let begin = router.handle(&ApiRequest::post(
            "/datasets/santander/append/begin",
            Json::object(),
        ));
        assert_eq!(begin.status, StatusCode::Created);
        for chunk in miscela_csv::split_into_chunks(&writer.data_csv(&tail), 1_000) {
            let resp = router.handle(&ApiRequest::post(
                "/datasets/santander/append/chunk",
                Json::from_pairs([
                    ("index", Json::from(chunk.index)),
                    ("total", Json::from(chunk.total)),
                    ("content", Json::from(chunk.content.clone())),
                ]),
            ));
            assert!(resp.is_success(), "{:?}", resp.body);
        }
        let finish = router.handle(&ApiRequest::post(
            "/datasets/santander/append/finish",
            Json::object(),
        ));
        assert!(finish.is_success(), "{:?}", finish.body);
        assert_eq!(
            finish.body.get("new_timestamps").unwrap().as_i64(),
            Some(12)
        );
        assert_eq!(finish.body.get("revision").unwrap().as_i64(), Some(2));

        // Re-mining sees the new revision and reports the prefix resumes;
        // the cache stats envelope mirrors the extraction counters.
        let remined = router.handle(&ApiRequest::post("/datasets/santander/mine", mine_body(20)));
        assert!(remined.is_success());
        assert_eq!(remined.body.get("revision").unwrap().as_i64(), Some(2));
        assert_eq!(
            remined.body.get("cache_hit").unwrap().as_bool(),
            Some(false)
        );
        let resumed = remined
            .body
            .get("extraction_prefix_hits")
            .unwrap()
            .as_i64()
            .unwrap();
        assert!(resumed > 0, "expected prefix resumes, got {remined:?}");
        let stats = router.handle(&ApiRequest::get("/cache/stats"));
        let extraction = stats.body.get("extraction").unwrap();
        assert!(extraction.get("prefix_hits").unwrap().as_i64().unwrap() >= resumed);
        // The appended grid end moved forward.
        let ds_stats = router.handle(&ApiRequest::get("/datasets/santander"));
        assert_eq!(
            ds_stats.body.get("timestamps").unwrap().as_i64().unwrap() as usize,
            full.timestamp_count()
        );
    }

    #[test]
    fn retention_routes_round_trip() {
        use miscela_model::SERIES_BLOCK_LEN;
        let router = router_with_dataset();
        // Defaults: unbounded, nothing trimmed.
        let got = router.handle(&ApiRequest::get("/datasets/santander/retention"));
        assert!(got.is_success(), "{:?}", got.body);
        assert!(got.body.get("max_timestamps").unwrap().is_null());
        assert_eq!(got.body.get("trimmed_total").unwrap().as_i64(), Some(0));
        let n = got.body.get("timestamps").unwrap().as_i64().unwrap();
        assert!(n as usize > SERIES_BLOCK_LEN);
        // Mine once so a result exists, then install a trimming policy.
        router.handle(&ApiRequest::post("/datasets/santander/mine", mine_body(20)));
        let set = router.handle(&ApiRequest::post(
            "/datasets/santander/retention",
            Json::from_pairs([("max_timestamps", Json::from(16i64))]),
        ));
        assert!(set.is_success(), "{:?}", set.body);
        assert_eq!(
            set.body.get("trimmed_timestamps").unwrap().as_i64(),
            Some(SERIES_BLOCK_LEN as i64)
        );
        assert_eq!(set.body.get("revision").unwrap().as_i64(), Some(2));
        // GET reflects the new policy and the advanced window.
        let got = router.handle(&ApiRequest::get("/datasets/santander/retention"));
        assert_eq!(got.body.get("max_timestamps").unwrap().as_i64(), Some(16));
        assert_eq!(
            got.body.get("trimmed_total").unwrap().as_i64(),
            Some(SERIES_BLOCK_LEN as i64)
        );
        // The revision GC shows up in /cache/stats.
        let remined = router.handle(&ApiRequest::post("/datasets/santander/mine", mine_body(20)));
        assert_eq!(remined.body.get("revision").unwrap().as_i64(), Some(2));
        let stats = router.handle(&ApiRequest::get("/cache/stats"));
        assert!(stats.body.get("evicted").unwrap().as_i64().unwrap() >= 1);
        assert!(stats
            .body
            .get("extraction")
            .unwrap()
            .get("evicted")
            .is_some());
        // Bad bodies and unknown datasets error.
        let bad = router.handle(&ApiRequest::post(
            "/datasets/santander/retention",
            Json::from_pairs([("max_timestamps", Json::from(0i64))]),
        ));
        assert_eq!(bad.status, StatusCode::BadRequest);
        let missing = router.handle(&ApiRequest::get("/datasets/ghost/retention"));
        assert_eq!(missing.status, StatusCode::NotFound);
    }

    #[test]
    fn durability_route_reports_wal_stats() {
        // Without durability the route is a 404 on any dataset.
        let router = router_with_dataset();
        let resp = router.handle(&ApiRequest::get("/datasets/santander/durability"));
        assert_eq!(resp.status, StatusCode::NotFound);

        let dir =
            std::env::temp_dir().join(format!("miscela-router-durability-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(MiscelaService::with_durability(&dir).unwrap());
        service.register_dataset(SantanderGenerator::small().with_scale(0.02).generate());
        let router = Router::new(service);

        let resp = router.handle(&ApiRequest::get("/datasets/santander/durability"));
        assert!(resp.is_success(), "{:?}", resp.body);
        assert_eq!(resp.body.get("name").unwrap().as_str(), Some("santander"));
        // Registration installed the first snapshot and left an empty WAL.
        assert_eq!(
            resp.body.get("snapshot_generation").unwrap().as_i64(),
            Some(1)
        );
        assert_eq!(resp.body.get("wal_records").unwrap().as_i64(), Some(0));
        assert_eq!(resp.body.get("wal_pending").unwrap().as_i64(), Some(0));
        assert_eq!(resp.body.get("torn_bytes").unwrap().as_i64(), Some(0));
        // An append session writes framed, fsynced records.
        router.handle(&ApiRequest::post(
            "/datasets/santander/append/begin",
            Json::object(),
        ));
        let resp = router.handle(&ApiRequest::get("/datasets/santander/durability"));
        assert!(resp.body.get("wal_records").unwrap().as_i64().unwrap() >= 1);
        assert!(resp.body.get("wal_bytes").unwrap().as_i64().unwrap() > 0);
        assert!(resp.body.get("wal_syncs").unwrap().as_i64().unwrap() >= 1);
        // Unknown datasets are still a 404.
        let missing = router.handle(&ApiRequest::get("/datasets/ghost/durability"));
        assert_eq!(missing.status, StatusCode::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mine_deadline_and_admission_routes() {
        let router = router_with_dataset();
        // Malformed deadline is a 400 before any work happens.
        let bad = router.handle(
            &ApiRequest::post("/datasets/santander/mine", mine_body(20))
                .with_query("deadline_ms", "soon"),
        );
        assert_eq!(bad.status, StatusCode::BadRequest);
        // An already-expired deadline on a cold mine is a 504 with the
        // typed error body (no retry_after_ms: the hint is for 429/503).
        let late = router.handle(
            &ApiRequest::post("/datasets/santander/mine", mine_body(20))
                .with_query("deadline_ms", "0"),
        );
        assert_eq!(late.status, StatusCode::GatewayTimeout);
        assert!(late.body.get("error").is_some());
        assert!(late.body.get("retry_after_ms").is_none());
        // Without a deadline the mine completes and fills the cache...
        let warm = router.handle(&ApiRequest::post("/datasets/santander/mine", mine_body(20)));
        assert!(warm.is_success(), "{:?}", warm.body);
        // ...after which even an expired deadline is served from cache.
        let hit = router.handle(
            &ApiRequest::post("/datasets/santander/mine", mine_body(20))
                .with_query("deadline_ms", "0"),
        );
        assert!(hit.is_success(), "{:?}", hit.body);
        assert_eq!(hit.body.get("cache_hit").unwrap().as_bool(), Some(true));
        // The admission counters reflect the admitted mine and the expired
        // request.
        let stats = router.handle(&ApiRequest::get("/admission/stats"));
        assert!(stats.is_success());
        assert!(stats.body.get("admitted").unwrap().as_i64().unwrap() >= 1);
        assert!(
            stats
                .body
                .get("deadline_expired")
                .unwrap()
                .as_i64()
                .unwrap()
                >= 1
        );
        assert_eq!(stats.body.get("in_flight").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn double_append_begin_is_a_409_conflict() {
        let router = router_with_dataset();
        let begin = ApiRequest::post("/datasets/santander/append/begin", Json::object());
        assert_eq!(router.handle(&begin).status, StatusCode::Created);
        let conflict = router.handle(&begin);
        assert_eq!(conflict.status, StatusCode::Conflict);
        assert!(conflict
            .body
            .get("error")
            .and_then(|e| e.as_str())
            .unwrap()
            .contains("already open"));
    }

    #[test]
    fn tenant_routes_are_namespaced() {
        let router = router_with_dataset();
        // The same dataset name registered under a tenant prefix is a
        // distinct dataset; bare URLs keep addressing the default tenant.
        router
            .service()
            .register_dataset_keyed_in(
                "acme",
                SantanderGenerator::small().with_scale(0.02).generate(),
                None,
            )
            .unwrap();
        let listed = router.handle(&ApiRequest::get("/tenants/acme/datasets"));
        assert!(listed.is_success(), "{:?}", listed.body);
        assert_eq!(
            listed
                .body
                .get("datasets")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );
        let stats = router.handle(&ApiRequest::get("/tenants/acme/datasets/santander"));
        assert!(stats.is_success(), "{:?}", stats.body);
        // Deleting the tenant's copy leaves the default tenant's intact.
        let del = router.handle(&ApiRequest::delete("/tenants/acme/datasets/santander"));
        assert!(del.is_success(), "{:?}", del.body);
        let gone = router.handle(&ApiRequest::get("/tenants/acme/datasets/santander"));
        assert_eq!(gone.status, StatusCode::NotFound);
        let still = router.handle(&ApiRequest::get("/datasets/santander"));
        assert!(still.is_success(), "{:?}", still.body);
        // An invalid tenant name is a 400, and the explicit default prefix
        // aliases the bare path.
        let bad = router.handle(&ApiRequest::get("/tenants/no.pe/datasets"));
        assert_eq!(bad.status, StatusCode::BadRequest);
        let aliased = router.handle(&ApiRequest::get("/tenants/default/datasets/santander"));
        assert!(aliased.is_success(), "{:?}", aliased.body);
    }

    #[test]
    fn watch_route_reports_revisions_and_deadlines() {
        let router = router_with_dataset();
        // since_revision defaults to 0: an immediate changed reply carrying
        // the current revision.
        let resp = router.handle(&ApiRequest::get("/datasets/santander/watch"));
        assert!(resp.is_success(), "{:?}", resp.body);
        assert_eq!(resp.body.get("changed").unwrap().as_bool(), Some(true));
        assert_eq!(resp.body.get("revision").unwrap().as_i64(), Some(1));
        // An up-to-date watcher with a tiny deadline times out unchanged.
        let resp = router.handle(
            &ApiRequest::get("/datasets/santander/watch")
                .with_query("since_revision", "1")
                .with_query("deadline_ms", "5"),
        );
        assert!(resp.is_success(), "{:?}", resp.body);
        assert_eq!(resp.body.get("changed").unwrap().as_bool(), Some(false));
        assert_eq!(
            resp.body.get("deadline_expired").unwrap().as_bool(),
            Some(true)
        );
        // Unknown datasets close with a 404; malformed cursors are 400s.
        let resp = router.handle(&ApiRequest::get("/datasets/ghost/watch"));
        assert_eq!(resp.status, StatusCode::NotFound);
        let resp = router.handle(
            &ApiRequest::get("/datasets/santander/watch").with_query("since_revision", "x"),
        );
        assert_eq!(resp.status, StatusCode::BadRequest);
    }

    #[test]
    fn quota_routes_round_trip_and_enforce() {
        let router = router_with_dataset();
        // Defaults are unlimited.
        let got = router.handle(&ApiRequest::get("/tenants/capped/quota"));
        assert!(got.is_success(), "{:?}", got.body);
        assert!(got.body.get("max_datasets").unwrap().is_null());
        // Set a one-dataset cap and verify it reads back.
        let set = router.handle(&ApiRequest::post(
            "/tenants/capped/quota",
            Json::from_pairs([("max_datasets", Json::from(1i64))]),
        ));
        assert!(set.is_success(), "{:?}", set.body);
        let got = router.handle(&ApiRequest::get("/tenants/capped/quota"));
        assert_eq!(got.body.get("max_datasets").unwrap().as_i64(), Some(1));
        // The cap turns a second registration into a 403 on the upload
        // path.
        let generated = SantanderGenerator::small().with_scale(0.02).generate();
        let writer = DatasetWriter::new();
        router
            .service()
            .register_dataset_keyed_in("capped", generated.clone(), None)
            .unwrap();
        let upload = |name: &str| {
            let begin = router.handle(&ApiRequest::post(
                format!("/tenants/capped/datasets/{name}/upload/begin"),
                Json::from_pairs([
                    ("location_csv", Json::from(writer.location_csv(&generated))),
                    (
                        "attribute_csv",
                        Json::from(writer.attribute_csv(&generated)),
                    ),
                ]),
            ));
            assert!(begin.is_success(), "{:?}", begin.body);
            for chunk in miscela_csv::split_into_chunks(&writer.data_csv(&generated), 5_000) {
                let resp = router.handle(&ApiRequest::post(
                    format!("/tenants/capped/datasets/{name}/upload/chunk"),
                    Json::from_pairs([
                        ("index", Json::from(chunk.index)),
                        ("total", Json::from(chunk.total)),
                        ("content", Json::from(chunk.content.clone())),
                    ]),
                ));
                assert!(resp.is_success(), "{:?}", resp.body);
            }
            router.handle(&ApiRequest::post(
                format!("/tenants/capped/datasets/{name}/upload/finish"),
                Json::object(),
            ))
        };
        let denied = upload("second");
        assert_eq!(denied.status, StatusCode::Forbidden);
        assert!(denied
            .body
            .get("error")
            .and_then(|e| e.as_str())
            .unwrap()
            .contains("quota"));
        // Clearing the cap (empty body) lets the same upload through.
        let cleared = router.handle(&ApiRequest::post("/tenants/capped/quota", Json::object()));
        assert!(cleared.is_success(), "{:?}", cleared.body);
        let allowed = upload("third");
        assert_eq!(allowed.status, StatusCode::Created, "{:?}", allowed.body);
        // Malformed quota bodies are 400s.
        let bad = router.handle(&ApiRequest::post(
            "/tenants/capped/quota",
            Json::from_pairs([("max_datasets", Json::from("lots"))]),
        ));
        assert_eq!(bad.status, StatusCode::BadRequest);
    }

    #[test]
    fn tenant_stats_routes_slice_the_global_counters() {
        let router = router_with_dataset();
        router
            .service()
            .register_dataset_keyed_in(
                "acme",
                SantanderGenerator::small().with_scale(0.02).generate(),
                Some("k1"),
            )
            .unwrap();
        router
            .service()
            .register_dataset_keyed_in(
                "acme",
                SantanderGenerator::small().with_scale(0.02).generate(),
                Some("k1"),
            )
            .unwrap();
        let mined = router.handle(&ApiRequest::post(
            "/tenants/acme/datasets/santander/mine",
            mine_body(20),
        ));
        assert!(mined.is_success(), "{:?}", mined.body);
        // The tenant slices report acme's activity...
        let adm = router.handle(&ApiRequest::get("/tenants/acme/admission/stats"));
        assert!(adm.is_success(), "{:?}", adm.body);
        assert_eq!(adm.body.get("admitted").unwrap().as_i64(), Some(1));
        let proto = router.handle(&ApiRequest::get("/tenants/acme/protocol/stats"));
        assert_eq!(proto.body.get("key_replays").unwrap().as_i64(), Some(1));
        let cache = router.handle(&ApiRequest::get("/tenants/acme/cache/stats"));
        assert_eq!(cache.body.get("datasets").unwrap().as_i64(), Some(1));
        assert!(
            cache
                .body
                .get("extraction")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_i64()
                .unwrap()
                > 0
        );
        // ...while a fresh tenant's slices are empty and the service-wide
        // routes aggregate across tenants.
        let other = router.handle(&ApiRequest::get("/tenants/other/admission/stats"));
        assert_eq!(other.body.get("admitted").unwrap().as_i64(), Some(0));
        let global = router.handle(&ApiRequest::get("/protocol/stats"));
        assert!(global.body.get("key_replays").unwrap().as_i64().unwrap() >= 1);
    }

    #[test]
    fn params_from_json_defaults_and_errors() {
        let p = params_from_json(&Json::object()).unwrap();
        assert_eq!(p, MiningParams::default());
        let p = params_from_json(&mine_body(42)).unwrap();
        assert_eq!(p.psi, 42);
        assert!(!p.segmentation);
        assert!(params_from_json(&Json::from_pairs([("epsilon", Json::from("x"))])).is_err());
        assert!(params_from_json(&Json::from_pairs([("mu", Json::from(0i64))])).is_err());
    }
}
