//! The resilient client and the chaos transport it is proven against.
//!
//! Serving exactly-once mutations (see [`crate::service`]) is only half the
//! protocol — this module is the other half, the side that runs on flaky
//! municipal networks:
//!
//! * [`Transport`] — the one-method seam between the client and the server:
//!   send a request, get a response or [`TransportError::Lost`]. In process
//!   the transport is a [`RouterTransport`] (never loses anything) or a
//!   [`SwappableRouter`] (the crash-test harness swaps in a freshly
//!   recovered router mid-workflow);
//! * [`ChaosTransport`] — a deterministic, seeded fault injector wrapping
//!   any transport: drops requests, drops responses *after* the server
//!   applied them (the dangerous half — the mutation happened, the client
//!   doesn't know), duplicates deliveries, and delays requests so they
//!   arrive late and out of order, with per-fault counters;
//! * [`ResilientClient`] — deadline-budgeted retries with exponential
//!   backoff + full jitter (via the vendored `rand` shim), `retry_after_ms`
//!   obedience, idempotency keys on every mutation, sequenced chunk
//!   deliveries, and automatic append resume from the server's
//!   acked-sequence watermark after a `412`.
//!
//! The client's sleeps are *virtual* by default — backoff time is
//! accumulated in [`ClientStats::slept_ms`] and checked against the retry
//! budget, but the thread does not block — so chaos tests run at full speed
//! while still proving the budget is never exceeded. Call
//! [`ResilientClient::with_real_sleep`] to actually sleep between retries.

use crate::message::{ApiRequest, ApiResponse, StatusCode};
use crate::router::Router;
use miscela_store::Json;
use parking_lot::Mutex;
use rand::{Rng, SeedableRng, StdRng};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// transports
// ---------------------------------------------------------------------------

/// A transport-level delivery failure: the request or its response never
/// arrived. The caller cannot tell which — the mutation may or may not have
/// been applied — which is exactly why mutations carry idempotency keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The request or its response was lost in transit.
    Lost(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Lost(why) => write!(f, "delivery lost: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The seam between a client and a server: one delivery attempt.
pub trait Transport {
    /// Delivers one request and returns its response, or
    /// [`TransportError::Lost`] when either direction failed.
    fn send(&mut self, request: &ApiRequest) -> Result<ApiResponse, TransportError>;
}

/// The trivial in-process transport: every request reaches the router and
/// every response comes back.
pub struct RouterTransport {
    router: Arc<Router>,
}

impl RouterTransport {
    /// Wraps a router.
    pub fn new(router: Arc<Router>) -> Self {
        RouterTransport { router }
    }
}

impl Transport for RouterTransport {
    fn send(&mut self, request: &ApiRequest) -> Result<ApiResponse, TransportError> {
        Ok(self.router.handle(request))
    }
}

/// A transport whose router can be swapped mid-workflow — the seam the
/// crash-recovery tests use: kill the durable service, recover it from
/// disk, [`SwappableRouter::swap`] the recovered router in, and the client
/// reconnects to "the restarted server" without noticing.
#[derive(Clone)]
pub struct SwappableRouter {
    router: Arc<Mutex<Arc<Router>>>,
}

impl SwappableRouter {
    /// Wraps the initial router.
    pub fn new(router: Arc<Router>) -> Self {
        SwappableRouter {
            router: Arc::new(Mutex::new(router)),
        }
    }

    /// Replaces the router every subsequent send reaches.
    pub fn swap(&self, router: Arc<Router>) {
        *self.router.lock() = router;
    }

    /// The router currently being served.
    pub fn current(&self) -> Arc<Router> {
        Arc::clone(&self.router.lock())
    }
}

impl Transport for SwappableRouter {
    fn send(&mut self, request: &ApiRequest) -> Result<ApiResponse, TransportError> {
        let router = self.current();
        Ok(router.handle(request))
    }
}

// ---------------------------------------------------------------------------
// chaos transport
// ---------------------------------------------------------------------------

/// Fault probabilities for a [`ChaosTransport`]. Each delivery rolls once
/// against `drop_request` / `delay_request` / `duplicate_request` (in that
/// order, mutually exclusive) and, if a response came back, once against
/// `drop_response`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability the request vanishes entirely.
    pub drop_request: f64,
    /// Probability the request is delayed: the client sees a loss now, but
    /// the request arrives later — after newer requests — modelling
    /// reordering and stale duplicates arriving late.
    pub delay_request: f64,
    /// Probability the request is delivered twice back-to-back.
    pub duplicate_request: f64,
    /// Probability the response is dropped *after* the server processed
    /// the request — the mutation applied, the client saw a loss.
    pub drop_response: f64,
    /// Bound on simultaneously delayed requests; beyond it a would-be
    /// delay becomes a plain drop.
    pub max_delayed: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_request: 0.0,
            delay_request: 0.0,
            duplicate_request: 0.0,
            drop_response: 0.0,
            max_delayed: 4,
        }
    }
}

impl ChaosConfig {
    /// Only request drops.
    pub fn request_drops(p: f64) -> Self {
        ChaosConfig {
            drop_request: p,
            ..Default::default()
        }
    }

    /// Only response drops (the dangerous direction: the server applied
    /// the mutation).
    pub fn response_drops(p: f64) -> Self {
        ChaosConfig {
            drop_response: p,
            ..Default::default()
        }
    }

    /// Only duplicated deliveries.
    pub fn duplicates(p: f64) -> Self {
        ChaosConfig {
            duplicate_request: p,
            ..Default::default()
        }
    }

    /// Only delayed/reordered deliveries.
    pub fn delays(p: f64) -> Self {
        ChaosConfig {
            delay_request: p,
            ..Default::default()
        }
    }

    /// Everything at once: a lossy storm in both directions.
    pub fn storm(p: f64) -> Self {
        ChaosConfig {
            drop_request: p,
            delay_request: p / 2.0,
            duplicate_request: p / 2.0,
            drop_response: p,
            max_delayed: 4,
        }
    }
}

/// Per-fault counters for one [`ChaosTransport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Requests delivered to the inner transport (incl. duplicates and
    /// late deliveries).
    pub delivered: u64,
    /// Requests dropped before reaching the server.
    pub dropped_requests: u64,
    /// Responses dropped after the server processed the request.
    pub dropped_responses: u64,
    /// Requests delivered twice.
    pub duplicated_requests: u64,
    /// Requests queued for late delivery.
    pub delayed_requests: u64,
    /// Delayed requests that later reached the server (out of order).
    pub late_deliveries: u64,
}

impl ChaosStats {
    /// Total injected faults, all classes.
    pub fn total_faults(&self) -> u64 {
        self.dropped_requests
            + self.dropped_responses
            + self.duplicated_requests
            + self.delayed_requests
    }
}

/// A deterministic, seeded fault injector wrapping any [`Transport`].
///
/// Responses of duplicated and late deliveries are discarded (no caller is
/// waiting for them) — what matters is that the *server* saw the duplicate
/// or stale request and must not double-apply it.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    rng: StdRng,
    config: ChaosConfig,
    pending: Vec<ApiRequest>,
    stats: ChaosStats,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner`, injecting faults per `config`, deterministically for
    /// `seed`.
    pub fn new(inner: T, config: ChaosConfig, seed: u64) -> Self {
        ChaosTransport {
            inner,
            rng: StdRng::seed_from_u64(seed),
            config,
            pending: Vec::new(),
            stats: ChaosStats::default(),
        }
    }

    /// The per-fault counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// A mutable handle on the wrapped transport (the crash harness uses
    /// this to swap routers).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Delivers every still-delayed request (trailing chaos at the end of
    /// an episode, so the quiesced server state is deterministic).
    pub fn drain(&mut self) {
        self.flush_pending(true);
    }

    /// Delivers delayed requests: all of them when `all`, otherwise each
    /// with a coin flip — so some arrive now (after newer traffic, i.e.
    /// reordered) and some arrive even later.
    fn flush_pending(&mut self, all: bool) {
        let mut keep = Vec::new();
        for request in std::mem::take(&mut self.pending) {
            if all || self.rng.gen_bool(0.5) {
                let _ = self.inner.send(&request);
                self.stats.delivered += 1;
                self.stats.late_deliveries += 1;
            } else {
                keep.push(request);
            }
        }
        self.pending = keep;
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&mut self, request: &ApiRequest) -> Result<ApiResponse, TransportError> {
        // Older delayed traffic may land just before this request…
        self.flush_pending(false);
        let roll: f64 = self.rng.gen();
        let c = self.config;
        let outcome = if roll < c.drop_request {
            self.stats.dropped_requests += 1;
            Err(TransportError::Lost("request dropped".to_string()))
        } else if roll < c.drop_request + c.delay_request && self.pending.len() < c.max_delayed {
            self.stats.delayed_requests += 1;
            self.pending.push(request.clone());
            Err(TransportError::Lost(
                "request delayed past the client's patience".to_string(),
            ))
        } else if roll < c.drop_request + c.delay_request + c.duplicate_request {
            self.stats.duplicated_requests += 1;
            self.stats.delivered += 2;
            let _first = self.inner.send(request)?;
            self.inner.send(request)
        } else {
            self.stats.delivered += 1;
            self.inner.send(request)
        };
        // …or just after it (this is what reorders deliveries).
        self.flush_pending(false);
        let response = outcome?;
        if self.rng.gen::<f64>() < c.drop_response {
            self.stats.dropped_responses += 1;
            return Err(TransportError::Lost(
                "response dropped after the server processed the request".to_string(),
            ));
        }
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// resilient client
// ---------------------------------------------------------------------------

/// Retry behavior of a [`ResilientClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Give up after this many delivery attempts per request.
    pub max_attempts: u32,
    /// First backoff step, in milliseconds; doubles per attempt.
    pub base_backoff_ms: u64,
    /// Ceiling on one backoff step, in milliseconds.
    pub max_backoff_ms: u64,
    /// Total backoff budget per request, in milliseconds: the client never
    /// sleeps past it — it fails with [`ClientError::BudgetExceeded`]
    /// instead.
    pub budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 24,
            base_backoff_ms: 5,
            max_backoff_ms: 2_000,
            budget_ms: 30_000,
        }
    }
}

/// Why a [`ResilientClient`] request gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Retries exhausted the attempt count or the backoff budget before a
    /// definitive response arrived.
    BudgetExceeded {
        /// Delivery attempts made.
        attempts: u32,
        /// Total (virtual) backoff slept, in milliseconds.
        slept_ms: u64,
        /// The last failure seen.
        last: String,
    },
    /// The server answered with a non-retryable error.
    Failed {
        /// The response status.
        status: StatusCode,
        /// The error body.
        body: Json,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BudgetExceeded {
                attempts,
                slept_ms,
                last,
            } => write!(
                f,
                "gave up after {attempts} attempts ({slept_ms}ms backoff): {last}"
            ),
            ClientError::Failed { status, body } => {
                write!(f, "server answered {status}: {}", body.to_string_compact())
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters for one [`ResilientClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientStats {
    /// Delivery attempts, including first tries.
    pub attempts: u64,
    /// Retries after a loss or a retryable status.
    pub retries: u64,
    /// Transport-level losses observed.
    pub losses: u64,
    /// Responses the server flagged `"replayed": true` — retries that
    /// would have double-applied without the idempotency protocol.
    pub replayed_responses: u64,
    /// Append-chunk resumes driven by a `412` watermark.
    pub resumes: u64,
    /// Total backoff, in milliseconds (virtual unless
    /// [`ResilientClient::with_real_sleep`]).
    pub slept_ms: u64,
    /// The most backoff any single request accumulated, in milliseconds —
    /// by construction never past [`RetryPolicy::budget_ms`].
    pub max_request_slept_ms: u64,
}

/// A client that makes a lossy transport safe to use: retries with
/// exponential backoff + full jitter, obeys `retry_after_ms` hints, stamps
/// idempotency keys on every mutation, numbers chunk deliveries, and
/// resumes appends from the server's acked watermark.
pub struct ResilientClient<T: Transport> {
    transport: T,
    policy: RetryPolicy,
    rng: StdRng,
    client_id: String,
    op_counter: u64,
    stats: ClientStats,
    real_sleep: bool,
    /// Path prefix selecting the tenant namespace: empty for the default
    /// tenant, `/tenants/{t}` after [`ResilientClient::with_tenant`].
    prefix: String,
}

impl<T: Transport> ResilientClient<T> {
    /// Creates a client over `transport`. `client_id` prefixes every
    /// idempotency key, so distinct clients never collide; the jitter rng
    /// is seeded from it for deterministic tests.
    pub fn new(transport: T, client_id: impl Into<String>) -> Self {
        let client_id = client_id.into();
        let seed = client_id.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        ResilientClient {
            transport,
            policy: RetryPolicy::default(),
            rng: StdRng::seed_from_u64(seed),
            client_id,
            op_counter: 0,
            stats: ClientStats::default(),
            real_sleep: false,
            prefix: String::new(),
        }
    }

    /// Scopes every subsequent operation to a tenant's namespace by
    /// prefixing request paths with `/tenants/{tenant}` (builder style).
    /// Without it the client addresses the default tenant, exactly as
    /// before tenancy existed.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.prefix = format!("/tenants/{}", tenant.into());
        self
    }

    /// Replaces the retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Makes backoff actually block the thread instead of only accounting
    /// virtually.
    pub fn with_real_sleep(mut self, real: bool) -> Self {
        self.real_sleep = real;
        self
    }

    /// The client's counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The wrapped transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// A mutable handle on the wrapped transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// The next idempotency key: unique per client and operation, stable
    /// across the retries of that operation (the key is minted once and
    /// baked into the request that gets retried).
    fn next_key(&mut self, op: &str) -> String {
        self.op_counter += 1;
        format!("{}-{op}-{}", self.client_id, self.op_counter)
    }

    /// Sends one request until a definitive response arrives: retries
    /// transport losses and retryable statuses (`429`/`503`/`504`) with
    /// exponential backoff + full jitter, never sleeping past the policy's
    /// budget. Non-retryable error responses are returned as-is — the
    /// caller decides (the append path, for example, turns a `412` into a
    /// resume).
    pub fn request(&mut self, request: &ApiRequest) -> Result<ApiResponse, ClientError> {
        let mut slept_this_request = 0u64;
        let mut last = String::new();
        for attempt in 0..self.policy.max_attempts {
            self.stats.attempts += 1;
            if attempt > 0 {
                self.stats.retries += 1;
            }
            let hint = match self.transport.send(request) {
                Ok(response) => {
                    let retryable = matches!(
                        response.status,
                        StatusCode::TooManyRequests
                            | StatusCode::ServiceUnavailable
                            | StatusCode::GatewayTimeout
                    );
                    if !retryable {
                        if response
                            .body
                            .get("replayed")
                            .and_then(|r| r.as_bool())
                            .unwrap_or(false)
                        {
                            self.stats.replayed_responses += 1;
                        }
                        return Ok(response);
                    }
                    last = format!(
                        "{}: {}",
                        response.status,
                        response
                            .body
                            .get("error")
                            .and_then(|e| e.as_str())
                            .unwrap_or("retryable")
                    );
                    response
                        .body
                        .get("retry_after_ms")
                        .and_then(|r| r.as_i64())
                        .map(|r| r.max(0) as u64)
                        .unwrap_or(0)
                }
                Err(TransportError::Lost(why)) => {
                    self.stats.losses += 1;
                    last = why;
                    0
                }
            };
            // Full jitter over an exponentially growing cap, floored at the
            // server's own hint when it gave one.
            let cap = self
                .policy
                .max_backoff_ms
                .min(self.policy.base_backoff_ms << attempt.min(16));
            let backoff = hint + self.rng.gen_range(0..=cap);
            if slept_this_request + backoff > self.policy.budget_ms {
                return Err(ClientError::BudgetExceeded {
                    attempts: attempt + 1,
                    slept_ms: self.stats.slept_ms,
                    last,
                });
            }
            slept_this_request += backoff;
            self.stats.slept_ms += backoff;
            self.stats.max_request_slept_ms =
                self.stats.max_request_slept_ms.max(slept_this_request);
            if self.real_sleep && backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
        Err(ClientError::BudgetExceeded {
            attempts: self.policy.max_attempts,
            slept_ms: self.stats.slept_ms,
            last,
        })
    }

    /// Like [`ResilientClient::request`], but treats any non-success
    /// response as an error.
    fn request_success(&mut self, request: &ApiRequest) -> Result<ApiResponse, ClientError> {
        let response = self.request(request)?;
        if response.is_success() {
            Ok(response)
        } else {
            Err(ClientError::Failed {
                status: response.status,
                body: response.body,
            })
        }
    }

    // ----- high-level operations ---------------------------------------

    /// Registers a dataset by driving the full chunked-upload protocol:
    /// keyed begin, content-idempotent chunks, keyed finish. Returns the
    /// finish response body.
    pub fn register(
        &mut self,
        name: &str,
        location_csv: &str,
        attribute_csv: &str,
        data_csv: &str,
        chunk_lines: usize,
    ) -> Result<Json, ClientError> {
        let begin_key = self.next_key("upload-begin");
        self.request_success(&ApiRequest::post(
            format!("{}/datasets/{name}/upload/begin", self.prefix),
            Json::from_pairs([
                ("location_csv", Json::from(location_csv)),
                ("attribute_csv", Json::from(attribute_csv)),
                ("idempotency_key", Json::from(begin_key.as_str())),
            ]),
        ))?;
        for chunk in miscela_csv::split_into_chunks(data_csv, chunk_lines) {
            self.request_success(&ApiRequest::post(
                format!("{}/datasets/{name}/upload/chunk", self.prefix),
                Json::from_pairs([
                    ("index", Json::from(chunk.index)),
                    ("total", Json::from(chunk.total)),
                    ("content", Json::from(chunk.content.as_str())),
                ]),
            ))?;
        }
        let finish_key = self.next_key("upload-finish");
        let response = self.request_success(&ApiRequest::post(
            format!("{}/datasets/{name}/upload/finish", self.prefix),
            Json::from_pairs([("idempotency_key", Json::from(finish_key.as_str()))]),
        ))?;
        Ok(response.body)
    }

    /// Appends new `data.csv` rows by driving the exactly-once append
    /// protocol: keyed begin (replays the same session on retry),
    /// sequence-numbered chunks (duplicates suppressed server-side), `412`
    /// watermark resume, keyed finish (replays the summary instead of
    /// double-applying). Returns the finish response body.
    pub fn append(
        &mut self,
        name: &str,
        data_csv: &str,
        chunk_lines: usize,
    ) -> Result<Json, ClientError> {
        let begin_key = self.next_key("append-begin");
        let begin = self.request_success(&ApiRequest::post(
            format!("{}/datasets/{name}/append/begin", self.prefix),
            Json::from_pairs([("idempotency_key", Json::from(begin_key.as_str()))]),
        ))?;
        let mut session = begin
            .body
            .get("session")
            .and_then(|s| s.as_i64())
            .unwrap_or(0) as u64;
        let chunks = miscela_csv::split_into_chunks(data_csv, chunk_lines);
        let mut i = 0usize;
        while i < chunks.len() {
            let chunk = &chunks[i];
            let seq = i as u64 + 1;
            let response = self.request(&ApiRequest::post(
                format!("{}/datasets/{name}/append/chunk", self.prefix),
                Json::from_pairs([
                    ("index", Json::from(chunk.index)),
                    ("total", Json::from(chunk.total)),
                    ("content", Json::from(chunk.content.as_str())),
                    ("session", Json::from(session as i64)),
                    ("seq", Json::from(seq as i64)),
                ]),
            ))?;
            if response.status == StatusCode::PreconditionFailed {
                // The server told us exactly where it is: adopt its open
                // session and continue from its acked watermark.
                self.stats.resumes += 1;
                session = response
                    .body
                    .get("expected_session")
                    .and_then(|s| s.as_i64())
                    .unwrap_or(session as i64) as u64;
                let expected_seq = response
                    .body
                    .get("expected_seq")
                    .and_then(|s| s.as_i64())
                    .unwrap_or(1)
                    .max(1) as u64;
                i = (expected_seq - 1) as usize;
                continue;
            }
            if !response.is_success() {
                return Err(ClientError::Failed {
                    status: response.status,
                    body: response.body,
                });
            }
            i += 1;
        }
        let finish_key = self.next_key("append-finish");
        let response = self.request_success(&ApiRequest::post(
            format!("{}/datasets/{name}/append/finish", self.prefix),
            Json::from_pairs([("idempotency_key", Json::from(finish_key.as_str()))]),
        ))?;
        Ok(response.body)
    }

    /// Mines a dataset (read-only: safely retryable without a key).
    /// Returns the response body, including the serialized CapSet.
    pub fn mine(&mut self, name: &str, params: Json) -> Result<Json, ClientError> {
        let response = self.request_success(&ApiRequest::post(
            format!("{}/datasets/{name}/mine", self.prefix),
            params,
        ))?;
        Ok(response.body)
    }

    /// Batch-mines a whole parameter grid in one keyed request. `points`
    /// is an array of parameter objects (the same shape as a `mine` body);
    /// a retry after a lost response replays the original sweep body
    /// (flagged `"replayed": true`) instead of re-mining. Returns the
    /// response body.
    pub fn mine_sweep(&mut self, name: &str, points: Json) -> Result<Json, ClientError> {
        let key = self.next_key("sweep");
        let mut body = Json::object();
        body.set("points", points);
        body.set("idempotency_key", Json::from(key.as_str()));
        let response = self.request_success(&ApiRequest::post(
            format!("{}/datasets/{name}/mine/sweep", self.prefix),
            body,
        ))?;
        Ok(response.body)
    }

    /// Installs a retention policy with a keyed, exactly-once request.
    /// Returns the response body.
    pub fn set_retention(&mut self, name: &str, mut policy: Json) -> Result<Json, ClientError> {
        let key = self.next_key("retention");
        policy.set("idempotency_key", Json::from(key.as_str()));
        let response = self.request_success(&ApiRequest::post(
            format!("{}/datasets/{name}/retention", self.prefix),
            policy,
        ))?;
        Ok(response.body)
    }

    /// Deletes a dataset with a keyed request. A `404` on a retry counts
    /// as confirmation: the original delete applied, its response was
    /// lost, and the keyed replay entry did not survive (deletes remove
    /// the durability log that would have carried it).
    pub fn delete(&mut self, name: &str) -> Result<Json, ClientError> {
        let key = self.next_key("delete");
        let request = ApiRequest::delete(format!("{}/datasets/{name}", self.prefix))
            .with_query("idempotency_key", &key);
        let attempts_before = self.stats.attempts;
        let response = self.request(&request)?;
        if response.is_success() {
            return Ok(response.body);
        }
        if response.status == StatusCode::NotFound && self.stats.attempts > attempts_before + 1 {
            return Ok(Json::from_pairs([
                ("deleted", Json::from(name)),
                ("replayed", Json::from(true)),
            ]));
        }
        Err(ClientError::Failed {
            status: response.status,
            body: response.body,
        })
    }

    /// Long-polls a dataset's revision feed: returns once the revision
    /// differs from `since_revision` (pass the last revision this client
    /// observed; 0 to learn the current one) or after `deadline_ms` with
    /// `"changed": false`. Read-only and cursor-driven, so it is safely
    /// retryable without a key: a lost response just re-issues the same
    /// cursor and the next reply carries the same (or a newer) revision —
    /// the watcher resumes across faults without missing a bump. A `404`
    /// is the feed's typed close: the dataset was deleted.
    pub fn watch(
        &mut self,
        name: &str,
        since_revision: u64,
        deadline_ms: u64,
    ) -> Result<Json, ClientError> {
        let request = ApiRequest::get(format!("{}/datasets/{name}/watch", self.prefix))
            .with_query("since_revision", since_revision.to_string())
            .with_query("deadline_ms", deadline_ms.to_string());
        let response = self.request_success(&request)?;
        Ok(response.body)
    }

    /// The server-side status of an in-progress append session (if any).
    pub fn append_status(&mut self, name: &str) -> Result<Json, ClientError> {
        let response = self.request_success(&ApiRequest::get(format!(
            "{}/datasets/{name}/append",
            self.prefix
        )))?;
        Ok(response.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::MiscelaService;
    use miscela_csv::DatasetWriter;
    use miscela_datagen::SantanderGenerator;

    /// Prefix data/location/attribute CSVs plus a tail data CSV whose rows
    /// extend the prefix grid (appends must move the grid forward).
    fn small_csvs() -> (String, String, String, String) {
        let full = SantanderGenerator::small().with_scale(0.02).generate();
        let split_t = full.grid().at(full.timestamp_count() - 12).unwrap();
        let prefix = full.slice_time(full.grid().start(), split_t).unwrap();
        let tail = full.slice_time(split_t, full.grid().range().end).unwrap();
        let writer = DatasetWriter::new();
        (
            writer.data_csv(&prefix),
            writer.location_csv(&prefix),
            writer.attribute_csv(&prefix),
            writer.data_csv(&tail),
        )
    }

    fn fresh_router() -> Arc<Router> {
        Arc::new(Router::new(Arc::new(MiscelaService::new())))
    }

    #[test]
    fn clean_transport_round_trip() {
        let (data, locations, attributes, _tail) = small_csvs();
        let transport = RouterTransport::new(fresh_router());
        let mut client = ResilientClient::new(transport, "c0");
        let body = client
            .register("demo", &locations, &attributes, &data, 2_000)
            .unwrap();
        assert!(body.get("sensors").unwrap().as_i64().unwrap() > 0);
        assert_eq!(client.stats().retries, 0);
        let deleted = client.delete("demo").unwrap();
        assert_eq!(deleted.get("deleted").unwrap().as_str(), Some("demo"));
    }

    #[test]
    fn lossy_transport_converges_and_replays() {
        let (data, locations, attributes, tail) = small_csvs();
        let chaotic = ChaosTransport::new(
            RouterTransport::new(fresh_router()),
            ChaosConfig::storm(0.25),
            7,
        );
        let mut client = ResilientClient::new(chaotic, "c1");
        let body = client
            .register("demo", &locations, &attributes, &data, 1_000)
            .unwrap();
        assert!(body.get("sensors").unwrap().as_i64().unwrap() > 0);
        let appended = client.append("demo", &tail, 1_000).unwrap();
        assert_eq!(appended.get("revision").unwrap().as_i64(), Some(2));
        let stats = client.stats();
        assert!(stats.retries > 0, "storm must force retries: {stats:?}");
        assert!(
            client.transport().stats().total_faults() > 0,
            "chaos must actually inject faults"
        );
        // The budget was respected on every request.
        assert!(stats.slept_ms <= RetryPolicy::default().budget_ms * stats.attempts);
    }

    #[test]
    fn budget_is_a_hard_ceiling() {
        // A transport that loses everything: the client must give up
        // within its budget, not loop forever.
        struct BlackHole;
        impl Transport for BlackHole {
            fn send(&mut self, _request: &ApiRequest) -> Result<ApiResponse, TransportError> {
                Err(TransportError::Lost("void".to_string()))
            }
        }
        let mut client = ResilientClient::new(BlackHole, "c2").with_policy(RetryPolicy {
            max_attempts: 50,
            base_backoff_ms: 8,
            max_backoff_ms: 1_000,
            budget_ms: 100,
        });
        let err = client.request(&ApiRequest::get("/datasets")).unwrap_err();
        match err {
            ClientError::BudgetExceeded { slept_ms, .. } => {
                assert!(slept_ms <= 100, "slept {slept_ms}ms past the 100ms budget")
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn tenant_prefix_and_watch_survive_chaos() {
        let (data, locations, attributes, tail) = small_csvs();
        let router = fresh_router();
        let chaotic = ChaosTransport::new(
            RouterTransport::new(Arc::clone(&router)),
            ChaosConfig::storm(0.25),
            21,
        );
        let mut client = ResilientClient::new(chaotic, "c4").with_tenant("acme");
        client
            .register("demo", &locations, &attributes, &data, 1_000)
            .unwrap();
        // The dataset lives in acme's namespace only.
        assert_eq!(
            router.handle(&ApiRequest::get("/datasets/demo")).status,
            StatusCode::NotFound
        );
        assert!(router
            .handle(&ApiRequest::get("/tenants/acme/datasets/demo"))
            .is_success());
        // A stale cursor is answered immediately with the current revision,
        // through the lossy transport (retries re-issue the same cursor).
        let watched = client.watch("demo", 0, 1_000).unwrap();
        assert_eq!(watched.get("changed").unwrap().as_bool(), Some(true));
        assert_eq!(watched.get("revision").unwrap().as_i64(), Some(1));
        let appended = client.append("demo", &tail, 1_000).unwrap();
        assert_eq!(appended.get("revision").unwrap().as_i64(), Some(2));
        let watched = client.watch("demo", 1, 1_000).unwrap();
        assert_eq!(watched.get("changed").unwrap().as_bool(), Some(true));
        assert_eq!(watched.get("revision").unwrap().as_i64(), Some(2));
        // Watching a dataset that does not exist is the typed close.
        match client.watch("ghost", 0, 50).unwrap_err() {
            ClientError::Failed { status, .. } => assert_eq!(status, StatusCode::NotFound),
            other => panic!("expected a typed close, got {other:?}"),
        }
    }

    #[test]
    fn chaos_transport_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let (data, locations, attributes, _tail) = small_csvs();
            let chaotic = ChaosTransport::new(
                RouterTransport::new(fresh_router()),
                ChaosConfig::storm(0.3),
                seed,
            );
            let mut client = ResilientClient::new(chaotic, "c3");
            client
                .register("demo", &locations, &attributes, &data, 1_000)
                .unwrap();
            (client.transport().stats(), client.stats())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }
}
