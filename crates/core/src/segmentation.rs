//! Step (1) of MISCELA: linear segmentation.
//!
//! "We filter uninteresting data fluctuation by applying a linear
//! segmentation algorithm to time series data." (Section 2.2)
//!
//! The segmenter is greedy left-to-right: each segment is the straight line
//! joining its endpoints, extended as long as that line stays within the
//! error tolerance of every covered point. The smoothed series is the
//! reconstruction of those segments; small, noisy wiggles disappear while
//! genuine trends survive, which is exactly what the evolving-rate test
//! needs.
//!
//! # The O(n) feasible-slope cone
//!
//! The naive greedy test re-scans the whole segment on every one-point
//! extension (`max_deviation` over `[start, end]`), which is O(n·s²) for
//! mean segment length s — quadratic in segment length on smooth series,
//! exactly the shape segmentation is for. The implementation here is
//! incremental instead: a point `i` interior to the segment constrains the
//! endpoint-joining slope `m` to the interval
//! `[(vᵢ − tol − v₀)/dᵢ, (vᵢ + tol − v₀)/dᵢ]` (with `dᵢ = i − start`), so
//! the segment can absorb its next point iff the candidate slope lies in
//! the running intersection of those intervals — the *feasible slope cone*,
//! maintained as two scalars. Each extension test is O(1); the whole
//! segmentation is O(n).
//!
//! The pre-refactor sliding-window implementation is retained under
//! `#[cfg(test)]` ([`reference`]) as the equivalence oracle; fixture and
//! property tests assert both produce identical segmentations and identical
//! evolving sets downstream.

use miscela_model::TimeSeries;

/// One linear segment over grid indices `[start, end]` (inclusive).
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// First grid index of the segment.
    pub start: usize,
    /// Last grid index of the segment (inclusive).
    pub end: usize,
    /// Fitted value at `start`.
    pub start_value: f64,
    /// Fitted value at `end`.
    pub end_value: f64,
}

impl Segment {
    /// Value of the fitted line at grid index `i` (must lie within the
    /// segment).
    pub fn value_at(&self, i: usize) -> f64 {
        if self.end == self.start {
            return self.start_value;
        }
        let frac = (i - self.start) as f64 / (self.end - self.start) as f64;
        self.start_value + (self.end_value - self.start_value) * frac
    }

    /// Slope of the segment per grid step.
    pub fn slope(&self) -> f64 {
        if self.end == self.start {
            0.0
        } else {
            (self.end_value - self.start_value) / (self.end - self.start) as f64
        }
    }

    /// Number of grid points covered.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Whether the segment covers a single point.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Result of segmenting one series.
#[derive(Debug, Clone)]
pub struct Segmentation {
    /// The segments, in order, covering every present index range.
    pub segments: Vec<Segment>,
    /// Length of the original series.
    pub len: usize,
    /// Absolute deviation tolerance the segments were fitted against
    /// (`error_fraction` × value range). Stored so a front-trimmed window can
    /// prove its tolerance unchanged before splicing origin segments
    /// ([`segment_series_trimmed`]); excluded from equality because it is
    /// derived from the same inputs as the segments.
    pub tolerance: f64,
}

impl PartialEq for Segmentation {
    fn eq(&self, other: &Self) -> bool {
        self.segments == other.segments && self.len == other.len
    }
}

impl Segmentation {
    /// Reconstructs the smoothed series from the segments. Indices that were
    /// missing in the original series stay missing.
    ///
    /// Deliberately evaluates [`Segment::value_at`] per point (division and
    /// all): a hoisted per-segment reciprocal would be faster but rounds
    /// differently in the last bit, and the reconstruction must stay
    /// bit-identical to the pre-refactor pipeline so the segmentation
    /// equivalence oracles extend through the evolving sets downstream.
    pub fn reconstruct(&self, original: &TimeSeries) -> TimeSeries {
        // One contiguous view of the original (borrowed for single-chunk
        // series) and one flat output buffer: the per-point work stays a
        // plain array read/write instead of a per-index block lookup.
        let orig = original.contiguous();
        let mut out = vec![f64::NAN; self.len];
        for seg in &self.segments {
            for i in seg.start..=seg.end {
                if i < orig.len() && !orig[i].is_nan() {
                    out[i] = seg.value_at(i);
                }
            }
        }
        TimeSeries::from_values(out)
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// Greedy linear segmentation of a series in O(n).
///
/// `error_fraction` is interpreted relative to the series' value range: an
/// error tolerance of `0.02` allows each segment to deviate from the data by
/// up to 2% of `max - min`. Missing values are linearly interpolated before
/// segmentation (and stay missing in the reconstruction); fully-present
/// series are segmented straight off the raw value slice without any copy.
pub fn segment_series(series: &TimeSeries, error_fraction: f64) -> Segmentation {
    let n = series.len();
    if n == 0 {
        return Segmentation {
            segments: Vec::new(),
            len: 0,
            tolerance: 0.0,
        };
    }
    // One pass over the storage chunks: value range (interpolation never
    // leaves the range of the present values) and missingness.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut missing = 0usize;
    for chunk in series.chunks() {
        for &v in chunk {
            if v.is_nan() {
                missing += 1;
            } else {
                min = min.min(v);
                max = max.max(v);
            }
        }
    }
    if missing == n {
        // Entirely missing series: nothing to segment.
        return Segmentation {
            segments: Vec::new(),
            len: n,
            tolerance: 0.0,
        };
    }
    // The cone loop wants one contiguous slice: fully-present single-chunk
    // series borrow it straight from storage; multi-block or gappy series
    // materialize (and interpolate) one flat copy.
    let storage: std::borrow::Cow<'_, [f64]> = if missing == 0 {
        series.contiguous()
    } else {
        let mut filled = series.copy_values();
        miscela_model::interpolate_in_place(&mut filled);
        std::borrow::Cow::Owned(filled)
    };
    let values: &[f64] = &storage;
    let tolerance = error_fraction.max(0.0) * (max - min).max(1e-12);

    let mut segments = Vec::new();
    if n == 1 {
        segments.push(Segment {
            start: 0,
            end: 0,
            start_value: values[0],
            end_value: values[0],
        });
        return Segmentation {
            segments,
            len: n,
            tolerance,
        };
    }
    segment_values(values, tolerance, 0, 0, &mut segments);

    Segmentation {
        segments,
        len: n,
        tolerance,
    }
}

/// Runs the greedy feasible-slope-cone loop over `values[from..]`, pushing
/// segments whose indices are offset by `base` (the absolute grid index of
/// `values[0]`). Factored out of [`segment_series`] so the full run and the
/// tail-resume path ([`segment_series_tail`]) execute the exact same float
/// operations — byte-identical segmentations are what the append
/// equivalence oracles assert.
fn segment_values(
    values: &[f64],
    tolerance: f64,
    base: usize,
    from: usize,
    segments: &mut Vec<Segment>,
) {
    let n = values.len();
    let mut start = from;
    while start < n - 1 {
        let end = greedy_end(values, tolerance, start);
        segments.push(Segment {
            start: base + start,
            end: base + end,
            start_value: values[start],
            end_value: values[end],
        });
        start = end;
    }
}

/// Runs one feasible-slope-cone extension from `start` and returns the
/// greedy segment end. Factored out of [`segment_values`] so the
/// front-trim derivation ([`segment_series_trimmed`]) executes the exact
/// same float operations per produced segment as a cold run.
fn greedy_end(values: &[f64], tolerance: f64, start: usize) -> usize {
    let n = values.len();
    let v0 = values[start];
    // A two-point segment fits its endpoints exactly, so the first
    // candidate end is always accepted; from there the feasible slope
    // cone over the interior points decides each one-point extension in
    // O(1) amortized. The cone bounds are kept as fractions
    // (`num / den`, all denominators positive) and every comparison is
    // cross-multiplied, so the hot loop performs no division at all —
    // on noisy series the segments are short and per-point `divsd`
    // latency would otherwise dominate the whole front end.
    let mut end = start + 1;
    let mut lo_num = f64::NEG_INFINITY;
    let mut lo_den = 1.0f64;
    let mut hi_num = f64::INFINITY;
    let mut hi_den = 1.0f64;
    while end + 1 < n {
        // `end` becomes an interior point of the extended candidate:
        // tighten the cone with its slope interval
        // `[(v - tol - v0)/d, (v + tol - v0)/d]`.
        let d = (end - start) as f64;
        let lo_cand = values[end] - tolerance - v0;
        if lo_cand * lo_den > lo_num * d {
            lo_num = lo_cand;
            lo_den = d;
        }
        let hi_cand = values[end] + tolerance - v0;
        if hi_cand * hi_den < hi_num * d {
            hi_num = hi_cand;
            hi_den = d;
        }
        // Candidate slope `(values[end + 1] - v0) / (d + 1)` must lie
        // inside the cone.
        let m_num = values[end + 1] - v0;
        let m_den = d + 1.0;
        if m_num * lo_den < lo_num * m_den || m_num * hi_den > hi_num * m_den {
            break;
        }
        end += 1;
    }
    end
}

/// Tail-resume segmentation for an appended series: re-segments only from
/// the start of the last (unstable) segment of `prev`, reusing every
/// earlier segment verbatim.
///
/// `prev` must be the segmentation of the series' prefix of length
/// `old_len` (same `error_fraction`); the caller guarantees the first
/// `old_len` values are unchanged. Returns the new segmentation together
/// with `changed_from`, the first grid index whose smoothed reconstruction
/// may differ from `prev`'s (`0` when the resume conditions do not hold and
/// a full recompute ran; `series.len()` when nothing was appended).
///
/// The greedy cone segmenter is left-to-right deterministic, so every
/// segment that closed on a failed extension test is final — only the last
/// segment (which closed by running out of data) can change. Resuming is
/// only byte-identical to a cold full run when the global context the
/// segmenter consults is itself unchanged, so the resume path falls back to
/// [`segment_series`] whenever the append could have shifted it:
///
/// * appended present values outside the prefix's `[min, max]` (they would
///   change the tolerance, which is relative to the value range);
/// * a trailing missing run in the prefix (its interpolation gains a right
///   neighbour and changes retroactively);
/// * an all-missing or sub-2-point prefix, or a `prev` that does not match
///   `old_len`.
pub fn segment_series_tail(
    series: &TimeSeries,
    error_fraction: f64,
    prev: &Segmentation,
    old_len: usize,
) -> (Segmentation, usize) {
    let n = series.len();
    let full = || (segment_series(series, error_fraction), 0);
    if prev.len != old_len || old_len < 2 || n < old_len {
        return full();
    }
    if n == old_len {
        return (prev.clone(), n);
    }
    // Prefix value range: the tolerance of the cold run on the prefix.
    // Branchless select — a NaN comparison is false, so missing values
    // never update either bound and the scan needs no `is_nan` branch.
    // The scan walks the shared storage blocks in place.
    let mut pmin = f64::INFINITY;
    let mut pmax = f64::NEG_INFINITY;
    let mut remaining = old_len;
    for chunk in series.chunks() {
        let take = remaining.min(chunk.len());
        for &v in &chunk[..take] {
            pmin = if v < pmin { v } else { pmin };
            pmax = if v > pmax { v } else { pmax };
        }
        remaining -= take;
        if remaining == 0 {
            break;
        }
    }
    if pmin > pmax || series.raw(old_len - 1).is_nan() {
        // All-missing prefix, or a trailing gap whose interpolation the
        // append changes retroactively.
        return full();
    }
    // Appended values outside the prefix range change the tolerance
    // (NaN compares false on both sides, so missing appends never do).
    // Chunk-level iteration: the appended range lives in the last chunks.
    let mut g = 0usize;
    for chunk in series.chunks() {
        let end = g + chunk.len();
        if end > old_len {
            let from = old_len.saturating_sub(g);
            if chunk[from..].iter().any(|&v| v < pmin || v > pmax) {
                return full();
            }
        }
        g = end;
    }
    let Some(last) = prev.segments.last() else {
        return full();
    };
    if last.end + 1 != old_len {
        return full();
    }
    let resume = last.start;
    // The window needs a present left anchor so its interpolation matches
    // the full series' interpolation point-for-point.
    let Some(wstart) = (0..=resume).rev().find(|&i| !series.raw(i).is_nan()) else {
        return full();
    };
    // Materialize only the re-segmented window `[wstart, n)` — O(last
    // segment + appended tail), not O(series).
    let mut window = series.copy_range(wstart, n);
    if window.iter().any(|v| v.is_nan()) {
        miscela_model::interpolate_in_place(&mut window);
    }
    let values: &[f64] = &window;
    let tolerance = error_fraction.max(0.0) * (pmax - pmin).max(1e-12);
    let mut segments = prev.segments[..prev.segments.len() - 1].to_vec();
    segment_values(values, tolerance, wstart, resume - wstart, &mut segments);
    (
        Segmentation {
            segments,
            len: n,
            tolerance,
        },
        resume,
    )
}

/// Derives the segmentation of a front-trimmed window from the segmentation
/// of its untrimmed origin, reusing origin segments instead of re-running
/// the cone loop over the whole window.
///
/// `prev` must be the segmentation of the origin window (length
/// `series.len() + dropped`, same `error_fraction`) whose first `dropped`
/// values were removed to produce `series`; the surviving values are
/// unchanged. Returns the new segmentation — byte-identical to a cold
/// [`segment_series`] run on `series` — together with `resync`, the first
/// trimmed-window index from which every remaining segment was spliced from
/// `prev` (rebased by `-dropped`). Smoothed reconstructions agree with the
/// origin's (shifted) from `resync` on, so an evolving-set derivation only
/// needs to rescan timestamps `<= resync`. `resync == series.len()` means no
/// splice happened and everything was recomputed (still byte-identical).
///
/// Returns `None` when reuse cannot be proven byte-identical — when the trim
/// changed the value range (and with it the tolerance every origin segment
/// was fitted against) or `prev` does not match the expected origin length.
///
/// Splice soundness: the greedy cone segmenter is memoryless — the segment
/// produced from index `i` depends only on `values[i..]` and the tolerance.
/// Interior interpolation anchors are pairs of present values, so
/// trimmed-window values at indices at or past the first present index equal
/// the origin's values shifted by `dropped` (only the leading gap, which
/// loses its left anchor, interpolates differently). Once the greedy run
/// reaches such an index whose origin image is an origin segment start, a
/// cold run would reproduce the origin's remaining segments verbatim, so
/// they are spliced without re-deriving them.
pub fn segment_series_trimmed(
    series: &TimeSeries,
    error_fraction: f64,
    prev: &Segmentation,
    dropped: usize,
) -> Option<(Segmentation, usize)> {
    let n = series.len();
    if prev.len != n + dropped {
        return None;
    }
    if n < 2 {
        // Degenerate windows are as cheap cold as derived.
        return Some((segment_series(series, error_fraction), n));
    }
    // Range, missingness and first present index of the trimmed window, one
    // chunk pass as in the cold path.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut missing = 0usize;
    let mut first_present = n;
    let mut idx = 0usize;
    for chunk in series.chunks() {
        for &v in chunk {
            if v.is_nan() {
                missing += 1;
            } else {
                if first_present == n {
                    first_present = idx;
                }
                min = min.min(v);
                max = max.max(v);
            }
            idx += 1;
        }
    }
    if missing == n {
        return Some((segment_series(series, error_fraction), n));
    }
    let tolerance = error_fraction.max(0.0) * (max - min).max(1e-12);
    if tolerance.to_bits() != prev.tolerance.to_bits() {
        // The trim changed the value range: every origin segment was fitted
        // against a different tolerance and none can be reused.
        return None;
    }
    let storage: std::borrow::Cow<'_, [f64]> = if missing == 0 {
        series.contiguous()
    } else {
        let mut filled = series.copy_values();
        miscela_model::interpolate_in_place(&mut filled);
        std::borrow::Cow::Owned(filled)
    };
    let values: &[f64] = &storage;

    let mut segments: Vec<Segment> = Vec::new();
    let mut start = 0usize;
    let mut resync = n;
    while start < n - 1 {
        // Resync test at the segment start: past the first present index the
        // window's (interpolated) values equal the origin's shifted by
        // `dropped`, so hitting an origin segment start means the rest of a
        // cold run is the origin's tail verbatim.
        if start >= first_present {
            if let Ok(pos) = prev
                .segments
                .binary_search_by(|s| s.start.cmp(&(start + dropped)))
            {
                for s in &prev.segments[pos..] {
                    segments.push(Segment {
                        start: s.start - dropped,
                        end: s.end - dropped,
                        start_value: s.start_value,
                        end_value: s.end_value,
                    });
                }
                resync = start;
                break;
            }
        }
        let end = greedy_end(values, tolerance, start);
        segments.push(Segment {
            start,
            end,
            start_value: values[start],
            end_value: values[end],
        });
        start = end;
    }
    Some((
        Segmentation {
            segments,
            len: n,
            tolerance,
        },
        resync,
    ))
}

/// Convenience helper: smooths a series by segmentation and reconstruction.
/// With `error_fraction == 0.0` the series is returned unchanged (every
/// point is its own breakpoint).
pub fn smooth(series: &TimeSeries, error_fraction: f64) -> TimeSeries {
    if error_fraction <= 0.0 {
        return series.clone();
    }
    segment_series(series, error_fraction).reconstruct(series)
}

/// The pre-refactor sliding-window segmenter, retained verbatim as the
/// equivalence oracle for the O(n) feasible-slope-cone implementation. Only
/// compiled into test builds.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// Maximum absolute deviation between the observed values and the
    /// straight line joining the endpoints of `values[start..=end]`.
    fn max_deviation(values: &[f64], start: usize, end: usize) -> f64 {
        if end <= start + 1 {
            return 0.0;
        }
        let v0 = values[start];
        let v1 = values[end];
        let span = (end - start) as f64;
        let mut worst: f64 = 0.0;
        for (offset, v) in values[start..=end].iter().enumerate() {
            let fitted = v0 + (v1 - v0) * offset as f64 / span;
            worst = worst.max((v - fitted).abs());
        }
        worst
    }

    /// The original greedy sliding-window segmentation: O(n·s) per
    /// extension scan, O(n·s²) overall on smooth series.
    pub(crate) fn segment_series_reference(
        series: &TimeSeries,
        error_fraction: f64,
    ) -> Segmentation {
        let n = series.len();
        if n == 0 {
            return Segmentation {
                segments: Vec::new(),
                len: 0,
                tolerance: 0.0,
            };
        }
        let filled = series.interpolate_missing();
        if filled.present_count() == 0 {
            return Segmentation {
                segments: Vec::new(),
                len: n,
                tolerance: 0.0,
            };
        }
        let values: Vec<f64> = (0..n).map(|i| filled.get(i).unwrap_or(0.0)).collect();
        let range = {
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (max - min).max(1e-12)
        };
        let tolerance = error_fraction.max(0.0) * range;

        let mut segments = Vec::new();
        let mut start = 0usize;
        let mut end = (start + 1).min(n - 1);
        while start < n {
            if start == n - 1 {
                segments.push(Segment {
                    start,
                    end: start,
                    start_value: values[start],
                    end_value: values[start],
                });
                break;
            }
            let mut best_end = end;
            while best_end + 1 < n && max_deviation(&values, start, best_end + 1) <= tolerance {
                best_end += 1;
            }
            segments.push(Segment {
                start,
                end: best_end,
                start_value: values[start],
                end_value: values[best_end],
            });
            start = best_end;
            if start == n - 1 {
                break;
            }
            end = start + 1;
        }

        Segmentation {
            segments,
            len: n,
            tolerance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_is_one_segment() {
        let s = TimeSeries::from_values((0..50).map(|i| 2.0 * i as f64 + 1.0).collect());
        let seg = segment_series(&s, 0.01);
        assert_eq!(seg.segment_count(), 1);
        let rec = seg.reconstruct(&s);
        for i in 0..50 {
            assert!((rec.get(i).unwrap() - s.get(i).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn piecewise_line_finds_breakpoint() {
        // Up for 20 steps, down for 20 steps: expect ~2 segments.
        let mut values = Vec::new();
        for i in 0..20 {
            values.push(i as f64);
        }
        for i in 0..20 {
            values.push(19.0 - i as f64);
        }
        let s = TimeSeries::from_values(values);
        let seg = segment_series(&s, 0.02);
        assert!(seg.segment_count() <= 3, "got {}", seg.segment_count());
        assert!(seg.segment_count() >= 2);
    }

    #[test]
    fn noise_is_smoothed_away() {
        // A rising trend with small alternating noise: with a tolerance larger
        // than the noise, the reconstruction should be (nearly) monotone — the
        // spurious decreases introduced by the noise disappear.
        let n = 200;
        let s = TimeSeries::from_values(
            (0..n)
                .map(|i| i as f64 * 0.1 + if i % 2 == 0 { 0.2 } else { -0.2 })
                .collect(),
        );
        let smoothed = smooth(&s, 0.05);
        let decreases = |ts: &TimeSeries| {
            (1..ts.len())
                .filter_map(|i| ts.delta(i))
                .filter(|d| *d < -1e-9)
                .count()
        };
        assert!(decreases(&s) > 50);
        assert!(
            decreases(&smoothed) < decreases(&s) / 4,
            "smoothed still has {} decreases",
            decreases(&smoothed)
        );
    }

    #[test]
    fn large_jumps_survive_smoothing() {
        // A step function: the jump must not be smoothed away.
        let mut values = vec![0.0; 30];
        values.extend(vec![10.0; 30]);
        let s = TimeSeries::from_values(values);
        let smoothed = smooth(&s, 0.05);
        let max_delta = (1..smoothed.len())
            .filter_map(|i| smoothed.delta(i))
            .fold(0.0f64, |a, d| a.max(d.abs()));
        assert!(max_delta > 5.0, "jump was flattened to {max_delta}");
    }

    #[test]
    fn missing_values_stay_missing() {
        let s = TimeSeries::from_options(&[Some(1.0), None, Some(3.0), Some(4.0), None]);
        let seg = segment_series(&s, 0.1);
        let rec = seg.reconstruct(&s);
        assert_eq!(rec.len(), 5);
        assert!(!rec.is_present(1));
        assert!(!rec.is_present(4));
        assert!(rec.is_present(0));
    }

    #[test]
    fn fully_missing_series() {
        let s = TimeSeries::missing(10);
        let seg = segment_series(&s, 0.1);
        assert_eq!(seg.segment_count(), 0);
        let rec = seg.reconstruct(&s);
        assert_eq!(rec.present_count(), 0);
        assert_eq!(rec.len(), 10);
    }

    #[test]
    fn empty_and_single_point_series() {
        let empty = TimeSeries::from_values(vec![]);
        assert_eq!(segment_series(&empty, 0.1).segment_count(), 0);
        let single = TimeSeries::from_values(vec![5.0]);
        let seg = segment_series(&single, 0.1);
        assert_eq!(seg.segment_count(), 1);
        assert_eq!(seg.segments[0].len(), 1);
        assert_eq!(seg.segments[0].slope(), 0.0);
    }

    #[test]
    fn zero_error_returns_original() {
        let s = TimeSeries::from_values(vec![1.0, 5.0, 2.0, 8.0]);
        let out = smooth(&s, 0.0);
        assert_eq!(out, s);
    }

    #[test]
    fn segment_value_interpolation() {
        let seg = Segment {
            start: 10,
            end: 20,
            start_value: 0.0,
            end_value: 10.0,
        };
        assert!((seg.value_at(15) - 5.0).abs() < 1e-12);
        assert!((seg.slope() - 1.0).abs() < 1e-12);
        assert_eq!(seg.len(), 11);
    }

    /// Asserts the O(n) cone segmenter matches the retained oracle exactly:
    /// same segments, and identical evolving sets downstream of
    /// reconstruction.
    fn assert_matches_oracle(series: &TimeSeries, error_fraction: f64, epsilon: f64) {
        let fast = segment_series(series, error_fraction);
        let oracle = reference::segment_series_reference(series, error_fraction);
        assert_eq!(
            fast, oracle,
            "segmentations diverge (error_fraction={error_fraction})"
        );
        let fast_smoothed = fast.reconstruct(series);
        let oracle_smoothed = oracle.reconstruct(series);
        // Point-wise Option comparison: raw `PartialEq` would fail on the
        // NaN encoding of missing values (NaN != NaN).
        assert_eq!(fast_smoothed.len(), oracle_smoothed.len());
        for i in 0..fast_smoothed.len() {
            assert_eq!(fast_smoothed.get(i), oracle_smoothed.get(i), "index {i}");
        }
        let fast_ev = crate::evolving::extract_evolving(&fast_smoothed, epsilon);
        let oracle_ev = crate::evolving::extract_evolving(&oracle_smoothed, epsilon);
        assert_eq!(fast_ev, oracle_ev, "evolving sets diverge downstream");
    }

    #[test]
    fn cone_matches_oracle_on_fixtures() {
        let smooth_sine =
            TimeSeries::from_values((0..400).map(|i| (i as f64 * 0.05).sin() * 5.0).collect());
        let noisy_trend = TimeSeries::from_values(
            (0..300)
                .map(|i| i as f64 * 0.1 + if i % 2 == 0 { 0.3 } else { -0.3 })
                .collect(),
        );
        let step = {
            let mut v = vec![0.0; 40];
            v.extend(vec![10.0; 40]);
            TimeSeries::from_values(v)
        };
        let constant = TimeSeries::from_values(vec![3.25; 64]);
        let single = TimeSeries::from_values(vec![7.5]);
        let two = TimeSeries::from_values(vec![1.0, 4.0]);
        let all_missing = TimeSeries::missing(25);
        let nan_gaps = TimeSeries::from_options(
            &(0..120)
                .map(|i| {
                    if i % 11 == 3 || (40..47).contains(&i) {
                        None
                    } else {
                        Some((i as f64 * 0.2).cos() * 2.0 + i as f64 * 0.05)
                    }
                })
                .collect::<Vec<_>>(),
        );
        let leading_trailing_gaps = TimeSeries::from_options(&[
            None,
            None,
            Some(1.0),
            Some(2.0),
            Some(2.5),
            None,
            Some(4.0),
            None,
        ]);
        for series in [
            &smooth_sine,
            &noisy_trend,
            &step,
            &constant,
            &single,
            &two,
            &all_missing,
            &nan_gaps,
            &leading_trailing_gaps,
        ] {
            for error_fraction in [0.005, 0.02, 0.05, 0.2, 0.9] {
                assert_matches_oracle(series, error_fraction, 0.3);
            }
        }
    }

    mod equivalence_proptest {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// The O(n) cone segmenter and the retained sliding-window
            /// oracle produce identical segmentations — and identical
            /// evolving sets downstream — on randomized series with NaN
            /// gaps.
            #[test]
            fn cone_matches_oracle(
                values in proptest::collection::vec(-40.0f64..40.0, 1..160),
                gap_seed in 0usize..13,
                error_fraction in 0.001f64..0.25,
                epsilon in 0.01f64..2.0,
            ) {
                // Knock out a deterministic subset of points so NaN gaps
                // (and the interpolation path) are exercised too.
                let options: Vec<Option<f64>> = values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| ((i * 7 + gap_seed) % 13 != 0).then_some(v))
                    .collect();
                let series = TimeSeries::from_options(&options);
                assert_matches_oracle(&series, error_fraction, epsilon);
            }
        }
    }

    /// Asserts the tail-resume segmentation of `series` split at `split`
    /// equals a cold full run, and that `changed_from` is honest (every
    /// smoothed value before it is identical to the prefix run's).
    fn assert_tail_matches_full(series: &TimeSeries, error_fraction: f64, split: usize) {
        let prefix = series.window(0, split);
        let prev = segment_series(&prefix, error_fraction);
        let (resumed, changed_from) = segment_series_tail(series, error_fraction, &prev, split);
        let cold = segment_series(series, error_fraction);
        assert_eq!(
            resumed, cold,
            "tail resume diverges (split={split}, error_fraction={error_fraction})"
        );
        let rec_prev = prev.reconstruct(&prefix);
        let rec_new = resumed.reconstruct(series);
        for i in 0..changed_from.min(split) {
            assert_eq!(rec_prev.get(i), rec_new.get(i), "changed_from lied at {i}");
        }
    }

    #[test]
    fn tail_resume_matches_full_on_fixtures() {
        let smooth_sine =
            TimeSeries::from_values((0..400).map(|i| (i as f64 * 0.05).sin() * 5.0).collect());
        let noisy_trend = TimeSeries::from_values(
            (0..300)
                .map(|i| i as f64 * 0.1 + if i % 2 == 0 { 0.3 } else { -0.3 })
                .collect(),
        );
        // A step in the appended tail: outside the prefix range for small
        // splits, exercising the tolerance-changed fallback.
        let late_step = {
            let mut v = vec![1.0; 80];
            v.extend(vec![10.0; 20]);
            TimeSeries::from_values(v)
        };
        let constant = TimeSeries::from_values(vec![3.25; 64]);
        let all_missing = TimeSeries::missing(25);
        let nan_gaps = TimeSeries::from_options(
            &(0..120)
                .map(|i| {
                    if i % 11 == 3 || (40..47).contains(&i) {
                        None
                    } else {
                        Some((i as f64 * 0.2).cos() * 2.0 + i as f64 * 0.05)
                    }
                })
                .collect::<Vec<_>>(),
        );
        // A trailing gap right at a split point (44/45/46 fall inside the
        // missing run), exercising the trailing-gap fallback.
        for series in [
            &smooth_sine,
            &noisy_trend,
            &late_step,
            &constant,
            &all_missing,
            &nan_gaps,
        ] {
            let n = series.len();
            for split in [
                0,
                1,
                2,
                3,
                n / 3,
                45,
                n.saturating_sub(2),
                n.saturating_sub(1),
                n,
            ] {
                let split = split.min(n);
                for error_fraction in [0.005, 0.05, 0.2] {
                    assert_tail_matches_full(series, error_fraction, split);
                }
            }
        }
    }

    #[test]
    fn tail_resume_shape_mismatches_fall_back() {
        let series =
            TimeSeries::from_values((0..100).map(|i| (i as f64 * 0.05).sin() * 5.0).collect());
        let cold = segment_series(&series, 0.05);
        // A prev whose recorded length disagrees with old_len falls back.
        let bogus = Segmentation {
            segments: Vec::new(),
            len: 7,
            tolerance: 0.0,
        };
        let (seg, changed_from) = segment_series_tail(&series, 0.05, &bogus, 50);
        assert_eq!(seg, cold);
        assert_eq!(changed_from, 0);
        // Nothing appended: the previous segmentation is returned verbatim.
        let (seg, changed_from) = segment_series_tail(&series, 0.05, &cold, 100);
        assert_eq!(seg, cold);
        assert_eq!(changed_from, 100);
    }

    /// Sawtooth plus a small deterministic residue. Both components repeat
    /// exactly (periods 12 and 13), so every suffix of at least 156 points
    /// attains the same value range bit-for-bit — the precondition for
    /// front-trim segment reuse.
    fn periodic_values(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i % 12) as f64) * 2.0 + ((i.wrapping_mul(2654435761)) % 13) as f64 * 0.01)
            .collect()
    }

    #[test]
    fn trimmed_derivation_matches_cold() {
        let n = 400;
        let mut vals = periodic_values(n);
        // Interior gaps exercise the interpolation-equivalence argument.
        for i in [30usize, 31, 77, 140, 141, 142, 320] {
            vals[i] = f64::NAN;
        }
        let series = TimeSeries::from_values(vals.clone());
        for error_fraction in [0.01, 0.05, 0.2] {
            let origin = segment_series(&series, error_fraction);
            for d in [0usize, 1, 5, 64, 128] {
                let trimmed = TimeSeries::from_values(vals[d..].to_vec());
                let cold = segment_series(&trimmed, error_fraction);
                let (derived, resync) =
                    segment_series_trimmed(&trimmed, error_fraction, &origin, d)
                        .unwrap_or_else(|| panic!("fell back for d={d} ef={error_fraction}"));
                assert_eq!(derived, cold);
                assert_eq!(derived.tolerance.to_bits(), cold.tolerance.to_bits());
                assert!(resync <= trimmed.len());
                if d == 0 {
                    // No trim: the whole origin splices back immediately.
                    assert_eq!(resync, 0);
                    assert_eq!(derived, origin);
                }
            }
        }
    }

    #[test]
    fn trimmed_derivation_survives_a_trimmed_leading_gap() {
        // The trim lands inside a gap: the new window starts with missing
        // values whose interpolation loses its left anchor. The derivation
        // must still match cold (the resync test refuses indices below the
        // first present one).
        let n = 380;
        let mut vals = periodic_values(n);
        for v in vals.iter_mut().take(70).skip(60) {
            *v = f64::NAN;
        }
        let series = TimeSeries::from_values(vals.clone());
        let origin = segment_series(&series, 0.05);
        for d in [61usize, 65, 69] {
            let trimmed = TimeSeries::from_values(vals[d..].to_vec());
            let cold = segment_series(&trimmed, 0.05);
            let (derived, _) = segment_series_trimmed(&trimmed, 0.05, &origin, d)
                .unwrap_or_else(|| panic!("fell back for d={d}"));
            assert_eq!(derived, cold);
        }
    }

    #[test]
    fn trimmed_derivation_falls_back_when_range_changes() {
        // The global max lives only in the dropped prefix, so the trimmed
        // window's tolerance differs and no origin segment can be reused.
        let mut vals: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        vals[3] = 50.0;
        let series = TimeSeries::from_values(vals.clone());
        let origin = segment_series(&series, 0.05);
        let trimmed = TimeSeries::from_values(vals[10..].to_vec());
        assert!(segment_series_trimmed(&trimmed, 0.05, &origin, 10).is_none());
        // A prev whose recorded length disagrees with the trim also bails.
        assert!(segment_series_trimmed(&trimmed, 0.05, &origin, 9).is_none());
    }

    mod tail_resume_proptest {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// For any series, NaN-gap pattern, and split point, resuming
            /// segmentation over the appended tail is byte-identical to a
            /// cold full run.
            #[test]
            fn tail_resume_matches_full(
                values in proptest::collection::vec(-40.0f64..40.0, 2..160),
                gap_seed in 0usize..13,
                error_fraction in 0.001f64..0.25,
                split_ppm in 0u32..1_000_000,
            ) {
                let options: Vec<Option<f64>> = values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| ((i * 7 + gap_seed) % 13 != 0).then_some(v))
                    .collect();
                let series = TimeSeries::from_options(&options);
                let split = (series.len() as u64 * split_ppm as u64 / 1_000_000) as usize;
                assert_tail_matches_full(&series, error_fraction, split);
            }
        }
    }

    #[test]
    fn segments_cover_whole_series_contiguously() {
        let s = TimeSeries::from_values((0..97).map(|i| ((i as f64) * 0.3).sin() * 5.0).collect());
        let seg = segment_series(&s, 0.05);
        assert_eq!(seg.segments.first().unwrap().start, 0);
        assert_eq!(seg.segments.last().unwrap().end, 96);
        for w in seg.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must share breakpoints");
        }
        // Reconstruction error bounded by the tolerance (5% of range=10).
        let rec = seg.reconstruct(&s);
        for i in 0..97 {
            assert!((rec.get(i).unwrap() - s.get(i).unwrap()).abs() <= 0.5 + 1e-9);
        }
    }
}
