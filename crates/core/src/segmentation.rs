//! Step (1) of MISCELA: linear segmentation.
//!
//! "We filter uninteresting data fluctuation by applying a linear
//! segmentation algorithm to time series data." (Section 2.2)
//!
//! The implementation is bottom-up piecewise-linear approximation: the
//! series starts as a chain of two-point segments which are repeatedly
//! merged (cheapest merge first) while the merge's maximum deviation from
//! the fitted line stays within the error tolerance. The smoothed series is
//! the reconstruction of those segments; small, noisy wiggles disappear
//! while genuine trends survive, which is exactly what the evolving-rate
//! test needs.

use miscela_model::TimeSeries;

/// One linear segment over grid indices `[start, end]` (inclusive).
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// First grid index of the segment.
    pub start: usize,
    /// Last grid index of the segment (inclusive).
    pub end: usize,
    /// Fitted value at `start`.
    pub start_value: f64,
    /// Fitted value at `end`.
    pub end_value: f64,
}

impl Segment {
    /// Value of the fitted line at grid index `i` (must lie within the
    /// segment).
    pub fn value_at(&self, i: usize) -> f64 {
        if self.end == self.start {
            return self.start_value;
        }
        let frac = (i - self.start) as f64 / (self.end - self.start) as f64;
        self.start_value + (self.end_value - self.start_value) * frac
    }

    /// Slope of the segment per grid step.
    pub fn slope(&self) -> f64 {
        if self.end == self.start {
            0.0
        } else {
            (self.end_value - self.start_value) / (self.end - self.start) as f64
        }
    }

    /// Number of grid points covered.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Whether the segment covers a single point.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Result of segmenting one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Segmentation {
    /// The segments, in order, covering every present index range.
    pub segments: Vec<Segment>,
    /// Length of the original series.
    pub len: usize,
}

impl Segmentation {
    /// Reconstructs the smoothed series from the segments. Indices that were
    /// missing in the original series stay missing.
    pub fn reconstruct(&self, original: &TimeSeries) -> TimeSeries {
        let mut out = TimeSeries::missing(self.len);
        for seg in &self.segments {
            for i in seg.start..=seg.end {
                if original.is_present(i) {
                    out.set(i, seg.value_at(i));
                }
            }
        }
        out
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// Maximum absolute deviation between the observed values and the straight
/// line joining the endpoints of `values[start..=end]`.
fn max_deviation(values: &[f64], start: usize, end: usize) -> f64 {
    if end <= start + 1 {
        return 0.0;
    }
    let v0 = values[start];
    let v1 = values[end];
    let span = (end - start) as f64;
    let mut worst: f64 = 0.0;
    for (offset, v) in values[start..=end].iter().enumerate() {
        let fitted = v0 + (v1 - v0) * offset as f64 / span;
        worst = worst.max((v - fitted).abs());
    }
    worst
}

/// Bottom-up linear segmentation of a series.
///
/// `error_fraction` is interpreted relative to the series' value range: an
/// error tolerance of `0.02` allows each segment to deviate from the data by
/// up to 2% of `max - min`. Missing values are linearly interpolated before
/// segmentation (and stay missing in the reconstruction).
pub fn segment_series(series: &TimeSeries, error_fraction: f64) -> Segmentation {
    let n = series.len();
    if n == 0 {
        return Segmentation {
            segments: Vec::new(),
            len: 0,
        };
    }
    let filled = series.interpolate_missing();
    if filled.present_count() == 0 {
        // Entirely missing series: nothing to segment.
        return Segmentation {
            segments: Vec::new(),
            len: n,
        };
    }
    let values: Vec<f64> = (0..n).map(|i| filled.get(i).unwrap_or(0.0)).collect();
    let range = {
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (max - min).max(1e-12)
    };
    let tolerance = error_fraction.max(0.0) * range;

    // Greedy left-to-right sliding-window segmentation: extend the current
    // segment while the straight line through its endpoints stays within the
    // tolerance of every covered point. This is O(n · s) where s is the mean
    // segment length, which is fast enough for paper-scale series and
    // produces the same qualitative smoothing as classical bottom-up merging.
    let mut segments = Vec::new();
    let mut start = 0usize;
    let mut end = (start + 1).min(n - 1);
    while start < n {
        if start == n - 1 {
            segments.push(Segment {
                start,
                end: start,
                start_value: values[start],
                end_value: values[start],
            });
            break;
        }
        // Extend as far as the tolerance allows.
        let mut best_end = end;
        while best_end + 1 < n && max_deviation(&values, start, best_end + 1) <= tolerance {
            best_end += 1;
        }
        segments.push(Segment {
            start,
            end: best_end,
            start_value: values[start],
            end_value: values[best_end],
        });
        start = best_end;
        if start == n - 1 {
            break;
        }
        end = start + 1;
    }

    Segmentation { segments, len: n }
}

/// Convenience helper: smooths a series by segmentation and reconstruction.
/// With `error_fraction == 0.0` the series is returned unchanged (every
/// point is its own breakpoint).
pub fn smooth(series: &TimeSeries, error_fraction: f64) -> TimeSeries {
    if error_fraction <= 0.0 {
        return series.clone();
    }
    segment_series(series, error_fraction).reconstruct(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_is_one_segment() {
        let s = TimeSeries::from_values((0..50).map(|i| 2.0 * i as f64 + 1.0).collect());
        let seg = segment_series(&s, 0.01);
        assert_eq!(seg.segment_count(), 1);
        let rec = seg.reconstruct(&s);
        for i in 0..50 {
            assert!((rec.get(i).unwrap() - s.get(i).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn piecewise_line_finds_breakpoint() {
        // Up for 20 steps, down for 20 steps: expect ~2 segments.
        let mut values = Vec::new();
        for i in 0..20 {
            values.push(i as f64);
        }
        for i in 0..20 {
            values.push(19.0 - i as f64);
        }
        let s = TimeSeries::from_values(values);
        let seg = segment_series(&s, 0.02);
        assert!(seg.segment_count() <= 3, "got {}", seg.segment_count());
        assert!(seg.segment_count() >= 2);
    }

    #[test]
    fn noise_is_smoothed_away() {
        // A rising trend with small alternating noise: with a tolerance larger
        // than the noise, the reconstruction should be (nearly) monotone — the
        // spurious decreases introduced by the noise disappear.
        let n = 200;
        let s = TimeSeries::from_values(
            (0..n)
                .map(|i| i as f64 * 0.1 + if i % 2 == 0 { 0.2 } else { -0.2 })
                .collect(),
        );
        let smoothed = smooth(&s, 0.05);
        let decreases = |ts: &TimeSeries| {
            (1..ts.len())
                .filter_map(|i| ts.delta(i))
                .filter(|d| *d < -1e-9)
                .count()
        };
        assert!(decreases(&s) > 50);
        assert!(
            decreases(&smoothed) < decreases(&s) / 4,
            "smoothed still has {} decreases",
            decreases(&smoothed)
        );
    }

    #[test]
    fn large_jumps_survive_smoothing() {
        // A step function: the jump must not be smoothed away.
        let mut values = vec![0.0; 30];
        values.extend(vec![10.0; 30]);
        let s = TimeSeries::from_values(values);
        let smoothed = smooth(&s, 0.05);
        let max_delta = (1..smoothed.len())
            .filter_map(|i| smoothed.delta(i))
            .fold(0.0f64, |a, d| a.max(d.abs()));
        assert!(max_delta > 5.0, "jump was flattened to {max_delta}");
    }

    #[test]
    fn missing_values_stay_missing() {
        let s = TimeSeries::from_options(&[Some(1.0), None, Some(3.0), Some(4.0), None]);
        let seg = segment_series(&s, 0.1);
        let rec = seg.reconstruct(&s);
        assert_eq!(rec.len(), 5);
        assert!(!rec.is_present(1));
        assert!(!rec.is_present(4));
        assert!(rec.is_present(0));
    }

    #[test]
    fn fully_missing_series() {
        let s = TimeSeries::missing(10);
        let seg = segment_series(&s, 0.1);
        assert_eq!(seg.segment_count(), 0);
        let rec = seg.reconstruct(&s);
        assert_eq!(rec.present_count(), 0);
        assert_eq!(rec.len(), 10);
    }

    #[test]
    fn empty_and_single_point_series() {
        let empty = TimeSeries::from_values(vec![]);
        assert_eq!(segment_series(&empty, 0.1).segment_count(), 0);
        let single = TimeSeries::from_values(vec![5.0]);
        let seg = segment_series(&single, 0.1);
        assert_eq!(seg.segment_count(), 1);
        assert_eq!(seg.segments[0].len(), 1);
        assert_eq!(seg.segments[0].slope(), 0.0);
    }

    #[test]
    fn zero_error_returns_original() {
        let s = TimeSeries::from_values(vec![1.0, 5.0, 2.0, 8.0]);
        let out = smooth(&s, 0.0);
        assert_eq!(out, s);
    }

    #[test]
    fn segment_value_interpolation() {
        let seg = Segment {
            start: 10,
            end: 20,
            start_value: 0.0,
            end_value: 10.0,
        };
        assert!((seg.value_at(15) - 5.0).abs() < 1e-12);
        assert!((seg.slope() - 1.0).abs() < 1e-12);
        assert_eq!(seg.len(), 11);
    }

    #[test]
    fn segments_cover_whole_series_contiguously() {
        let s = TimeSeries::from_values((0..97).map(|i| ((i as f64) * 0.3).sin() * 5.0).collect());
        let seg = segment_series(&s, 0.05);
        assert_eq!(seg.segments.first().unwrap().start, 0);
        assert_eq!(seg.segments.last().unwrap().end, 96);
        for w in seg.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must share breakpoints");
        }
        // Reconstruction error bounded by the tolerance (5% of range=10).
        let rec = seg.reconstruct(&s);
        for i in 0..97 {
            assert!((rec.get(i).unwrap() - s.get(i).unwrap()).abs() <= 0.5 + 1e-9);
        }
    }
}
