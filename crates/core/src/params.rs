//! Mining parameters (Section 2.1 of the paper).
//!
//! CAP mining is controlled by four user-facing parameters whose effect on
//! the number of discovered CAPs the paper spells out:
//!
//! * **evolving rate ε** — changes smaller than ε do not count as evolution;
//! * **distance threshold η** — two sensors closer than η kilometres are
//!   "spatially close";
//! * **maximum number of CAP attributes μ** — CAPs may involve at most μ
//!   distinct attributes;
//! * **minimum support ψ** — members of a CAP must co-evolve at ψ or more
//!   timestamps.
//!
//! [`MiningParams`] also carries the knobs that the paper mentions in
//! passing: whether linear segmentation is applied, whether the
//! "multiple distinct attributes" restriction is enforced ("this restriction
//! can be easily removed"), and a safety bound on CAP size for the
//! exhaustive search.

use crate::error::MiningError;

/// The parameter set of one CAP-mining request. Also the cache key
/// (Section 3.3): two requests with equal parameters and equal dataset name
/// hit the same cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningParams {
    /// Evolving rate ε: minimum absolute change between consecutive
    /// timestamps for the change to count as evolution.
    pub epsilon: f64,
    /// Distance threshold η in kilometres.
    pub eta_km: f64,
    /// Maximum number of distinct attributes in a CAP (μ).
    pub mu: usize,
    /// Minimum support ψ: minimum number of co-evolving timestamps.
    pub psi: usize,
    /// Minimum number of distinct attributes (2 by default; 1 disables the
    /// "different attributes" restriction the paper says can be removed).
    pub min_attributes: usize,
    /// Whether to apply the linear-segmentation smoothing step.
    pub segmentation: bool,
    /// Segmentation error tolerance, as a fraction of the series' value
    /// range (only used when `segmentation` is true).
    pub segmentation_error: f64,
    /// Upper bound on the number of sensors in one CAP. MISCELA itself has
    /// no such bound; this is an implementation safeguard against synthetic
    /// datasets with degenerate all-correlated clusters. `None` removes the
    /// bound.
    pub max_sensors: Option<usize>,
    /// Maximum delay (in grid steps) for the time-delayed extension
    /// (DPD 2020). `0` mines only simultaneous CAPs, as in the EDBT demo.
    pub max_delay: usize,
}

impl Default for MiningParams {
    fn default() -> Self {
        MiningParams {
            epsilon: 0.5,
            eta_km: 1.0,
            mu: 3,
            psi: 10,
            min_attributes: 2,
            segmentation: true,
            segmentation_error: 0.02,
            max_sensors: Some(5),
            max_delay: 0,
        }
    }
}

impl MiningParams {
    /// Creates the default parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the evolving rate ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the distance threshold η (kilometres).
    pub fn with_eta_km(mut self, eta_km: f64) -> Self {
        self.eta_km = eta_km;
        self
    }

    /// Sets the maximum number of distinct attributes μ.
    pub fn with_mu(mut self, mu: usize) -> Self {
        self.mu = mu;
        self
    }

    /// Sets the minimum support ψ.
    pub fn with_psi(mut self, psi: usize) -> Self {
        self.psi = psi;
        self
    }

    /// Sets the minimum number of distinct attributes (1 removes the
    /// multiple-attribute restriction).
    pub fn with_min_attributes(mut self, min_attributes: usize) -> Self {
        self.min_attributes = min_attributes;
        self
    }

    /// Enables or disables the linear-segmentation step.
    pub fn with_segmentation(mut self, enabled: bool) -> Self {
        self.segmentation = enabled;
        self
    }

    /// Sets the segmentation error tolerance (fraction of the value range).
    pub fn with_segmentation_error(mut self, error: f64) -> Self {
        self.segmentation_error = error;
        self
    }

    /// Sets (or removes) the CAP size safeguard.
    pub fn with_max_sensors(mut self, max_sensors: Option<usize>) -> Self {
        self.max_sensors = max_sensors;
        self
    }

    /// Sets the maximum delay for time-delayed CAP mining.
    pub fn with_max_delay(mut self, max_delay: usize) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Validates the parameter ranges.
    pub fn validate(&self) -> Result<(), MiningError> {
        if self.epsilon < 0.0 || self.epsilon.is_nan() {
            return Err(MiningError::InvalidParameter {
                name: "epsilon",
                message: format!("must be >= 0, got {}", self.epsilon),
            });
        }
        if self.eta_km <= 0.0 || self.eta_km.is_nan() {
            return Err(MiningError::InvalidParameter {
                name: "eta_km",
                message: format!("must be > 0, got {}", self.eta_km),
            });
        }
        if self.mu < 1 {
            return Err(MiningError::InvalidParameter {
                name: "mu",
                message: "must be at least 1".to_string(),
            });
        }
        if self.psi < 1 {
            return Err(MiningError::InvalidParameter {
                name: "psi",
                message: "must be at least 1".to_string(),
            });
        }
        if self.min_attributes < 1 || self.min_attributes > self.mu {
            return Err(MiningError::InvalidParameter {
                name: "min_attributes",
                message: format!(
                    "must be between 1 and mu ({}), got {}",
                    self.mu, self.min_attributes
                ),
            });
        }
        if let Some(max) = self.max_sensors {
            if max < 2 {
                return Err(MiningError::InvalidParameter {
                    name: "max_sensors",
                    message: "must be at least 2 when set".to_string(),
                });
            }
        }
        if !(0.0..=1.0).contains(&self.segmentation_error) {
            return Err(MiningError::InvalidParameter {
                name: "segmentation_error",
                message: format!("must be in [0, 1], got {}", self.segmentation_error),
            });
        }
        Ok(())
    }

    /// A canonical textual signature of the parameters, used as part of the
    /// cache key. Equal parameters always produce equal signatures.
    pub fn signature(&self) -> String {
        format!(
            "eps={:.6};eta={:.6};mu={};psi={};minattr={};seg={};segerr={:.6};maxs={};delay={}",
            self.epsilon,
            self.eta_km,
            self.mu,
            self.psi,
            self.min_attributes,
            self.segmentation,
            self.segmentation_error,
            self.max_sensors.map(|m| m as i64).unwrap_or(-1),
            self.max_delay
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(MiningParams::default().validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let p = MiningParams::new()
            .with_epsilon(0.2)
            .with_eta_km(2.5)
            .with_mu(4)
            .with_psi(20)
            .with_min_attributes(1)
            .with_segmentation(false)
            .with_max_sensors(None)
            .with_max_delay(3);
        assert_eq!(p.epsilon, 0.2);
        assert_eq!(p.eta_km, 2.5);
        assert_eq!(p.mu, 4);
        assert_eq!(p.psi, 20);
        assert_eq!(p.min_attributes, 1);
        assert!(!p.segmentation);
        assert_eq!(p.max_sensors, None);
        assert_eq!(p.max_delay, 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(MiningParams::new().with_epsilon(-1.0).validate().is_err());
        assert!(MiningParams::new()
            .with_epsilon(f64::NAN)
            .validate()
            .is_err());
        assert!(MiningParams::new().with_eta_km(0.0).validate().is_err());
        assert!(MiningParams::new().with_mu(0).validate().is_err());
        assert!(MiningParams::new().with_psi(0).validate().is_err());
        assert!(MiningParams::new()
            .with_min_attributes(0)
            .validate()
            .is_err());
        assert!(MiningParams::new()
            .with_mu(2)
            .with_min_attributes(3)
            .validate()
            .is_err());
        assert!(MiningParams::new()
            .with_max_sensors(Some(1))
            .validate()
            .is_err());
        assert!(MiningParams::new()
            .with_segmentation_error(1.5)
            .validate()
            .is_err());
    }

    #[test]
    fn signature_is_stable_and_distinguishes() {
        let a = MiningParams::default();
        let b = MiningParams::default();
        assert_eq!(a.signature(), b.signature());
        let c = MiningParams::default().with_psi(11);
        assert_ne!(a.signature(), c.signature());
        let d = MiningParams::default().with_max_sensors(None);
        assert_ne!(a.signature(), d.signature());
    }
}
